//! Adaptive object sampling (Section II.B).
//!
//! ## Rates and gaps
//!
//! The paper expresses sampling rates relative to the page size: rate `nX` means
//! "sample `n` objects per 4 KB page of instances", so a class of instance (or array
//! element) size `s` gets a **nominal gap** of `SP / (s·n)`, rounded to the nearest
//! prime (`jessy_gos::prime`) to defeat cyclic allocation patterns. Once the nominal
//! gap reaches 1 the class is at **full sampling** and cannot be refined further.
//!
//! ## The sampled decision
//!
//! A scalar instance with per-class sequence number `q` is sampled iff `q ≡ 0 (mod
//! gap)`. An array whose elements carry consecutive sequence numbers `q₀ … q₀+L-1` is
//! sampled iff *any* element's number is divisible — and the number of logically
//! sampled elements is exactly the count of such multiples (Section II.B.3, Fig. 3b).
//!
//! ## Amortization and unbiasedness
//!
//! When a sampled array is accessed, the paper logs the **amortized size** `sampled
//! elements × element size` instead of the full array size, keeping large arrays from
//! skewing the correlation map. We additionally scale every logged size by the class
//! gap when accruing the TCM, making the estimator Horvitz–Thompson unbiased:
//!
//! * scalar: sampled with probability `1/gap`, contributes `s · gap` → expectation `s`;
//! * array `L ≥ gap`: always sampled, contributes `≈ (L/gap)·e·gap = L·e` (its size);
//! * array `L < gap`: sampled with probability `L/gap`, contributes `e · gap` →
//!   expectation `L·e`.
//!
//! Without this scaling, coarse rates would shrink the whole map by `≈ gap` and the
//! paper's ≥95 % accuracies would be unreachable; with it they fall out naturally.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use jessy_gos::prime::nearest_prime;
use jessy_gos::ClassId;

/// A page-relative sampling rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SamplingRate {
    /// `n` samples per page worth of instances (`nX` in the paper).
    NX(u32),
    /// Every object sampled.
    Full,
}

impl SamplingRate {
    /// The nominal gap for a class of `unit_bytes`-sized instances/elements under page
    /// size `page_size`: `SP / (s·n)`, clamped to at least 1.
    pub fn nominal_gap(self, unit_bytes: usize, page_size: u32) -> u64 {
        match self {
            SamplingRate::Full => 1,
            SamplingRate::NX(n) => {
                assert!(n > 0, "0X is not a rate");
                let denom = unit_bytes as u64 * n as u64;
                (page_size as u64 / denom.max(1)).max(1)
            }
        }
    }

    /// The next finer rate on the ladder (1X → 2X → 4X → … → Full). Stepping a rate
    /// whose gap is already 1 for the given class yields `Full`.
    pub fn step_up(self, unit_bytes: usize, page_size: u32) -> SamplingRate {
        match self {
            SamplingRate::Full => SamplingRate::Full,
            SamplingRate::NX(n) => {
                let next = SamplingRate::NX(n.saturating_mul(2));
                if next.nominal_gap(unit_bytes, page_size) <= 1 {
                    SamplingRate::Full
                } else {
                    next
                }
            }
        }
    }

    /// The next coarser rate on the ladder (Full → largest `n` with a gap above 1,
    /// then nX → n/2 X → … → 1X). Stepping `1X` — the coarsest rate the paper uses —
    /// yields `1X` again, so the budget controller's degradation ladder terminates.
    pub fn step_down(self, unit_bytes: usize, page_size: u32) -> SamplingRate {
        match self {
            SamplingRate::NX(n) if n > 1 => SamplingRate::NX(n / 2),
            SamplingRate::NX(_) => SamplingRate::NX(1),
            SamplingRate::Full => {
                // Find the finest nX that is *not* equivalent to full sampling: the
                // largest power of two whose nominal gap still exceeds 1. Classes whose
                // unit spans a page have gap 1 at every rate; they stay at 1X.
                let mut best = SamplingRate::NX(1);
                let mut n = 1u32;
                while SamplingRate::NX(n).nominal_gap(unit_bytes, page_size) > 1 {
                    best = SamplingRate::NX(n);
                    n = n.saturating_mul(2);
                }
                best
            }
        }
    }

    /// Human-readable label ("4X", "full").
    pub fn label(self) -> String {
        match self {
            SamplingRate::NX(n) => format!("{n}X"),
            SamplingRate::Full => "full".to_string(),
        }
    }
}

/// Count of multiples of `gap` in `[start, start + len)` — the logically sampled
/// element count of Fig. 3(b).
#[inline]
pub fn multiples_in(start: u64, len: u64, gap: u64) -> u64 {
    if len == 0 {
        return 0;
    }
    if gap <= 1 {
        return len;
    }
    let hi = (start + len - 1) / gap + 1;
    let lo = if start == 0 { 0 } else { (start - 1) / gap + 1 };
    hi - lo
}

/// Per-class sampling state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassGapState {
    /// The class's instance/element size in bytes (the `s` of the gap formula).
    pub unit_bytes: usize,
    /// Current rate on the ladder.
    pub rate: SamplingRate,
    /// Nominal (power-of-two-ish) gap.
    pub nominal_gap: u64,
    /// Real (prime) gap actually used for the divisibility test.
    pub real_gap: u64,
}

/// The shared table of per-class sampling gaps. Threads consult it on every
/// allocation; the adaptive controller updates it on rate changes.
///
/// ```
/// use jessy_core::sampling::GapTable;
/// use jessy_core::SamplingRate;
/// use jessy_gos::ClassId;
///
/// let gaps = GapTable::new(4096);
/// let body = ClassId(0);
/// gaps.register_class(body, 64, SamplingRate::NX(1)); // 64-byte class at 1X
/// assert_eq!(gaps.state(body).nominal_gap, 64);
/// assert_eq!(gaps.gap(body), 67, "nearest prime");
/// assert!(gaps.decide_sampled(body, 134, 1)); // 134 = 2 * 67
/// // The gap-scaled estimate is unbiased: size * gap when sampled.
/// assert_eq!(gaps.scaled_bytes(body, 134, 1), 64 * 67);
/// ```
#[derive(Debug)]
pub struct GapTable {
    page_size: u32,
    states: RwLock<Vec<Option<ClassGapState>>>,
    /// Bumped on every rate mutation. Threads compare it at interval opens to
    /// notice coordinator rate changes and re-arm traps for objects that
    /// regained the sampled tag (their armed chain died while unsampled).
    generation: AtomicU64,
}

impl GapTable {
    /// Empty table for the given page size.
    pub fn new(page_size: u32) -> Self {
        GapTable {
            page_size,
            states: RwLock::new(Vec::new()),
            generation: AtomicU64::new(0),
        }
    }

    /// The rate-change generation: 0 until the first [`GapTable::set_rate`],
    /// then monotonically increasing. A thread that sees it move re-syncs its
    /// trap arming against the headers the resampling walk retagged.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The page size `SP`.
    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    /// Register a class with its unit size and initial rate.
    pub fn register_class(&self, class: ClassId, unit_bytes: usize, rate: SamplingRate) {
        let nominal = rate.nominal_gap(unit_bytes, self.page_size);
        let state = ClassGapState {
            unit_bytes,
            rate,
            nominal_gap: nominal,
            real_gap: nearest_prime(nominal),
        };
        let mut states = self.states.write();
        if states.len() <= class.index() {
            states.resize(class.index() + 1, None);
        }
        states[class.index()] = Some(state);
    }

    /// Current state of a class.
    ///
    /// # Panics
    /// If the class was never registered.
    pub fn state(&self, class: ClassId) -> ClassGapState {
        self.states
            .read()
            .get(class.index())
            .copied()
            .flatten()
            .expect("class not registered with GapTable")
    }

    /// Current real (prime) gap of a class.
    #[inline]
    pub fn gap(&self, class: ClassId) -> u64 {
        self.state(class).real_gap
    }

    /// Set a class's rate, recomputing gaps. Returns the new state.
    pub fn set_rate(&self, class: ClassId, rate: SamplingRate) -> ClassGapState {
        let mut states = self.states.write();
        let slot = states[class.index()]
            .as_mut()
            .expect("class not registered with GapTable");
        slot.rate = rate;
        slot.nominal_gap = rate.nominal_gap(slot.unit_bytes, self.page_size);
        slot.real_gap = nearest_prime(slot.nominal_gap);
        let state = *slot;
        drop(states);
        self.generation.fetch_add(1, Ordering::Release);
        state
    }

    /// Step a class one rate finer. Returns the new state.
    pub fn step_up(&self, class: ClassId) -> ClassGapState {
        let cur = self.state(class);
        let next = cur.rate.step_up(cur.unit_bytes, self.page_size);
        self.set_rate(class, next)
    }

    /// Step a class one rate coarser (the overhead-budget controller's lever).
    /// Returns the new state.
    pub fn step_down(&self, class: ClassId) -> ClassGapState {
        let cur = self.state(class);
        let next = cur.rate.step_down(cur.unit_bytes, self.page_size);
        self.set_rate(class, next)
    }

    /// Is an object (scalar: `len_elems == 1`) with first sequence number `seq0`
    /// sampled under the class's current gap?
    #[inline]
    pub fn decide_sampled(&self, class: ClassId, seq0: u64, len_elems: u32) -> bool {
        multiples_in(seq0, len_elems as u64, self.gap(class)) > 0
    }

    /// Logically sampled element count of an array (scalars: 0 or 1).
    pub fn sampled_elems(&self, class: ClassId, seq0: u64, len_elems: u32) -> u64 {
        multiples_in(seq0, len_elems as u64, self.gap(class))
    }

    /// The amortized logged size of Section II.B.3: sampled elements × unit size.
    pub fn amortized_bytes(&self, class: ClassId, seq0: u64, len_elems: u32) -> u64 {
        let st = self.state(class);
        multiples_in(seq0, len_elems as u64, st.real_gap) * st.unit_bytes as u64
    }

    /// The gap-scaled (Horvitz–Thompson) contribution used when accruing the TCM.
    pub fn scaled_bytes(&self, class: ClassId, seq0: u64, len_elems: u32) -> u64 {
        let st = self.state(class);
        multiples_in(seq0, len_elems as u64, st.real_gap) * st.unit_bytes as u64 * st.real_gap
    }

    /// All registered classes.
    pub fn classes(&self) -> Vec<ClassId> {
        self.states
            .read()
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|_| ClassId(i as u16)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_gap_follows_the_formula() {
        // Body-like class: 64 bytes. 1X on 4 KB pages → gap 64.
        assert_eq!(SamplingRate::NX(1).nominal_gap(64, 4096), 64);
        assert_eq!(SamplingRate::NX(4).nominal_gap(64, 4096), 16);
        assert_eq!(SamplingRate::NX(64).nominal_gap(64, 4096), 1, "64X is full for 64 B");
        assert_eq!(SamplingRate::Full.nominal_gap(64, 4096), 1);
        // 8-byte array elements: 1X → 512.
        assert_eq!(SamplingRate::NX(1).nominal_gap(8, 4096), 512);
        // Objects larger than a page: always gap 1 (the SOR effect).
        assert_eq!(SamplingRate::NX(1).nominal_gap(16384, 4096), 1);
    }

    #[test]
    fn step_up_reaches_full_and_sticks() {
        let mut r = SamplingRate::NX(1);
        let mut steps = 0;
        while r != SamplingRate::Full {
            r = r.step_up(8, 4096);
            steps += 1;
            assert!(steps < 64, "ladder must terminate");
        }
        // 8-byte units: 1X(512) → 2X(256) → ... → 512X(1)=Full: 9 steps.
        assert_eq!(steps, 9);
        assert_eq!(SamplingRate::Full.step_up(8, 4096), SamplingRate::Full);
    }

    #[test]
    fn step_down_retraces_the_ladder_and_floors_at_1x() {
        // Full on 8-byte units steps to the finest non-full rung (512X has gap 1 for
        // 8 B units, so the rung below Full is 256X with gap 2).
        assert_eq!(SamplingRate::Full.step_down(8, 4096), SamplingRate::NX(256));
        assert_eq!(SamplingRate::NX(256).nominal_gap(8, 4096), 2);
        // nX halves; 1X is the floor.
        assert_eq!(SamplingRate::NX(8).step_down(8, 4096), SamplingRate::NX(4));
        assert_eq!(SamplingRate::NX(1).step_down(8, 4096), SamplingRate::NX(1));
        // A class wider than a page has gap 1 at every rate; Full degrades to 1X.
        assert_eq!(SamplingRate::Full.step_down(16384, 4096), SamplingRate::NX(1));
        // step_down inverts step_up below Full.
        let r = SamplingRate::NX(4);
        assert_eq!(r.step_up(64, 4096).step_down(64, 4096), r);
    }

    #[test]
    fn gap_table_step_down_updates_gaps() {
        let t = GapTable::new(4096);
        let c = ClassId(1);
        t.register_class(c, 64, SamplingRate::NX(4)); // nominal 16 → prime 17
        assert_eq!(t.state(c).nominal_gap, 16);
        let st = t.step_down(c);
        assert_eq!(st.rate, SamplingRate::NX(2));
        assert_eq!(st.nominal_gap, 32);
        assert_eq!(t.gap(c), 31, "prime near 32");
        t.step_down(c);
        let floor = t.step_down(c);
        assert_eq!(floor.rate, SamplingRate::NX(1), "1X is the floor");
        assert_eq!(t.step_down(c).rate, SamplingRate::NX(1));
    }

    #[test]
    fn multiples_in_counts_exactly() {
        assert_eq!(multiples_in(0, 1, 5), 1, "0 is a multiple");
        assert_eq!(multiples_in(1, 4, 5), 0, "[1,5) has none");
        assert_eq!(multiples_in(3, 5, 5), 1, "[3,8) has 5");
        assert_eq!(multiples_in(10, 11, 5), 3, "[10,21): 10,15,20");
        assert_eq!(multiples_in(7, 0, 5), 0, "empty range");
        assert_eq!(multiples_in(7, 3, 1), 3, "gap 1 samples everything");
        // Brute-force cross-check.
        for start in 0..40u64 {
            for len in 0..30u64 {
                for gap in 1..12u64 {
                    let brute = (start..start + len).filter(|x| x % gap == 0).count() as u64;
                    assert_eq!(
                        multiples_in(start, len, gap),
                        brute,
                        "start={start} len={len} gap={gap}"
                    );
                }
            }
        }
    }

    #[test]
    fn gap_table_register_and_decide() {
        let t = GapTable::new(4096);
        let c = ClassId(0);
        t.register_class(c, 64, SamplingRate::NX(1));
        let st = t.state(c);
        assert_eq!(st.nominal_gap, 64);
        assert_eq!(st.real_gap, 67, "nearest prime to 64 is 67 (upward tie)");
        assert!(t.decide_sampled(c, 0, 1));
        assert!(!t.decide_sampled(c, 1, 1));
        assert!(t.decide_sampled(c, 67, 1));
        assert!(t.decide_sampled(c, 60, 10), "array straddling a multiple");
    }

    #[test]
    fn scaled_bytes_are_horvitz_thompson() {
        let t = GapTable::new(4096);
        let c = ClassId(0);
        t.register_class(c, 8, SamplingRate::NX(1)); // gap 509 (prime near 512)
        assert_eq!(t.state(c).real_gap, 509);
        // A 2048-element array: 5 multiples of 509 in [0, 2048) → amortized 40 bytes,
        // scaled 40*509 ≈ the array's true 16 KB size.
        assert_eq!(t.sampled_elems(c, 0, 2048), 5);
        assert_eq!(t.amortized_bytes(c, 0, 2048), 40);
        let scaled = t.scaled_bytes(c, 0, 2048) as f64;
        let truth = 2048.0 * 8.0;
        assert!((scaled - truth).abs() / truth < 0.25, "scaled={scaled} truth={truth}");
    }

    #[test]
    fn unbiasedness_over_a_population_of_small_arrays() {
        // Expected scaled contribution across many consecutive small arrays must match
        // the true total byte volume closely (the estimator is exactly unbiased over
        // full gap-cycles).
        let t = GapTable::new(4096);
        let c = ClassId(0);
        t.register_class(c, 8, SamplingRate::NX(8)); // nominal 64 → prime 67
        let gap = t.state(c).real_gap;
        assert_eq!(gap, 67);
        let mut seq = 0u64;
        let mut scaled_total = 0u64;
        let mut true_total = 0u64;
        // Mixed lengths, many cycles of the gap.
        for i in 0..4_000u64 {
            let len = 1 + (i % 13) as u32;
            scaled_total += t.scaled_bytes(c, seq, len);
            true_total += len as u64 * 8;
            seq += len as u64;
        }
        let err = (scaled_total as f64 - true_total as f64).abs() / true_total as f64;
        assert!(err < 0.02, "estimator bias {err} too large");
    }

    #[test]
    fn set_rate_and_step_up_update_gaps() {
        let t = GapTable::new(4096);
        let c = ClassId(3);
        t.register_class(c, 64, SamplingRate::NX(1));
        assert_eq!(t.gap(c), 67);
        t.step_up(c);
        assert_eq!(t.state(c).rate, SamplingRate::NX(2));
        assert_eq!(t.state(c).nominal_gap, 32);
        assert_eq!(t.gap(c), 31);
        t.set_rate(c, SamplingRate::Full);
        assert_eq!(t.gap(c), 1);
        assert_eq!(t.classes(), vec![c]);
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_class_panics() {
        let t = GapTable::new(4096);
        t.gap(ClassId(0));
    }
}
