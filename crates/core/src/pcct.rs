//! Partial Calling Context Tree (PCCT) profiling — the related-work contrast.
//!
//! The paper positions its stack sampling against Whaley's portable JVM profiler
//! (Java Grande 2000, the paper's reference 30): *"information from dynamic profiling is
//! only used to build a Partial Calling Context Tree (PCCT) … Such profiling only
//! needs function caller and callee's addresses. On the other hand, in order to
//! locate stack invariant references, we must extract and inspect each thread's frame
//! content, which is more heavyweight."*
//!
//! We implement the PCCT over the same simulated stacks so the contrast is
//! quantifiable on this substrate: a PCCT sample reads only the method-id chain
//! (cheap, per frame), while the sticky-set sampler extracts and compares slots. Both
//! share the timer discipline; the `micro` bench compares their per-sample costs.

use std::collections::HashMap;

use jessy_gos::CostModel;
use jessy_net::{ClockHandle, SimNanos};
use jessy_stack::{JavaStack, MethodId};

/// One calling-context node: a method reached through a specific chain of callers.
#[derive(Debug, Clone)]
pub struct PcctNode {
    /// The method at this context.
    pub method: MethodId,
    /// Samples whose stack TOP was exactly this context (exclusive count).
    pub self_samples: u64,
    /// Samples whose stack passed through this context (inclusive count).
    pub total_samples: u64,
    children: HashMap<MethodId, usize>,
}

/// A calling-context tree built from periodic stack samples.
#[derive(Debug, Default)]
pub struct Pcct {
    nodes: Vec<PcctNode>,
    roots: HashMap<MethodId, usize>,
    samples: u64,
}

impl Pcct {
    /// Empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample: the bottom-up chain of method ids currently on the stack.
    pub fn record(&mut self, path: impl IntoIterator<Item = MethodId>) {
        let mut cursor: Option<usize> = None;
        let mut any = false;
        for method in path {
            any = true;
            let idx = match cursor {
                None => *self.roots.entry(method).or_insert_with(|| {
                    self.nodes.push(PcctNode {
                        method,
                        self_samples: 0,
                        total_samples: 0,
                        children: HashMap::new(),
                    });
                    self.nodes.len() - 1
                }),
                Some(parent) => {
                    if let Some(&c) = self.nodes[parent].children.get(&method) {
                        c
                    } else {
                        self.nodes.push(PcctNode {
                            method,
                            self_samples: 0,
                            total_samples: 0,
                            children: HashMap::new(),
                        });
                        let c = self.nodes.len() - 1;
                        self.nodes[parent].children.insert(method, c);
                        c
                    }
                }
            };
            self.nodes[idx].total_samples += 1;
            cursor = Some(idx);
        }
        if let Some(leaf) = cursor {
            self.nodes[leaf].self_samples += 1;
        }
        if any {
            self.samples += 1;
        }
    }

    /// Total samples recorded.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Distinct calling contexts discovered.
    pub fn contexts(&self) -> usize {
        self.nodes.len()
    }

    /// The hottest calling contexts: full caller chains ranked by exclusive samples.
    pub fn hot_contexts(&self, k: usize) -> Vec<(Vec<MethodId>, u64)> {
        // Reconstruct each node's path by walking from every root.
        let mut out: Vec<(Vec<MethodId>, u64)> = Vec::new();
        let mut stack: Vec<(usize, Vec<MethodId>)> = self
            .roots
            .values()
            .map(|&i| (i, vec![self.nodes[i].method]))
            .collect();
        while let Some((idx, path)) = stack.pop() {
            let node = &self.nodes[idx];
            if node.self_samples > 0 {
                out.push((path.clone(), node.self_samples));
            }
            for &child in node.children.values() {
                let mut p = path.clone();
                p.push(self.nodes[child].method);
                stack.push((child, p));
            }
        }
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out.truncate(k);
        out
    }

    /// Inclusive sample count of a method summed over all of its contexts.
    pub fn method_total(&self, method: MethodId) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.method == method)
            .map(|n| n.total_samples)
            .sum()
    }
}

/// Timer-driven PCCT sampler — Whaley-style lightweight profiling over the same stack.
#[derive(Debug)]
pub struct PcctSampler {
    gap_ns: u64,
    last: Option<SimNanos>,
    pcct: Pcct,
}

impl PcctSampler {
    /// Sampler firing every `gap_ns` simulated nanoseconds.
    pub fn new(gap_ns: u64) -> Self {
        PcctSampler {
            gap_ns,
            last: None,
            pcct: Pcct::new(),
        }
    }

    /// Timer check; a PCCT sample only reads the method id of each frame — no slot
    /// extraction, no comparison — so the charged cost is per-frame, tiny.
    pub fn maybe_sample(&mut self, stack: &JavaStack, clock: &ClockHandle, costs: &CostModel) -> bool {
        let now = clock.now();
        if let Some(last) = self.last {
            if now.saturating_sub(last) < self.gap_ns {
                return false;
            }
        }
        self.last = Some(now);
        self.sample(stack, clock, costs);
        true
    }

    /// Unconditionally take one sample.
    pub fn sample(&mut self, stack: &JavaStack, clock: &ClockHandle, costs: &CostModel) {
        clock.spend(costs.stack_sample_entry_ns);
        // Reading caller/callee addresses: ~one probe-slot cost per frame.
        clock.spend(costs.frame_probe_slot_ns * stack.depth() as u64);
        self.pcct.record(stack.frames().map(|f| f.method()));
    }

    /// The tree built so far.
    pub fn pcct(&self) -> &Pcct {
        &self.pcct
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jessy_net::{ClockBoard, ThreadId};

    fn m(i: u32) -> MethodId {
        MethodId(i)
    }

    #[test]
    fn records_paths_and_counts() {
        let mut p = Pcct::new();
        p.record([m(0), m(1), m(2)]); // main → a → b
        p.record([m(0), m(1), m(2)]);
        p.record([m(0), m(1)]); // main → a
        p.record([m(0), m(3)]); // main → c
        assert_eq!(p.samples(), 4);
        assert_eq!(p.contexts(), 4, "main, a, b, c");
        assert_eq!(p.method_total(m(0)), 4, "every sample passes through main");
        assert_eq!(p.method_total(m(1)), 3);
        assert_eq!(p.method_total(m(2)), 2);
        let hot = p.hot_contexts(10);
        assert_eq!(hot[0].0, vec![m(0), m(1), m(2)]);
        assert_eq!(hot[0].1, 2);
    }

    #[test]
    fn same_method_in_different_contexts_is_distinct() {
        let mut p = Pcct::new();
        p.record([m(0), m(9)]); // main → util
        p.record([m(1), m(9)]); // other → util
        assert_eq!(p.contexts(), 4, "util appears twice, once per caller");
        assert_eq!(p.method_total(m(9)), 2, "but totals aggregate");
    }

    #[test]
    fn empty_sample_is_ignored() {
        let mut p = Pcct::new();
        p.record(std::iter::empty());
        assert_eq!(p.samples(), 0);
        assert_eq!(p.contexts(), 0);
    }

    #[test]
    fn sampler_is_timer_gated_and_cheap() {
        let board = ClockBoard::new(1);
        let clock = board.handle(ThreadId(0));
        let costs = CostModel::free();
        let mut stack = JavaStack::new();
        stack.push_raw(m(0), 4);
        stack.push_raw(m(1), 4);

        let mut s = PcctSampler::new(1000);
        assert!(s.maybe_sample(&stack, &clock, &costs));
        assert!(!s.maybe_sample(&stack, &clock, &costs));
        clock.spend(1000);
        assert!(s.maybe_sample(&stack, &clock, &costs));
        assert_eq!(s.pcct().samples(), 2);
        assert_eq!(s.pcct().hot_contexts(1)[0].0, vec![m(0), m(1)]);
    }

    #[test]
    fn pcct_sampling_is_cheaper_than_invariant_mining() {
        // The paper's quantitative point: PCCT needs only method ids; invariant mining
        // extracts frame contents.
        use crate::config::StackSamplingConfig;
        use crate::stack_sampling::StackSampler;
        use jessy_gos::ObjectId;
        use jessy_stack::Slot;

        let costs = CostModel::pentium4_2ghz();
        let build_stack = || {
            let mut st = JavaStack::new();
            for d in 0..8 {
                st.push_raw(m(d), 12);
                st.set_local(0, Slot::Ref(ObjectId(d)));
            }
            st
        };

        let board = ClockBoard::new(2);
        let c_pcct = board.handle(ThreadId(0));
        let c_inv = board.handle(ThreadId(1));

        let stack_a = build_stack();
        let mut pcct = PcctSampler::new(0);
        let mut stack_b = build_stack();
        let mut inv = StackSampler::new(StackSamplingConfig {
            gap_ns: 0,
            lazy_extraction: false, // immediate: the extraction-heavy configuration
        });
        for _ in 0..10 {
            pcct.sample(&stack_a, &c_pcct, &costs);
            inv.sample(&mut stack_b, &c_inv, &costs);
        }
        assert!(
            c_pcct.now() < c_inv.now(),
            "PCCT {} vs invariant mining {}",
            c_pcct.now(),
            c_inv.now()
        );
    }
}
