//! View-agnostic access to the thread correlation structure.
//!
//! The placement engine wants one question answered — *which thread pairs share how
//! much?* — but the reducer may be holding the answer in any of three shapes: the
//! dense packed-triangle [`Tcm`], the streaming [`TopKPairs`] head, or the
//! [`SketchTcm`] count-min tail. [`CorrelationView`] abstracts over all of them so
//! `LoadBalancer` never touches the packed-triangle layout directly, and so the
//! N=1024 scale path can plan placements without ever materializing an O(N²) map.
//!
//! Contract: [`CorrelationView::for_each_pair`] yields each unordered pair at most
//! once as `(i, j, w)` with `i < j` and `w > 0`, in ascending `(i, j)` order. The
//! deterministic order is load-bearing — the partitioner's tie-breaks depend on it,
//! and plan determinism across backends is property-tested.

use jessy_net::ThreadId;

use crate::tcm::{tri_decode, SketchTcm, SparseTcm, Tcm, TopKPairs};

/// A read-only view of pairwise thread correlation mass.
pub trait CorrelationView {
    /// Number of threads the view covers.
    fn n(&self) -> usize;

    /// Visit every tracked pair as `(i, j, weight)` with `i < j` and `weight > 0`,
    /// in ascending `(i, j)` order.
    fn for_each_pair(&self, f: &mut dyn FnMut(ThreadId, ThreadId, f64));

    /// Correlation mass between two threads (0.0 when untracked). Symmetric.
    fn pair_weight(&self, i: ThreadId, j: ThreadId) -> f64;

    /// Total correlation mass incident to one thread (its weighted degree).
    fn degree(&self, t: ThreadId) -> f64 {
        let mut d = 0.0;
        self.for_each_pair(&mut |i, j, w| {
            if i == t || j == t {
                d += w;
            }
        });
        d
    }

    /// Total correlation mass over all pairs, counted from both endpoints (matches
    /// [`Tcm::total`]'s convention of 2× the triangle sum).
    fn total_mass(&self) -> f64 {
        let mut s = 0.0;
        self.for_each_pair(&mut |_, _, w| s += w);
        2.0 * s
    }
}

impl CorrelationView for Tcm {
    fn n(&self) -> usize {
        Tcm::n(self)
    }

    fn for_each_pair(&self, f: &mut dyn FnMut(ThreadId, ThreadId, f64)) {
        // The packed triangle is already in ascending (i, j) order.
        let n = Tcm::n(self);
        for (idx, &w) in self.raw().iter().enumerate() {
            if w > 0.0 {
                let (i, j) = tri_decode(n, idx);
                f(ThreadId(i as u32), ThreadId(j as u32), w);
            }
        }
    }

    fn pair_weight(&self, i: ThreadId, j: ThreadId) -> f64 {
        let w = self.at(i, j);
        if w > 0.0 {
            w
        } else {
            0.0
        }
    }

    fn total_mass(&self) -> f64 {
        self.total()
    }
}

impl CorrelationView for SparseTcm {
    fn n(&self) -> usize {
        SparseTcm::n(self)
    }

    fn for_each_pair(&self, f: &mut dyn FnMut(ThreadId, ThreadId, f64)) {
        // Cells are kept sorted by packed index, which is ascending (i, j).
        for (i, j, w) in self.iter() {
            if w > 0.0 {
                f(i, j, w);
            }
        }
    }

    fn pair_weight(&self, i: ThreadId, j: ThreadId) -> f64 {
        let w = self.at(i, j);
        if w > 0.0 {
            w
        } else {
            0.0
        }
    }
}

impl CorrelationView for TopKPairs {
    fn n(&self) -> usize {
        TopKPairs::n(self)
    }

    fn for_each_pair(&self, f: &mut dyn FnMut(ThreadId, ThreadId, f64)) {
        // `top()` is hottest-first; re-sort into the ascending (i, j) order the
        // view contract demands so plans don't depend on heat ranking ties.
        let mut pairs = self.top();
        pairs.sort_by_key(|&(i, j, _)| (i.0, j.0));
        for (i, j, w) in pairs {
            if w > 0.0 {
                f(i, j, w);
            }
        }
    }

    fn pair_weight(&self, i: ThreadId, j: ThreadId) -> f64 {
        let (a, b) = if i.0 <= j.0 { (i, j) } else { (j, i) };
        for (x, y, w) in self.top() {
            if (x, y) == (a, b) {
                return if w > 0.0 { w } else { 0.0 };
            }
        }
        0.0
    }
}

/// The scale-path planning view: the [`TopKPairs`] head names *which* pairs matter,
/// the [`SketchTcm`] prices them. Memory stays O(k + sketch), never O(N²) — this is
/// what lets a 1024-thread cluster plan placements under the sketch backend without
/// the dense expansion `effective_tcm()` would pay.
pub struct SketchedTopKView<'a> {
    sketch: &'a SketchTcm,
    topk: &'a TopKPairs,
}

impl<'a> SketchedTopKView<'a> {
    /// Combine a sketch and a top-k head over the same thread population.
    pub fn new(sketch: &'a SketchTcm, topk: &'a TopKPairs) -> Self {
        assert_eq!(
            sketch.n(),
            topk.n(),
            "sketch and top-k must cover the same thread population"
        );
        SketchedTopKView { sketch, topk }
    }
}

impl CorrelationView for SketchedTopKView<'_> {
    fn n(&self) -> usize {
        self.sketch.n()
    }

    fn for_each_pair(&self, f: &mut dyn FnMut(ThreadId, ThreadId, f64)) {
        let mut pairs = self.topk.top();
        pairs.sort_by_key(|&(i, j, _)| (i.0, j.0));
        for (i, j, _) in pairs {
            // Weights come from the sketch (the same estimator `pair_weight`
            // answers), not the top-k heat, so the two accessors agree.
            let w = self.sketch.at(i, j);
            if w > 0.0 {
                f(i, j, w);
            }
        }
    }

    fn pair_weight(&self, i: ThreadId, j: ThreadId) -> f64 {
        let w = self.sketch.at(i, j);
        if w > 0.0 {
            w
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tcm() -> Tcm {
        let mut t = Tcm::new(5);
        t.add_pair(ThreadId(0), ThreadId(1), 100.0);
        t.add_pair(ThreadId(2), ThreadId(3), 40.0);
        t.add_pair(ThreadId(1), ThreadId(4), 7.0);
        t
    }

    fn collect(view: &dyn CorrelationView) -> Vec<(u32, u32, f64)> {
        let mut out = Vec::new();
        view.for_each_pair(&mut |i, j, w| out.push((i.0, j.0, w)));
        out
    }

    #[test]
    fn dense_and_sparse_views_agree() {
        let tcm = sample_tcm();
        let sparse = tcm.to_sparse();
        assert_eq!(collect(&tcm), collect(&sparse));
        assert_eq!(
            CorrelationView::total_mass(&tcm),
            CorrelationView::total_mass(&sparse)
        );
        for i in 0..5u32 {
            for j in 0..5u32 {
                if i == j {
                    continue;
                }
                assert_eq!(
                    tcm.pair_weight(ThreadId(i), ThreadId(j)),
                    sparse.pair_weight(ThreadId(i), ThreadId(j)),
                );
            }
        }
    }

    #[test]
    fn pairs_come_out_ascending_with_positive_weights() {
        let tcm = sample_tcm();
        let pairs = collect(&tcm);
        assert_eq!(pairs.len(), 3);
        for win in pairs.windows(2) {
            assert!((win[0].0, win[0].1) < (win[1].0, win[1].1), "ascending order");
        }
        for &(i, j, w) in &pairs {
            assert!(i < j);
            assert!(w > 0.0);
        }
    }

    #[test]
    fn degree_sums_incident_mass() {
        let tcm = sample_tcm();
        assert_eq!(CorrelationView::degree(&tcm, ThreadId(1)), 107.0);
        assert_eq!(CorrelationView::degree(&tcm, ThreadId(4)), 7.0);
        assert_eq!(CorrelationView::total_mass(&tcm), tcm.total());
    }

    #[test]
    fn topk_view_exposes_the_head_in_ascending_order() {
        let tcm = sample_tcm();
        let mut tk = TopKPairs::new(5, 2);
        tk.observe_round(&tcm.to_sparse(), |_| 0.0);
        let pairs = collect(&tk);
        // k=2 tracks up to 4k pairs, so all three survive; order must be (i, j).
        assert!(pairs.len() >= 2);
        for win in pairs.windows(2) {
            assert!((win[0].0, win[0].1) < (win[1].0, win[1].1));
        }
        assert_eq!(tk.pair_weight(ThreadId(1), ThreadId(0)), 100.0, "symmetric");
        assert_eq!(tk.pair_weight(ThreadId(0), ThreadId(4)), 0.0, "untracked");
    }

    #[test]
    fn sketched_topk_view_prices_pairs_from_the_sketch() {
        let tcm = sample_tcm();
        let sparse = tcm.to_sparse();
        let mut sketch = SketchTcm::new(5, 1024, 4);
        sketch.fold_round(&sparse);
        let mut tk = TopKPairs::new(5, 4);
        tk.observe_round(&sparse, |_| 0.0);
        let view = SketchedTopKView::new(&sketch, &tk);
        assert_eq!(CorrelationView::n(&view), 5);
        let pairs = collect(&view);
        assert_eq!(pairs.len(), 3);
        // A wide sketch with few cells is exact, so the view matches the dense TCM.
        assert_eq!(pairs, collect(&tcm));
        assert_eq!(view.pair_weight(ThreadId(0), ThreadId(1)), 100.0);
    }
}
