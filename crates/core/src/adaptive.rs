//! The adaptive sampling-rate controller (Section II.B.1–II.B.2).
//!
//! *"The basic approach to reaching an optimal sampling rate is to begin with a rough
//! sampling rate, increase it stepwise (by shortening the sampling gap) and compare the
//! distance between the successive correlation matrices. If their distance is small
//! enough (converge to be within some predefined threshold), we stop at the underlying
//! sampling gap."*
//!
//! The controller runs at the central coordinator: after each TCM round it compares
//! every class's round map against the same class's previous round map using the
//! **relative** `E_ABS` distance (Fig. 9 shows relative accuracy tracks absolute
//! accuracy well enough to steer by). A class whose distance exceeds the threshold is
//! stepped one rate finer; a converged class is frozen. Rate changes trigger a
//! **resampling walk** over all existing objects of the class — re-deriving each
//! sampled tag from its sequence number under the new gap — "to prevent those objects
//! sampled at previous rates from accumulating" (the paper measures this walk at
//! ≤ 0.1 % of CPU time; we charge it to the initiating clock).
//!
//! ## Drift re-activation
//!
//! The paper's workloads (Table I) have *stable* sharing patterns, so "converged ⇒
//! frozen forever" is safe there. Under a workload phase change it is not: a frozen
//! class keeps reporting the pre-shift correlation picture and every downstream
//! consumer (the placement engine above all) plans against stale data. With a
//! [`DriftConfig`] the controller keeps watching converged classes: a post-convergence
//! relative `E_ABS` spike above `DriftConfig::threshold` sustained for
//! `DriftConfig::hysteresis_rounds` consecutive trusted rounds **un-converges** the
//! class and steps it one rate finer (cause [`RateCause::Drift`]), after which the
//! normal refinement loop re-converges it at whatever rate the new phase needs. The
//! drift threshold must sit at or above the convergence threshold, so the two bands
//! cannot chatter; re-activations are bounded per class
//! (`DriftConfig::max_reactivations`) so a pathologically unstable class degrades to
//! the frozen behaviour instead of thrashing rates forever. All drift state rides
//! [`ControllerCheckpoint`], so a master restored mid-phase-change resumes the
//! re-convergence exactly where the crashed one left off. Without a `DriftConfig`
//! the controller is bit-identical to the frozen-forever behaviour.

use std::collections::{HashMap, HashSet};

use jessy_gos::{ClassId, Gos};
use jessy_net::ClockHandle;
use serde::{Deserialize, Serialize};

use crate::accuracy::e_abs_sparse;
use crate::sampling::{ClassGapState, GapTable};
use crate::tcm::SparseTcm;

/// Serializable snapshot of an [`AdaptiveController`]'s mutable state: the per-class
/// baseline round maps, the converged set and the drift bookkeeping, all as
/// **sorted** vectors so the encoding is canonical (two equal controllers serialize
/// to identical bytes). The drift vectors only carry nonzero entries, keeping the
/// canonical form unique (a drift-free controller checkpoints two empty vectors).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerCheckpoint {
    /// Per-class previous-round baselines, sorted by class id.
    pub prev_round: Vec<(ClassId, SparseTcm)>,
    /// Classes frozen at their current rate, sorted.
    pub converged: Vec<ClassId>,
    /// Consecutive over-drift-threshold rounds per converged class (only nonzero
    /// streaks, sorted by class id).
    pub drift_streaks: Vec<(ClassId, u32)>,
    /// Drift re-activations performed per class (only nonzero counts, sorted by
    /// class id) — the bound `DriftConfig::max_reactivations` is enforced against
    /// these, so a restore cannot reset a class's re-activation budget.
    pub reactivations: Vec<(ClassId, u32)>,
}

/// Post-convergence drift watching (see the module docs). Constructed via
/// [`DriftConfig::new`], which fills in the defaults the runtime exposes through
/// `ProfilerConfig`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// Relative `E_ABS` distance above which a converged class counts as drifting.
    /// Must be at least the convergence threshold — the gap between the two is the
    /// hysteresis band that keeps converge/un-converge from chattering.
    pub threshold: f64,
    /// Consecutive trusted drifting rounds required before a class un-converges
    /// (≥ 1). Skipped low-coverage rounds never advance a streak.
    pub hysteresis_rounds: u32,
    /// Upper bound on re-activations per class (≥ 1); past it the class stays
    /// frozen, restoring the pre-drift behaviour for pathologically unstable
    /// classes.
    pub max_reactivations: u32,
}

impl DriftConfig {
    /// Drift watching at `threshold` with the default hysteresis (2 rounds) and
    /// per-class re-activation bound (8).
    pub fn new(threshold: f64) -> Self {
        DriftConfig {
            threshold,
            hysteresis_rounds: 2,
            max_reactivations: 8,
        }
    }
}

/// Why the controller changed a class's rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RateCause {
    /// The pre-convergence refinement loop: successive maps still too far apart.
    Refine,
    /// Post-convergence drift: a frozen class's map spiked and was re-activated.
    Drift,
}

/// A rate-change decision for one class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateChange {
    /// The class whose rate changed.
    pub class: ClassId,
    /// Its new sampling state.
    pub new_state: ClassGapState,
    /// The relative distance that triggered the change.
    pub relative_distance: f64,
    /// What triggered it: refinement toward convergence, or drift re-activation.
    pub cause: RateCause,
}

/// What the controller did with one round, given its OAL coverage.
#[derive(Debug, Clone, PartialEq)]
pub enum RoundOutcome {
    /// The round was trusted; these classes step finer (possibly none).
    Applied(Vec<RateChange>),
    /// The round's coverage fell below the configured floor: the baselines were left
    /// untouched and no rates changed. A lossy round compared against a clean
    /// baseline would look artificially different and trigger spurious refinement.
    SkippedLowCoverage {
        /// Fraction of expected (thread, interval) OALs that actually arrived.
        coverage: f64,
        /// The floor the round failed to meet.
        min_coverage: f64,
    },
}

/// Stepwise per-class rate refinement driven by relative accuracy.
#[derive(Debug)]
pub struct AdaptiveController {
    threshold: f64,
    min_coverage: f64,
    drift: Option<DriftConfig>,
    prev_round: HashMap<ClassId, SparseTcm>,
    converged: HashSet<ClassId>,
    /// Consecutive drifting rounds per converged class; entries are always ≥ 1
    /// (a streak that resets is removed), keeping checkpoints canonical.
    drift_streak: HashMap<ClassId, u32>,
    /// Drift re-activations performed per class; entries are always ≥ 1.
    reactivated: HashMap<ClassId, u32>,
}

impl AdaptiveController {
    /// Controller converging when the relative `E_ABS` distance between successive
    /// rounds drops to `threshold` or below.
    pub fn new(threshold: f64) -> Self {
        assert!(threshold > 0.0, "threshold must be positive");
        AdaptiveController {
            threshold,
            min_coverage: 0.0,
            drift: None,
            prev_round: HashMap::new(),
            converged: HashSet::new(),
            drift_streak: HashMap::new(),
            reactivated: HashMap::new(),
        }
    }

    /// Require at least this OAL coverage before a round may steer rates (see
    /// [`AdaptiveController::on_round_with_coverage`]). Probabilities outside
    /// `[0, 1]` are clamped.
    pub fn with_min_coverage(mut self, min_coverage: f64) -> Self {
        self.min_coverage = min_coverage.clamp(0.0, 1.0);
        self
    }

    /// Watch converged classes for drift (see the module docs). Without this the
    /// controller keeps the historical frozen-forever behaviour, bit for bit.
    ///
    /// # Panics
    /// If the drift threshold sits below the convergence threshold (the bands
    /// would chatter), or hysteresis/re-activation bounds are zero.
    pub fn with_drift(mut self, drift: DriftConfig) -> Self {
        assert!(
            drift.threshold.is_finite() && drift.threshold >= self.threshold,
            "drift threshold must be finite and at least the convergence threshold"
        );
        assert!(drift.hysteresis_rounds >= 1, "hysteresis needs at least one round");
        assert!(drift.max_reactivations >= 1, "the re-activation bound must be positive");
        self.drift = Some(drift);
        self
    }

    /// The drift configuration in force, if any.
    pub fn drift(&self) -> Option<DriftConfig> {
        self.drift
    }

    /// The coverage floor in force.
    pub fn min_coverage(&self) -> f64 {
        self.min_coverage
    }

    /// Feed one round's per-class maps; returns the classes to step finer.
    ///
    /// The first round for a class only records a baseline (there is nothing to
    /// compare against yet). A class at full sampling can never be refined further and
    /// is marked converged.
    pub fn on_round(
        &mut self,
        round_per_class: &HashMap<ClassId, SparseTcm>,
        gaps: &GapTable,
    ) -> Vec<RateChange> {
        let mut changes = Vec::new();
        let mut classes: Vec<&ClassId> = round_per_class.keys().collect();
        classes.sort_unstable(); // deterministic decision order
        for class in classes {
            let cur = &round_per_class[class];
            if self.converged.contains(class) {
                if let Some(drift) = self.drift {
                    if let Some(change) = self.watch_drift(*class, cur, gaps, drift) {
                        changes.push(change);
                    }
                }
            } else if let Some(prev) = self.prev_round.get(class) {
                let d = e_abs_sparse(cur, prev);
                if d <= self.threshold {
                    self.converged.insert(*class);
                } else if gaps.state(*class).real_gap <= 1 {
                    self.converged.insert(*class); // already at full sampling
                } else {
                    let new_state = gaps.step_up(*class);
                    changes.push(RateChange {
                        class: *class,
                        new_state,
                        relative_distance: d,
                        cause: RateCause::Refine,
                    });
                }
            }
            self.prev_round.insert(*class, cur.clone());
        }
        changes
    }

    /// One converged class's drift check for the current round. The baseline is
    /// maintained for converged classes every round, so the comparison is always
    /// against the *previous* round, not the map the class froze on — a gradual
    /// phase change still accumulates into a detectable per-round spike once the
    /// sharing graph actually moves.
    fn watch_drift(
        &mut self,
        class: ClassId,
        cur: &SparseTcm,
        gaps: &GapTable,
        drift: DriftConfig,
    ) -> Option<RateChange> {
        let prev = self.prev_round.get(&class)?;
        let d = e_abs_sparse(cur, prev);
        if d <= drift.threshold {
            self.drift_streak.remove(&class);
            return None;
        }
        let streak = self.drift_streak.entry(class).or_insert(0);
        *streak += 1;
        if *streak < drift.hysteresis_rounds {
            return None;
        }
        self.drift_streak.remove(&class);
        // A class at full sampling already reports the exact map — its "drift" is
        // the workload itself, not a sampling artifact; nothing finer exists.
        if gaps.state(class).real_gap <= 1 {
            return None;
        }
        let seen = self.reactivated.entry(class).or_insert(0);
        if *seen >= drift.max_reactivations {
            return None; // bound hit: degrade to the frozen behaviour
        }
        *seen += 1;
        self.converged.remove(&class);
        let new_state = gaps.step_up(class);
        Some(RateChange {
            class,
            new_state,
            relative_distance: d,
            cause: RateCause::Drift,
        })
    }

    /// Gate [`AdaptiveController::on_round`] on the round's OAL coverage: a round
    /// below the floor is skipped wholesale — baselines are not updated, no class
    /// converges or steps — so the controller only ever reasons about rounds it can
    /// trust. Under heavy loss the profiler thus degrades to a fixed-rate profiler
    /// instead of thrashing rates on phantom workload shifts.
    pub fn on_round_with_coverage(
        &mut self,
        round_per_class: &HashMap<ClassId, SparseTcm>,
        gaps: &GapTable,
        coverage: f64,
    ) -> RoundOutcome {
        if coverage < self.min_coverage {
            return RoundOutcome::SkippedLowCoverage {
                coverage,
                min_coverage: self.min_coverage,
            };
        }
        RoundOutcome::Applied(self.on_round(round_per_class, gaps))
    }

    /// Snapshot the controller's mutable state in canonical (sorted) form.
    pub fn checkpoint(&self) -> ControllerCheckpoint {
        let mut prev_round: Vec<(ClassId, SparseTcm)> =
            self.prev_round.iter().map(|(c, t)| (*c, t.clone())).collect();
        prev_round.sort_unstable_by_key(|(c, _)| *c);
        let mut converged: Vec<ClassId> = self.converged.iter().copied().collect();
        converged.sort_unstable();
        let mut drift_streaks: Vec<(ClassId, u32)> =
            self.drift_streak.iter().map(|(c, s)| (*c, *s)).collect();
        drift_streaks.sort_unstable_by_key(|(c, _)| *c);
        let mut reactivations: Vec<(ClassId, u32)> =
            self.reactivated.iter().map(|(c, n)| (*c, *n)).collect();
        reactivations.sort_unstable_by_key(|(c, _)| *c);
        ControllerCheckpoint {
            prev_round,
            converged,
            drift_streaks,
            reactivations,
        }
    }

    /// Overwrite the controller's mutable state from a checkpoint. Threshold,
    /// coverage floor and drift configuration are configuration, not state — they
    /// come from the (immutable) profiler config, so a restored controller keeps
    /// its own.
    pub fn restore(&mut self, cp: &ControllerCheckpoint) {
        self.prev_round = cp.prev_round.iter().cloned().collect();
        self.converged = cp.converged.iter().copied().collect();
        self.drift_streak = cp.drift_streaks.iter().copied().collect();
        self.reactivated = cp.reactivations.iter().copied().collect();
    }

    /// Has this class converged?
    pub fn is_converged(&self, class: ClassId) -> bool {
        self.converged.contains(&class)
    }

    /// Number of converged classes.
    pub fn converged_count(&self) -> usize {
        self.converged.len()
    }

    /// Total drift re-activations performed across all classes.
    pub fn reactivations(&self) -> u64 {
        self.reactivated.values().map(|n| u64::from(*n)).sum()
    }
}

/// Execute the resampling walk for `class` after a rate change: every existing object
/// of the class re-derives its sampled tag from its sequence number under the new gap.
/// Returns the number of objects visited; their cost is charged to `clock`.
pub fn apply_rate_change(gos: &Gos, gaps: &GapTable, class: ClassId, clock: &ClockHandle) -> usize {
    let mut visited = 0usize;
    gos.for_each_object_of_class(class, |core| {
        let len_elems = if core.is_array {
            let unit_words = gaps.state(class).unit_bytes as u32 / 8;
            core.len_words / unit_words.max(1)
        } else {
            1
        };
        core.set_sampled(gaps.decide_sampled(class, core.elem_seq0, len_elems));
        visited += 1;
    });
    clock.spend(gos.costs().resample_ns_per_obj * visited as u64);
    visited
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::SamplingRate;
    use jessy_net::ThreadId;

    fn round(class: ClassId, v: f64) -> HashMap<ClassId, SparseTcm> {
        let t = SparseTcm::from_pairs(2, &[(ThreadId(0), ThreadId(1), v)]);
        HashMap::from([(class, t)])
    }

    fn gaps_with(class: ClassId, unit: usize, rate: SamplingRate) -> GapTable {
        let g = GapTable::new(4096);
        g.register_class(class, unit, rate);
        g
    }

    #[test]
    fn first_round_only_baselines() {
        let class = ClassId(0);
        let gaps = gaps_with(class, 64, SamplingRate::NX(1));
        let mut ctl = AdaptiveController::new(0.05);
        assert!(ctl.on_round(&round(class, 100.0), &gaps).is_empty());
        assert!(!ctl.is_converged(class));
    }

    #[test]
    fn unstable_rounds_step_rate_up_until_converged() {
        let class = ClassId(0);
        let gaps = gaps_with(class, 64, SamplingRate::NX(1));
        let mut ctl = AdaptiveController::new(0.05);
        ctl.on_round(&round(class, 100.0), &gaps);
        // 50% off → step up.
        let changes = ctl.on_round(&round(class, 150.0), &gaps);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].class, class);
        assert_eq!(changes[0].new_state.rate, SamplingRate::NX(2));
        assert!(changes[0].relative_distance > 0.05);
        // Within threshold → converge, no more changes ever.
        let changes = ctl.on_round(&round(class, 151.0), &gaps);
        assert!(changes.is_empty());
        assert!(ctl.is_converged(class));
        let changes = ctl.on_round(&round(class, 9999.0), &gaps);
        assert!(changes.is_empty(), "without drift config, converged classes are frozen");
        assert_eq!(ctl.reactivations(), 0);
    }

    /// Drive `ctl` to convergence on `class` at value `v` (baseline + confirm round).
    fn converge_at(ctl: &mut AdaptiveController, class: ClassId, gaps: &GapTable, v: f64) {
        ctl.on_round(&round(class, v), gaps);
        let changes = ctl.on_round(&round(class, v), gaps);
        assert!(changes.is_empty());
        assert!(ctl.is_converged(class));
    }

    #[test]
    fn drift_reactivates_after_hysteresis() {
        let class = ClassId(0);
        let gaps = gaps_with(class, 64, SamplingRate::NX(1));
        let mut ctl = AdaptiveController::new(0.05).with_drift(DriftConfig::new(0.2));
        converge_at(&mut ctl, class, &gaps, 100.0);

        // First drifting round: streak 1 of 2 — still frozen.
        assert!(ctl.on_round(&round(class, 500.0), &gaps).is_empty());
        assert!(ctl.is_converged(class));
        // Second consecutive drifting round (vs the updated baseline 500): un-converge.
        let changes = ctl.on_round(&round(class, 900.0), &gaps);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].class, class);
        assert_eq!(changes[0].cause, RateCause::Drift);
        assert_eq!(changes[0].new_state.rate, SamplingRate::NX(2));
        assert!(!ctl.is_converged(class));
        assert_eq!(ctl.reactivations(), 1);

        // The normal refinement loop now owns the class again and re-converges it.
        let changes = ctl.on_round(&round(class, 905.0), &gaps);
        assert!(changes.is_empty());
        assert!(ctl.is_converged(class));
    }

    #[test]
    fn calm_round_resets_the_drift_streak() {
        let class = ClassId(0);
        let gaps = gaps_with(class, 64, SamplingRate::NX(1));
        let mut ctl = AdaptiveController::new(0.05).with_drift(DriftConfig::new(0.2));
        converge_at(&mut ctl, class, &gaps, 100.0);

        // Drift, calm, drift: the streak restarts, so no re-activation yet.
        assert!(ctl.on_round(&round(class, 500.0), &gaps).is_empty());
        assert!(ctl.on_round(&round(class, 501.0), &gaps).is_empty()); // calm
        assert!(ctl.on_round(&round(class, 900.0), &gaps).is_empty()); // streak 1 again
        assert!(ctl.is_converged(class));
        assert_eq!(ctl.reactivations(), 0);
    }

    #[test]
    fn reactivations_are_bounded_per_class() {
        let class = ClassId(0);
        let gaps = gaps_with(class, 64, SamplingRate::NX(1));
        let mut ctl = AdaptiveController::new(0.05).with_drift(DriftConfig {
            threshold: 0.2,
            hysteresis_rounds: 1,
            max_reactivations: 1,
        });
        converge_at(&mut ctl, class, &gaps, 100.0);

        // First drift: re-activates (budget 1 of 1), then re-converges.
        let changes = ctl.on_round(&round(class, 500.0), &gaps);
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].cause, RateCause::Drift);
        ctl.on_round(&round(class, 502.0), &gaps);
        assert!(ctl.is_converged(class));
        // Second drift: budget exhausted — frozen-forever behaviour restored.
        assert!(ctl.on_round(&round(class, 5000.0), &gaps).is_empty());
        assert!(ctl.on_round(&round(class, 9000.0), &gaps).is_empty());
        assert!(ctl.is_converged(class));
        assert_eq!(ctl.reactivations(), 1);
    }

    #[test]
    fn full_sampling_classes_never_drift_reactivate() {
        let class = ClassId(0);
        // 16 KB units: gap 1 at 1X — the map is exact, drift is the workload itself.
        let gaps = gaps_with(class, 16384, SamplingRate::NX(1));
        let mut ctl = AdaptiveController::new(0.05).with_drift(DriftConfig {
            threshold: 0.2,
            hysteresis_rounds: 1,
            max_reactivations: 8,
        });
        ctl.on_round(&round(class, 10.0), &gaps);
        ctl.on_round(&round(class, 20.0), &gaps); // converges by exhaustion
        assert!(ctl.is_converged(class));
        assert!(ctl.on_round(&round(class, 900.0), &gaps).is_empty());
        assert!(ctl.is_converged(class));
        assert_eq!(ctl.reactivations(), 0);
    }

    #[test]
    fn low_coverage_rounds_do_not_advance_drift_streaks() {
        let class = ClassId(0);
        let gaps = gaps_with(class, 64, SamplingRate::NX(1));
        let mut ctl = AdaptiveController::new(0.05)
            .with_min_coverage(0.9)
            .with_drift(DriftConfig::new(0.2));
        assert!(matches!(
            ctl.on_round_with_coverage(&round(class, 100.0), &gaps, 1.0),
            RoundOutcome::Applied(_)
        ));
        assert!(matches!(
            ctl.on_round_with_coverage(&round(class, 100.0), &gaps, 1.0),
            RoundOutcome::Applied(_)
        ));
        assert!(ctl.is_converged(class));
        // Two lossy "drifting" rounds: skipped wholesale, streak stays at zero.
        for _ in 0..2 {
            assert!(matches!(
                ctl.on_round_with_coverage(&round(class, 900.0), &gaps, 0.5),
                RoundOutcome::SkippedLowCoverage { .. }
            ));
        }
        assert!(ctl.is_converged(class));
        assert_eq!(ctl.checkpoint().drift_streaks, vec![]);
    }

    #[test]
    fn checkpoint_roundtrips_drift_state_mid_phase_change() {
        let class = ClassId(0);
        let gaps = gaps_with(class, 64, SamplingRate::NX(1));
        let drift = DriftConfig::new(0.2); // hysteresis 2
        let mut live = AdaptiveController::new(0.05).with_drift(drift);
        converge_at(&mut live, class, &gaps, 100.0);
        // One drifting round: streak 1, class still converged — the exact moment a
        // master crash mid-phase-change would snapshot.
        assert!(live.on_round(&round(class, 500.0), &gaps).is_empty());

        let cp = live.checkpoint();
        assert_eq!(cp.drift_streaks, vec![(class, 1)]);
        let json = serde_json::to_string(&cp).unwrap();
        let back: ControllerCheckpoint = serde_json::from_str(&json).unwrap();
        assert_eq!(cp, back);

        let mut restored = AdaptiveController::new(0.05).with_drift(drift);
        restored.restore(&back);
        // Both controllers see the second drifting round and un-converge in lockstep:
        // the restore did not resurrect stale convergence.
        let a = live.on_round(&round(class, 900.0), &gaps);
        let gaps2 = gaps_with(class, 64, SamplingRate::NX(1));
        let b = restored.on_round(&round(class, 900.0), &gaps2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].cause, RateCause::Drift);
        assert_eq!(restored.reactivations(), 1);
    }

    #[test]
    fn full_sampling_classes_converge_by_exhaustion() {
        let class = ClassId(0);
        // A 16 KB class: gap is 1 even at 1X — nothing to refine.
        let gaps = gaps_with(class, 16384, SamplingRate::NX(1));
        let mut ctl = AdaptiveController::new(0.01);
        ctl.on_round(&round(class, 10.0), &gaps);
        let changes = ctl.on_round(&round(class, 20.0), &gaps);
        assert!(changes.is_empty());
        assert!(ctl.is_converged(class));
    }

    #[test]
    fn low_coverage_rounds_neither_steer_nor_baseline() {
        let class = ClassId(0);
        let gaps = gaps_with(class, 64, SamplingRate::NX(1));
        let mut ctl = AdaptiveController::new(0.05).with_min_coverage(0.9);
        // Clean baseline round.
        assert_eq!(
            ctl.on_round_with_coverage(&round(class, 100.0), &gaps, 1.0),
            RoundOutcome::Applied(vec![])
        );
        // Lossy round: skipped, baseline untouched.
        match ctl.on_round_with_coverage(&round(class, 500.0), &gaps, 0.5) {
            RoundOutcome::SkippedLowCoverage { coverage, min_coverage } => {
                assert_eq!(coverage, 0.5);
                assert_eq!(min_coverage, 0.9);
            }
            other => panic!("expected skip, got {other:?}"),
        }
        // The next trusted round compares against the clean baseline (100, not 500):
        // 1% off converges instead of stepping the rate on a phantom shift.
        assert_eq!(
            ctl.on_round_with_coverage(&round(class, 101.0), &gaps, 1.0),
            RoundOutcome::Applied(vec![])
        );
        assert!(ctl.is_converged(class));
    }

    #[test]
    fn zero_floor_gates_nothing() {
        let class = ClassId(0);
        let gaps = gaps_with(class, 64, SamplingRate::NX(1));
        let mut ctl = AdaptiveController::new(0.05);
        assert_eq!(ctl.min_coverage(), 0.0);
        // Even a zero-coverage round is applied when no floor is configured.
        assert!(matches!(
            ctl.on_round_with_coverage(&round(class, 100.0), &gaps, 0.0),
            RoundOutcome::Applied(_)
        ));
    }

    #[test]
    fn checkpoint_restore_resumes_identical_decisions() {
        let c0 = ClassId(0);
        let c1 = ClassId(1);
        let gaps = gaps_with(c0, 64, SamplingRate::NX(1));
        gaps.register_class(c1, 64, SamplingRate::NX(1));
        let mk = |v0: f64, v1: f64| {
            HashMap::from([
                (c0, SparseTcm::from_pairs(2, &[(ThreadId(0), ThreadId(1), v0)])),
                (c1, SparseTcm::from_pairs(2, &[(ThreadId(0), ThreadId(1), v1)])),
            ])
        };
        let mut live = AdaptiveController::new(0.05);
        live.on_round(&mk(100.0, 50.0), &gaps);
        // c0 converges (1% off); c1 is 60% off -> steps to NX(2), stays live.
        live.on_round(&mk(101.0, 80.0), &gaps);

        let cp = live.checkpoint();
        assert_eq!(cp.converged, vec![c0]);
        assert_eq!(cp.prev_round.len(), 2);
        // Canonical: a second snapshot of the same state is equal.
        assert_eq!(cp, live.checkpoint());

        // A fresh controller restored from the checkpoint makes the same call on the
        // next round as the uninterrupted one (c1 is 25% off baseline -> step). The
        // gap table mirrors the rate restore the master performs: c1 resumes at the
        // NX(2) it held at checkpoint time.
        let mut restored = AdaptiveController::new(0.05);
        restored.restore(&cp);
        let gaps2 = gaps_with(c0, 64, SamplingRate::NX(1));
        gaps2.register_class(c1, 64, SamplingRate::NX(2));
        let a = live.on_round(&mk(101.0, 100.0), &gaps);
        let b = restored.on_round(&mk(101.0, 100.0), &gaps2);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].class, c1);
    }

    #[test]
    fn apply_rate_change_retags_objects() {
        use jessy_gos::{CostModel, GosConfig};
        use jessy_net::{ClockBoard, LatencyModel, NodeId};

        let gos = Gos::new(GosConfig {
            n_nodes: 1,
            n_threads: 4,
            latency: LatencyModel::free(),
            costs: CostModel::pentium4_2ghz(),
            prefetch_depth: 0,
            consistency: jessy_gos::protocol::ConsistencyModel::GlobalHlrc,
            faults: None,
        });
        let clock = ClockBoard::new(1).handle(ThreadId(0));
        let class = gos.classes().register_scalar("Body", 8); // 64 B
        let gaps = GapTable::new(4096);
        gaps.register_class(class, 64, SamplingRate::NX(1)); // gap 67

        let mut objs = Vec::new();
        for _ in 0..200 {
            objs.push(gos.alloc_scalar(NodeId(0), class, &clock, None));
        }
        // Initial tagging at allocation time (what the runtime does).
        for o in &objs {
            o.set_sampled(gaps.decide_sampled(class, o.elem_seq0, 1));
        }
        let before: usize = objs.iter().filter(|o| o.is_sampled()).count();
        assert_eq!(before, 3, "seq 0, 67, 134 under gap 67");

        gaps.set_rate(class, SamplingRate::NX(4)); // gap 17
        let t0 = clock.now();
        let visited = apply_rate_change(&gos, &gaps, class, &clock);
        assert_eq!(visited, 200);
        assert!(clock.now() > t0, "walk cost charged");
        let after: usize = objs.iter().filter(|o| o.is_sampled()).count();
        assert_eq!(after, 200usize.div_ceil(17), "multiples of 17 in [0,200)");
    }
}
