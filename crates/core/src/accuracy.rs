//! Sampling accuracy metrics (Section II.B.2).
//!
//! Given two correlation maps `A` (coarser sampling) and `B` (the reference), the
//! paper measures their distance by
//!
//! * Euclidean norm: `E_EUC = ‖A − B‖₂ / ‖B‖₂`   (formula 1)
//! * absolute value: `E_ABS = Σ|aᵢⱼ − bᵢⱼ| / Σ|bᵢⱼ|` (formula 2)
//!
//! and reports **accuracy** as `1 − E`. When `B` comes from full sampling this is the
//! *absolute* accuracy; when `B` is merely the next finer rate it is the *relative*
//! accuracy the adaptive controller steers by (Fig. 9 shows the two track each other).

use crate::tcm::{SparseTcm, Tcm};

/// `E_ABS` distance between `a` and the reference `b` (formula 2). Returns 0 for two
/// all-zero maps, and +∞ if only the reference is all-zero.
///
/// ```
/// use jessy_core::{e_abs, Tcm};
/// use jessy_net::ThreadId;
///
/// let mut truth = Tcm::new(2);
/// truth.add_pair(ThreadId(0), ThreadId(1), 100.0);
/// let mut estimate = Tcm::new(2);
/// estimate.add_pair(ThreadId(0), ThreadId(1), 95.0);
/// assert!((e_abs(&estimate, &truth) - 0.05).abs() < 1e-12); // 95% accurate
/// ```
pub fn e_abs(a: &Tcm, b: &Tcm) -> f64 {
    assert_eq!(a.n(), b.n(), "maps must have equal dimensions");
    let num: f64 = a
        .raw()
        .iter()
        .zip(b.raw())
        .map(|(x, y)| (x - y).abs())
        .sum();
    let den: f64 = b.raw().iter().map(|y| y.abs()).sum();
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

/// `E_EUC` distance between `a` and the reference `b` (formula 1).
pub fn e_euc(a: &Tcm, b: &Tcm) -> f64 {
    assert_eq!(a.n(), b.n(), "maps must have equal dimensions");
    let num: f64 = a
        .raw()
        .iter()
        .zip(b.raw())
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.raw().iter().map(|y| y * y).sum::<f64>().sqrt();
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

/// `E_ABS` distance between two sparse maps (formula 2) via a sorted union walk —
/// `O(|a| + |b|)` touched cells, no densification. Matches [`e_abs`] on the dense
/// expansions: both metrics are ratios, so the triangular packing (which halves
/// numerator and denominator alike) leaves the value unchanged.
pub fn e_abs_sparse(a: &SparseTcm, b: &SparseTcm) -> f64 {
    assert_eq!(a.n(), b.n(), "maps must have equal dimensions");
    let (ac, bc) = (a.cells(), b.cells());
    let (mut i, mut j) = (0, 0);
    let mut num = 0.0;
    let mut den = 0.0;
    while i < ac.len() && j < bc.len() {
        match ac[i].0.cmp(&bc[j].0) {
            std::cmp::Ordering::Less => {
                num += ac[i].1.abs();
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                num += bc[j].1.abs();
                den += bc[j].1.abs();
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                num += (ac[i].1 - bc[j].1).abs();
                den += bc[j].1.abs();
                i += 1;
                j += 1;
            }
        }
    }
    num += ac[i..].iter().map(|&(_, v)| v.abs()).sum::<f64>();
    let tail: f64 = bc[j..].iter().map(|&(_, v)| v.abs()).sum();
    num += tail;
    den += tail;
    if den == 0.0 {
        if num == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

/// Accuracy under the absolute-value metric: `1 − E_ABS`, clamped to `[0, 1]`.
pub fn accuracy_abs(a: &Tcm, b: &Tcm) -> f64 {
    (1.0 - e_abs(a, b)).clamp(0.0, 1.0)
}

/// Accuracy under the Euclidean metric: `1 − E_EUC`, clamped to `[0, 1]`.
pub fn accuracy_euc(a: &Tcm, b: &Tcm) -> f64 {
    (1.0 - e_euc(a, b)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jessy_net::ThreadId;

    fn map(pairs: &[(u32, u32, f64)], n: usize) -> Tcm {
        let mut t = Tcm::new(n);
        for &(i, j, v) in pairs {
            t.add_pair(ThreadId(i), ThreadId(j), v);
        }
        t
    }

    #[test]
    fn identical_maps_have_zero_distance() {
        let a = map(&[(0, 1, 10.0), (1, 2, 4.0)], 3);
        assert_eq!(e_abs(&a, &a), 0.0);
        assert_eq!(e_euc(&a, &a), 0.0);
        assert_eq!(accuracy_abs(&a, &a), 1.0);
        assert_eq!(accuracy_euc(&a, &a), 1.0);
    }

    #[test]
    fn abs_distance_matches_hand_computation() {
        let a = map(&[(0, 1, 8.0)], 2);
        let b = map(&[(0, 1, 10.0)], 2);
        // One packed cell per pair: |8-10| / 10 = 0.2 (the dense form's duplicated
        // halves cancel in the ratio).
        assert!((e_abs(&a, &b) - 0.2).abs() < 1e-12);
        assert!((accuracy_abs(&a, &b) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn sparse_distance_matches_dense() {
        let t = |i| ThreadId(i);
        let a = SparseTcm::from_pairs(4, &[(t(0), t(1), 8.0), (t(2), t(3), 4.0)]);
        let b = SparseTcm::from_pairs(4, &[(t(0), t(1), 10.0), (t(1), t(2), 2.0)]);
        let dense = e_abs(&a.to_dense(), &b.to_dense());
        assert!((e_abs_sparse(&a, &b) - dense).abs() < 1e-12);
        // (|8-10| + |4-0| + |0-2|) / (10 + 2)
        assert!((e_abs_sparse(&a, &b) - 8.0 / 12.0).abs() < 1e-12);
        // Edge cases mirror the dense metric.
        let z = SparseTcm::new(4);
        assert_eq!(e_abs_sparse(&z, &z), 0.0);
        assert_eq!(e_abs_sparse(&a, &z), f64::INFINITY);
    }

    #[test]
    fn euc_distance_matches_hand_computation() {
        let a = map(&[(0, 1, 8.0)], 2);
        let b = map(&[(0, 1, 10.0)], 2);
        // sqrt(2*(8-10)^2) / sqrt(2*10^2) = 2/10.
        assert!((e_euc(&a, &b) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn abs_bounds_euc_for_concentrated_error() {
        // ABS weighs the maximum deviation of total communication estimates; EUC is
        // dominated by single large deviations. For an error concentrated in one entry
        // relative to mass spread over many, ABS < EUC.
        let mut b = Tcm::new(10);
        for i in 0..9u32 {
            b.add_pair(ThreadId(i), ThreadId(i + 1), 10.0);
        }
        let mut a = b.clone();
        a.add_pair(ThreadId(0), ThreadId(9), 10.0); // one spurious pair
        let abs = e_abs(&a, &b);
        let euc = e_euc(&a, &b);
        assert!(abs < euc, "abs={abs} euc={euc}");
    }

    #[test]
    fn zero_reference_edge_cases() {
        let z = Tcm::new(2);
        let a = map(&[(0, 1, 1.0)], 2);
        assert_eq!(e_abs(&z, &z), 0.0);
        assert_eq!(e_abs(&a, &z), f64::INFINITY);
        assert_eq!(accuracy_abs(&a, &z), 0.0, "clamped");
    }

    #[test]
    #[should_panic(expected = "equal dimensions")]
    fn dimension_mismatch_panics() {
        let _ = e_abs(&Tcm::new(2), &Tcm::new(3));
    }
}
