//! # jessy-core — adaptive sampling-based profiling
//!
//! The paper's primary contribution, reimplemented on the `jessy-gos`/`jessy-stack`
//! substrates:
//!
//! * **Adaptive object sampling** ([`sampling`]) — per-class prime sampling gaps
//!   derived from the `nX` page-relative rate notation (`gap = SP / (s·n)`), the
//!   sampled/unsampled decision over per-class sequence numbers, and the array
//!   amortization scheme of Section II.B.3. Logged sizes are scaled by the gap
//!   (a Horvitz–Thompson estimator), which is what makes the paper's accuracy
//!   numbers achievable at coarse rates.
//! * **Correlation tracking** ([`oal`], [`tcm`], [`accuracy`]) — per-thread,
//!   per-interval Object Access Lists fed to a central analyzer that reorganizes them
//!   per object and accrues the Thread Correlation Map; the two distance metrics
//!   (`E_ABS`, `E_EUC`) of Section II.B.2.
//! * **The adaptive rate controller** ([`adaptive`]) — stepwise rate refinement driven
//!   by *relative* accuracy between successive rounds, with resampling walks after
//!   each change.
//! * **The overhead-budget loop** ([`budget`]) — a second feedback loop that keeps the
//!   profiler's own measured cost within an SLO fraction of charged compute via a
//!   deterministic degradation ladder (coarsen rates → merge rounds → summary OALs).
//! * **Stack sampling** ([`stack_sampling`]) — the Fig. 8 algorithm with all four
//!   optimizations (timer activation, two-phase scan over visited flags, lazy raw
//!   extraction, comparison by probing) to mine **stack-invariant references**.
//! * **Sticky sets** ([`sticky`]) — footprinting by repeated sampling within an
//!   interval, and resolution over the object graph from stack invariants using
//!   sampled objects as landmarks.
//! * **The per-thread facade** ([`profiler`]) — what the runtime drives: access hooks,
//!   interval open/close with false-invalid arming, and the profiling statistics the
//!   benchmark tables read.


#![warn(missing_docs)]
pub mod accuracy;
pub mod adaptive;
pub mod budget;
pub mod config;
pub mod distributed;
pub mod homeaware;
pub mod oal;
pub mod pcct;
pub mod profiler;
pub mod sampling;
pub mod stack_sampling;
pub mod sticky;
pub mod tcm;
pub mod view;

pub use accuracy::{accuracy_abs, accuracy_euc, e_abs, e_abs_sparse, e_euc};
pub use adaptive::{
    AdaptiveController, ControllerCheckpoint, DriftConfig, RateCause, RateChange, RoundOutcome,
};
pub use budget::{BudgetCheckpoint, BudgetOutcome, BudgetedController, DegradeStep};
pub use config::{
    ConfigError, FootprintConfig, FootprintMode, ProfilerConfig, ShedPolicy, StackSamplingConfig,
    TcmBackend,
};
pub use distributed::{
    merge_round_summaries, tree_parent, ShardedTcmReducer, SplitScratch, TcmPartial,
    TreeEdge, TreeRoundStats, TreeTcmReducer,
};
pub use homeaware::{HomeAwareAnalyzer, HomeAwareReport, HomeMigrationRec};
pub use oal::{Oal, OalEntry, OalRef};
pub use pcct::{Pcct, PcctSampler};
pub use profiler::{ProfilerShared, ProfilerStats, ThreadProfiler};
pub use sampling::{GapTable, SamplingRate};
pub use stack_sampling::StackSampler;
pub use tcm::{MergeScratch, RoundSummary, SketchTcm, SparseTcm, Tcm, TcmBuilder, TopKPairs};
pub use view::{CorrelationView, SketchedTopKView};
