//! Sticky-set profiling (Section III).
//!
//! The **sticky set** of a migrant thread is the set of objects that were accessed
//! before the migration *and* will be accessed again after it within the same HLRC
//! interval — exactly the objects whose remote re-faults constitute the hidden,
//! indirect cost of a thread migration. It is estimated by a two-way strategy:
//!
//! * [`footprint`] — repeated object sampling within an interval yields per-class
//!   **footprints** (bytes of frequently-accessed sampled objects): how *much* of each
//!   class is sticky;
//! * [`resolution`] — stack-invariant references (from [`crate::stack_sampling`])
//!   provide the entry points, and a graph walk guided by sampled **landmark** objects
//!   selects *which* objects to prefetch until the footprints are met.

pub mod footprint;
pub mod resolution;

pub use footprint::{FootprintSnapshot, FootprintTracker};
pub use resolution::{resolve_sticky_set, Resolution};
