//! Sticky-set resolution (Section III.A.3, Fig. 5).
//!
//! Invoked lazily at thread-migration time. Starting from the stack-invariant
//! references (**topmost first** — top invariants tend to be more recent), the resolver
//! traces the object reference graph selecting prefetch candidates (sampled or not)
//! until the amount of *reachable sampled* bytes hits the per-class footprint estimated
//! by object sampling. Sampled objects double as **landmarks**: if a traversal runs
//! `t × gap` objects of some class without meeting one, it is probably heading away
//! from the sticky set and the current root is abandoned for the next invariant.

use std::collections::{HashMap, HashSet};

use serde::{Deserialize, Serialize};

use jessy_gos::{ClassId, Gos, ObjectId};
use jessy_net::ClockHandle;

use crate::sampling::GapTable;

/// Result of one sticky-set resolution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Resolution {
    /// Selected prefetch candidates, in visit order.
    pub selected: Vec<ObjectId>,
    /// Total payload bytes of the selected objects (the prefetch volume).
    pub total_bytes: u64,
    /// Gap-scaled sampled bytes collected per class (compared against the budget).
    pub collected: HashMap<ClassId, u64>,
    /// Graph edges traversed.
    pub edges_visited: u64,
    /// Roots abandoned by the landmark heuristic.
    pub aborted_roots: u32,
    /// Whether every budgeted class was satisfied.
    pub budget_met: bool,
}

fn budget_met(budget: &HashMap<ClassId, u64>, collected: &HashMap<ClassId, u64>) -> bool {
    budget
        .iter()
        .all(|(class, need)| *need == 0 || collected.get(class).copied().unwrap_or(0) >= *need)
}

/// Resolve the sticky set from `roots` (stack invariants, topmost first) against the
/// per-class footprint `budget`, with landmark tolerance `tolerance_t` (> 1).
///
/// Each root is explored breadth-first. Per class, a run counter tracks objects seen
/// since the last sampled landmark; exceeding `t × gap(class)` aborts the root. The
/// walk ends as soon as every budgeted class is satisfied.
pub fn resolve_sticky_set(
    gos: &Gos,
    gaps: &GapTable,
    roots: &[ObjectId],
    budget: &HashMap<ClassId, u64>,
    tolerance_t: f64,
    clock: &ClockHandle,
) -> Resolution {
    assert!(tolerance_t > 1.0, "tolerance t must exceed 1");
    let mut res = Resolution::default();
    let mut visited: HashSet<ObjectId> = HashSet::new();
    let edge_cost = gos.costs().resolve_edge_ns;

    'roots: for &root in roots {
        if budget_met(budget, &res.collected) {
            break;
        }
        if visited.contains(&root) {
            continue;
        }
        // Per-root landmark run counters.
        let mut unsampled_run: HashMap<ClassId, u64> = HashMap::new();
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(root);
        while let Some(obj) = queue.pop_front() {
            if !visited.insert(obj) {
                continue;
            }
            let core = gos.object(obj);
            res.selected.push(obj);
            res.total_bytes += core.payload_bytes() as u64;

            let class = core.class;
            let run = unsampled_run.entry(class).or_insert(0);
            if core.is_sampled() {
                *run = 0;
                let len_elems = if core.is_array {
                    let unit_words = (gaps.state(class).unit_bytes / 8).max(1) as u32;
                    core.len_words / unit_words
                } else {
                    1
                };
                let scaled = gaps.scaled_bytes(class, core.elem_seq0, len_elems);
                *res.collected.entry(class).or_insert(0) += scaled;
                if budget_met(budget, &res.collected) {
                    res.budget_met = true;
                    return res;
                }
            } else {
                *run += 1;
                let limit = (tolerance_t * gaps.gap(class) as f64).ceil() as u64;
                if *run > limit {
                    // Wrong direction: abandon this root, try the next invariant.
                    res.aborted_roots += 1;
                    continue 'roots;
                }
            }

            for child in core.refs() {
                clock.spend(edge_cost);
                res.edges_visited += 1;
                if !visited.contains(&child) {
                    queue.push_back(child);
                }
            }
        }
    }
    res.budget_met = budget_met(budget, &res.collected);
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::SamplingRate;
    use jessy_gos::{CostModel, GosConfig};
    use jessy_net::{ClockBoard, LatencyModel, NodeId, ThreadId};

    struct Fixture {
        gos: Gos,
        gaps: GapTable,
        clock: ClockHandle,
        class: ClassId,
    }

    /// Build a GOS with one 8-byte scalar class at an explicit gap.
    fn fixture(rate: SamplingRate) -> Fixture {
        let gos = Gos::new(GosConfig {
            n_nodes: 1,
            n_threads: 4,
            latency: LatencyModel::free(),
            costs: CostModel::pentium4_2ghz(),
            prefetch_depth: 0,
            consistency: jessy_gos::protocol::ConsistencyModel::GlobalHlrc,
            faults: None,
        });
        let clock = ClockBoard::new(1).handle(ThreadId(0));
        let class = gos.classes().register_scalar("Node", 1);
        let gaps = GapTable::new(4096);
        gaps.register_class(class, 8, rate);
        Fixture {
            gos,
            gaps,
            clock,
            class,
        }
    }

    /// Allocate a linked chain of `n` objects, tagging sampled from the gap table;
    /// returns ids head-first.
    fn chain(f: &Fixture, n: usize) -> Vec<ObjectId> {
        let mut ids = Vec::new();
        for _ in 0..n {
            let core = f.gos.alloc_scalar(NodeId(0), f.class, &f.clock, None);
            core.set_sampled(f.gaps.decide_sampled(f.class, core.elem_seq0, 1));
            if let Some(&prev) = ids.last() {
                f.gos.object(prev).add_ref(core.id);
            }
            ids.push(core.id);
        }
        ids
    }

    #[test]
    fn walks_until_budget_met() {
        let f = fixture(SamplingRate::Full); // every object sampled, gap 1
        let ids = chain(&f, 100);
        // Budget: 10 sampled objects' worth (8 bytes scaled ×1 each).
        let budget = HashMap::from([(f.class, 80u64)]);
        let res = resolve_sticky_set(&f.gos, &f.gaps, &ids[..1], &budget, 2.0, &f.clock);
        assert!(res.budget_met);
        assert_eq!(res.selected.len(), 10, "stops right at the budget");
        assert_eq!(res.total_bytes, 80);
        assert_eq!(res.collected[&f.class], 80);
    }

    #[test]
    fn landmark_tolerance_aborts_wrong_directions() {
        let f = fixture(SamplingRate::Full);
        // Root A leads into a chain of UNSAMPLED objects (gap 1 ⇒ limit = t*1 = 2):
        // the walk must abort after ~2 unsampled objects and move to root B.
        let bad = chain(&f, 30);
        for &id in &bad {
            f.gos.object(id).set_sampled(false);
        }
        let good = chain(&f, 10); // all sampled
        let budget = HashMap::from([(f.class, 40u64)]);
        let res = resolve_sticky_set(
            &f.gos,
            &f.gaps,
            &[bad[0], good[0]],
            &budget,
            2.0,
            &f.clock,
        );
        assert!(res.budget_met);
        assert_eq!(res.aborted_roots, 1);
        assert!(
            res.selected.len() <= 3 + 5,
            "bad path truncated: {:?}",
            res.selected.len()
        );
        assert!(res.selected.contains(&good[0]));
    }

    #[test]
    fn unsampled_objects_are_still_selected() {
        // "regardless of sampled or unsampled" — unsampled objects between landmarks
        // are prefetch candidates too.
        let f = fixture(SamplingRate::NX(128)); // 8-byte class, 128X → nominal gap 4
        assert_eq!(f.gaps.gap(f.class), 5, "nearest prime to 4 (upward tie-break)");
        let ids = chain(&f, 20);
        let sampled: Vec<bool> = ids
            .iter()
            .map(|id| f.gos.object(*id).is_sampled())
            .collect();
        assert!(sampled.iter().any(|s| !*s), "need unsampled objects in the chain");
        let budget = HashMap::from([(f.class, u64::MAX)]); // walk everything
        let res = resolve_sticky_set(&f.gos, &f.gaps, &ids[..1], &budget, 3.0, &f.clock);
        assert!(!res.budget_met);
        assert!(
            res.selected.len() > sampled.iter().filter(|s| **s).count(),
            "selection includes unsampled objects"
        );
    }

    #[test]
    fn roots_are_tried_in_order_and_deduplicated() {
        let f = fixture(SamplingRate::Full);
        let ids = chain(&f, 5);
        let budget = HashMap::from([(f.class, u64::MAX)]);
        // Same root twice plus a mid-chain root already covered by the first walk.
        let res = resolve_sticky_set(
            &f.gos,
            &f.gaps,
            &[ids[0], ids[0], ids[2]],
            &budget,
            2.0,
            &f.clock,
        );
        assert_eq!(res.selected.len(), 5, "no duplicates");
    }

    #[test]
    fn empty_budget_is_trivially_met() {
        let f = fixture(SamplingRate::Full);
        let ids = chain(&f, 3);
        let res =
            resolve_sticky_set(&f.gos, &f.gaps, &ids[..1], &HashMap::new(), 2.0, &f.clock);
        assert!(res.budget_met);
    }

    #[test]
    fn resolution_charges_edge_costs() {
        let f = fixture(SamplingRate::Full);
        let ids = chain(&f, 10);
        let before = f.clock.now();
        let budget = HashMap::from([(f.class, u64::MAX)]);
        let res = resolve_sticky_set(&f.gos, &f.gaps, &ids[..1], &budget, 2.0, &f.clock);
        assert_eq!(res.edges_visited, 9);
        assert!(f.clock.now() > before);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn tolerance_must_exceed_one() {
        let f = fixture(SamplingRate::Full);
        let _ = resolve_sticky_set(&f.gos, &f.gaps, &[], &HashMap::new(), 1.0, &f.clock);
    }
}
