//! Sticky-set footprinting (Section III.A.1).
//!
//! Within one interval the profiler makes "repeated calls of adaptive object sampling"
//! — probe rounds — and counts, per sampled object, in how many rounds it was accessed.
//! An object hit in at least two rounds is *constantly accessed throughout the
//! interval* and becomes a sticky candidate; its gap-scaled bytes accrue to its class's
//! **footprint**. Two cadences exist (Table V): `Nonstop` (every access is its own
//! round — exact frequencies, maximal overhead) and `Timer` (rounds separated by a
//! simulated-time gap, 100 ms in the paper).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use jessy_gos::{ClassId, ObjectId};
use jessy_net::SimNanos;

use crate::config::{FootprintConfig, FootprintMode};

#[derive(Debug, Clone)]
struct ObjHit {
    class: ClassId,
    scaled_bytes: u64,
    rounds_hit: u32,
    last_round: u32,
}

/// Per-class sticky footprint of one closed interval.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FootprintSnapshot {
    /// Gap-scaled sticky bytes per class.
    pub per_class: HashMap<ClassId, u64>,
    /// Number of sticky candidate objects.
    pub sticky_objects: usize,
    /// Probe rounds the interval contained.
    pub rounds: u32,
}

impl FootprintSnapshot {
    /// Total sticky bytes over all classes.
    pub fn total_bytes(&self) -> u64 {
        self.per_class.values().sum()
    }
}

/// Tracks access frequency of sampled objects across probe rounds within an interval,
/// and accumulates per-class footprints across intervals.
#[derive(Debug)]
pub struct FootprintTracker {
    config: FootprintConfig,
    round: u32,
    round_started: Option<SimNanos>,
    hits: HashMap<ObjectId, ObjHit>,
    totals: HashMap<ClassId, u64>,
    intervals: u64,
}

impl FootprintTracker {
    /// Tracker with the given cadence.
    pub fn new(config: FootprintConfig) -> Self {
        FootprintTracker {
            config,
            round: 0,
            round_started: None,
            hits: HashMap::new(),
            totals: HashMap::new(),
            intervals: 0,
        }
    }

    /// The cadence in force.
    pub fn config(&self) -> FootprintConfig {
        self.config
    }

    /// Should a new probe round start now? (Timer mode only; in `Nonstop` mode every
    /// logged access advances the round by itself.) The caller re-arms false-invalid
    /// traps when this returns `true`.
    pub fn should_probe(&self, now: SimNanos) -> bool {
        match self.config.mode {
            FootprintMode::Nonstop => false,
            FootprintMode::Timer(gap) => match self.round_started {
                None => true,
                Some(started) => now.saturating_sub(started) >= gap,
            },
        }
    }

    /// Open a new probe round at simulated time `now`.
    pub fn start_round(&mut self, now: SimNanos) {
        self.round += 1;
        self.round_started = Some(now);
    }

    /// Record a logged access to a sampled object. In `Nonstop` mode every access
    /// counts as a fresh round (exact frequency counting).
    pub fn on_logged_access(&mut self, obj: ObjectId, class: ClassId, scaled_bytes: u64) {
        if matches!(self.config.mode, FootprintMode::Nonstop) {
            self.round += 1;
        }
        let round = self.round;
        let hit = self.hits.entry(obj).or_insert(ObjHit {
            class,
            scaled_bytes,
            rounds_hit: 0,
            last_round: u32::MAX,
        });
        hit.scaled_bytes = hit.scaled_bytes.max(scaled_bytes);
        if hit.last_round != round {
            hit.rounds_hit += 1;
            hit.last_round = round;
        }
    }

    /// Objects hit this interval (the set the caller re-arms at a probe round).
    pub fn hit_objects(&self) -> Vec<ObjectId> {
        self.hits.keys().copied().collect()
    }

    /// Iterator over the objects hit this interval — what a probe round re-arms,
    /// without allocating the intermediate `Vec`.
    pub fn hits(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.hits.keys().copied()
    }

    /// Close the interval: fold objects hit in ≥ 2 rounds into per-class footprints,
    /// reset per-interval state, and return the interval's snapshot.
    pub fn close_interval(&mut self) -> FootprintSnapshot {
        let mut snapshot = FootprintSnapshot {
            rounds: self.round,
            ..Default::default()
        };
        for hit in self.hits.values() {
            if hit.rounds_hit >= 2 {
                *snapshot.per_class.entry(hit.class).or_insert(0) += hit.scaled_bytes;
                snapshot.sticky_objects += 1;
            }
        }
        for (class, bytes) in &snapshot.per_class {
            *self.totals.entry(*class).or_insert(0) += bytes;
        }
        self.intervals += 1;
        self.hits.clear();
        self.round = 0;
        self.round_started = None;
        snapshot
    }

    /// Average per-class footprint over all closed intervals — the "Average SS
    /// Footprint" column of Table IV.
    pub fn average_footprint(&self) -> HashMap<ClassId, f64> {
        if self.intervals == 0 {
            return HashMap::new();
        }
        self.totals
            .iter()
            .map(|(c, b)| (*c, *b as f64 / self.intervals as f64))
            .collect()
    }

    /// Cumulative per-class footprint totals.
    pub fn totals(&self) -> &HashMap<ClassId, u64> {
        &self.totals
    }

    /// Intervals closed so far.
    pub fn intervals(&self) -> u64 {
        self.intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer_tracker(gap: u64) -> FootprintTracker {
        FootprintTracker::new(FootprintConfig {
            mode: FootprintMode::Timer(gap),
            min_gap: 1,
        })
    }

    #[test]
    fn object_hit_in_two_rounds_is_sticky() {
        let mut t = timer_tracker(100);
        t.start_round(0);
        t.on_logged_access(ObjectId(1), ClassId(0), 64);
        t.on_logged_access(ObjectId(2), ClassId(0), 64);
        t.start_round(100);
        t.on_logged_access(ObjectId(1), ClassId(0), 64); // only obj 1 recurs
        let snap = t.close_interval();
        assert_eq!(snap.sticky_objects, 1);
        assert_eq!(snap.per_class[&ClassId(0)], 64);
        assert_eq!(snap.rounds, 2);
        assert_eq!(snap.total_bytes(), 64);
    }

    #[test]
    fn repeated_hits_within_one_round_do_not_count_twice() {
        let mut t = timer_tracker(100);
        t.start_round(0);
        for _ in 0..10 {
            t.on_logged_access(ObjectId(1), ClassId(0), 8);
        }
        let snap = t.close_interval();
        assert_eq!(snap.sticky_objects, 0, "one round, however many hits, is not sticky");
    }

    #[test]
    fn nonstop_mode_counts_every_access() {
        let mut t = FootprintTracker::new(FootprintConfig {
            mode: FootprintMode::Nonstop,
            min_gap: 1,
        });
        assert!(!t.should_probe(0), "nonstop never asks for timer rounds");
        t.on_logged_access(ObjectId(1), ClassId(0), 8);
        t.on_logged_access(ObjectId(1), ClassId(0), 8);
        t.on_logged_access(ObjectId(2), ClassId(0), 8);
        let snap = t.close_interval();
        assert_eq!(snap.sticky_objects, 1, "obj 1 hit twice, obj 2 once");
    }

    #[test]
    fn timer_cadence_gates_rounds() {
        let t = timer_tracker(100);
        assert!(t.should_probe(0), "first round always due");
        let mut t = t;
        t.start_round(50);
        assert!(!t.should_probe(149));
        assert!(t.should_probe(150));
    }

    #[test]
    fn averages_accumulate_across_intervals() {
        let mut t = timer_tracker(10);
        for _ in 0..2 {
            t.start_round(0);
            t.on_logged_access(ObjectId(1), ClassId(3), 100);
            t.start_round(10);
            t.on_logged_access(ObjectId(1), ClassId(3), 100);
            t.close_interval();
        }
        // Third interval: nothing sticky.
        t.start_round(0);
        t.on_logged_access(ObjectId(1), ClassId(3), 100);
        t.close_interval();

        assert_eq!(t.intervals(), 3);
        assert_eq!(t.totals()[&ClassId(3)], 200);
        let avg = t.average_footprint();
        assert!((avg[&ClassId(3)] - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn interval_state_resets() {
        let mut t = timer_tracker(10);
        t.start_round(0);
        t.on_logged_access(ObjectId(1), ClassId(0), 8);
        t.close_interval();
        assert!(t.hit_objects().is_empty());
        t.start_round(0);
        t.on_logged_access(ObjectId(1), ClassId(0), 8);
        let snap = t.close_interval();
        assert_eq!(snap.sticky_objects, 0, "round counts do not leak across intervals");
    }
}
