//! Distributed TCM deduction (Section V).
//!
//! The paper flags the central coordinator's `O(M·N²)` map construction as a
//! scalability bottleneck and asks for *"distributed algorithms for deducing
//! correlation maps in a more scalable way"*. The key observation: the TCM is a **sum
//! of per-object contributions** — object `o` shared by thread set `S` adds
//! `bytes(o)` to every pair in `S×S`, independently of every other object. Sharding
//! objects across `K` reducers therefore partitions the work *exactly*:
//!
//! 1. each thread splits its OAL by `shard(obj) = obj mod K` and sends each slice to
//!    the responsible reducer (same total wire bytes as the centralized scheme);
//! 2. each reducer runs the ordinary per-object reorganization + pair accrual over
//!    its `M/K` objects;
//! 3. partial maps merge by matrix addition at round close.
//!
//! [`ShardedTcmReducer`] implements the scheme. [`ShardedTcmReducer::close_round`]
//! runs the shard closes on crossbeam scoped threads (one per shard, skipped for
//! single shards or small rounds) and merges the partial maps at the join barrier.
//! The result is **bit-identical** to the serial reference regardless of thread
//! scheduling: each shard accrues its cells in its own fixed ingestion order, and
//! partial maps merge in ascending shard index (join order = spawn order), so every
//! f64 addition sequence is fixed. The property tests in `tests/properties.rs` assert
//! this against the retained scalar reference, including shuffled shard-close order.

use serde::{Deserialize, Serialize};

use jessy_gos::ObjectId;

use crate::oal::{Oal, OalEntry, OalRef};
use crate::tcm::{RoundSummary, Tcm, TcmBuilder};

/// The reducer shard responsible for an object.
#[inline]
pub fn shard_of(obj: ObjectId, n_shards: usize) -> usize {
    obj.index() % n_shards
}

/// Reusable per-shard entry buffers for OAL splitting. Keeping one of these alive
/// across OALs (and rounds) makes the split step allocation-free in steady state.
#[derive(Debug, Default)]
pub struct SplitScratch {
    per_shard: Vec<Vec<OalEntry>>,
}

impl SplitScratch {
    /// Empty scratch; buffers grow on first use and are retained afterwards.
    pub fn new() -> Self {
        SplitScratch::default()
    }
}

/// Split one OAL into per-shard slices inside `scratch` (buffers reused across
/// calls), yielding borrowed views with empty slices elided.
pub fn split_oal_into<'a>(
    oal: &Oal,
    n_shards: usize,
    scratch: &'a mut SplitScratch,
) -> impl Iterator<Item = (usize, OalRef<'a>)> + 'a {
    if scratch.per_shard.len() < n_shards {
        scratch.per_shard.resize_with(n_shards, Vec::new);
    }
    for buf in &mut scratch.per_shard[..n_shards] {
        buf.clear();
    }
    for e in &oal.entries {
        scratch.per_shard[shard_of(e.obj, n_shards)].push(*e);
    }
    let (thread, interval) = (oal.thread, oal.interval);
    scratch.per_shard[..n_shards]
        .iter()
        .enumerate()
        .filter(|(_, entries)| !entries.is_empty())
        .map(move |(shard, entries)| {
            (
                shard,
                OalRef {
                    thread,
                    interval,
                    entries,
                },
            )
        })
}

/// Split one OAL into owned per-shard slices (empty slices elided). Allocates per
/// call; hot paths should hold a [`SplitScratch`] and use [`split_oal_into`].
pub fn split_oal(oal: &Oal, n_shards: usize) -> Vec<(usize, Oal)> {
    let mut scratch = SplitScratch::new();
    split_oal_into(oal, n_shards, &mut scratch)
        .map(|(shard, view)| (shard, view.to_owned()))
        .collect()
}

/// Statistics of one reduction round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReduceStats {
    /// Objects organized, summed over shards.
    pub objects: usize,
    /// The largest single shard's object count (the critical path).
    pub max_shard_objects: usize,
}

/// Merge per-shard round summaries **in slice order** into one global summary.
/// Callers that need bit-identical results must pass summaries ordered by shard
/// index; the property tests feed deliberately shuffled close orders through this by
/// re-sorting first.
pub fn merge_round_summaries(n_threads: usize, summaries: &[RoundSummary]) -> RoundSummary {
    let mut merged = RoundSummary {
        objects: 0,
        tcm: Tcm::new(n_threads),
        per_class: std::collections::HashMap::new(),
    };
    for s in summaries {
        merged.objects += s.objects;
        merged.tcm.merge(&s.tcm);
        for (class, sparse) in &s.per_class {
            merged
                .per_class
                .entry(*class)
                .and_modify(|m| m.merge(sparse))
                .or_insert_with(|| sparse.clone());
        }
    }
    merged
}

/// Rounds smaller than this close serially even on multi-shard reducers: spawning
/// OS threads costs more than accruing a few thousand objects.
const PARALLEL_MIN_OBJECTS: usize = 4096;

/// An object-sharded TCM reducer: `K` independent builders plus a merge.
#[derive(Debug)]
pub struct ShardedTcmReducer {
    shards: Vec<TcmBuilder>,
    n_threads: usize,
    scratch: SplitScratch,
    parallel_threshold: usize,
}

impl ShardedTcmReducer {
    /// Reducer with `n_shards` shards over `n_threads` threads.
    pub fn new(n_shards: usize, n_threads: usize) -> Self {
        assert!(n_shards > 0);
        ShardedTcmReducer {
            shards: (0..n_shards).map(|_| TcmBuilder::new(n_threads)).collect(),
            n_threads,
            scratch: SplitScratch::new(),
            parallel_threshold: PARALLEL_MIN_OBJECTS,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Override the round size below which closes stay serial (tests use `0` to
    /// force the scoped-thread path on tiny rounds).
    pub fn set_parallel_threshold(&mut self, min_objects: usize) {
        self.parallel_threshold = min_objects;
    }

    /// Decay factor applied by every shard at round close (the merged map decays
    /// identically because scaling distributes over the shard sum).
    pub fn set_decay(&mut self, decay: f64) {
        for shard in &mut self.shards {
            shard.set_decay(decay);
        }
    }

    /// Ingest one OAL, routing each entry to its shard through the reused split
    /// scratch (no per-OAL allocation in steady state).
    pub fn ingest(&mut self, oal: &Oal) {
        let n_shards = self.shards.len();
        if n_shards == 1 {
            self.shards[0].ingest(oal);
            return;
        }
        let shards = &mut self.shards;
        for (shard, slice) in split_oal_into(oal, n_shards, &mut self.scratch) {
            shards[shard].ingest_view(slice);
        }
    }

    /// Close the round on every shard — in parallel on crossbeam scoped threads when
    /// the round is large enough — and merge the partial maps in shard-index order.
    ///
    /// Returns the reduce statistics plus the merged round summary (what a central
    /// builder's `close_round` would have returned; bit-identical to it).
    pub fn close_round(&mut self) -> (ReduceStats, RoundSummary) {
        let pending: usize = self.shards.iter().map(|s| s.pending_objects()).sum();
        let summaries: Vec<RoundSummary> =
            if self.shards.len() > 1 && pending >= self.parallel_threshold {
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .shards
                        .iter_mut()
                        .map(|shard| scope.spawn(move |_| shard.close_round()))
                        .collect();
                    // Joining in spawn order = shard-index order; arbitrary shard
                    // completion order cannot perturb the merge below.
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard close panicked"))
                        .collect()
                })
                .expect("scoped shard close failed")
            } else {
                self.shards.iter_mut().map(|s| s.close_round()).collect()
            };
        let stats = ReduceStats {
            objects: summaries.iter().map(|s| s.objects).sum(),
            max_shard_objects: summaries.iter().map(|s| s.objects).max().unwrap_or(0),
        };
        let merged = merge_round_summaries(self.n_threads, &summaries);
        (stats, merged)
    }

    /// Merge the shard maps into the global TCM (matrix addition).
    pub fn reduce(&self) -> Tcm {
        let mut out = Tcm::new(self.n_threads);
        for shard in &self.shards {
            out.merge(shard.tcm());
        }
        out
    }

    /// Rounds closed so far (every shard closes each round, so shard 0 speaks for
    /// all).
    pub fn rounds_closed(&self) -> u64 {
        self.shards[0].rounds_closed()
    }

    /// Objects pending in the current (unclosed) round, summed over shards.
    pub fn pending_objects(&self) -> usize {
        self.shards.iter().map(|s| s.pending_objects()).sum()
    }

    /// Direct access to a shard's builder (parallel drivers move these to threads).
    pub fn into_shards(self) -> Vec<TcmBuilder> {
        self.shards
    }

    /// Rebuild a reducer from independently-processed shard builders.
    pub fn from_shards(shards: Vec<TcmBuilder>, n_threads: usize) -> Self {
        assert!(!shards.is_empty());
        ShardedTcmReducer {
            shards,
            n_threads,
            scratch: SplitScratch::new(),
            parallel_threshold: PARALLEL_MIN_OBJECTS,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jessy_gos::ClassId;
    use jessy_net::ThreadId;

    fn oal(thread: u32, objs: &[(u32, u64)]) -> Oal {
        Oal {
            thread: ThreadId(thread),
            interval: 0,
            entries: objs
                .iter()
                .map(|&(o, b)| OalEntry {
                    obj: ObjectId(o),
                    class: ClassId(0),
                    bytes: b,
                })
                .collect(),
        }
    }

    fn workload() -> Vec<Oal> {
        // 6 threads sharing a spread of objects.
        (0..6u32)
            .flat_map(|t| {
                vec![
                    oal(t, &[(t, 64), (t + 1, 64), ((t * 7) % 20, 128)]),
                    oal(t, &[(19 - t, 32), (t % 3, 8)]),
                ]
            })
            .collect()
    }

    #[test]
    fn sharded_equals_centralized_exactly() {
        let oals = workload();
        let mut central = TcmBuilder::new(6);
        for o in &oals {
            central.ingest(o);
        }
        let central_summary = central.close_round();

        for n_shards in [1usize, 2, 3, 7, 16] {
            let mut sharded = ShardedTcmReducer::new(n_shards, 6);
            for o in &oals {
                sharded.ingest(o);
            }
            let (_, summary) = sharded.close_round();
            assert_eq!(
                sharded.reduce().raw(),
                central.tcm().raw(),
                "cumulative mismatch at {n_shards} shards"
            );
            assert_eq!(
                summary.tcm.raw(),
                central_summary.tcm.raw(),
                "round-map mismatch at {n_shards} shards"
            );
            assert_eq!(summary.per_class, central_summary.per_class);
        }
    }

    #[test]
    fn forced_parallel_close_is_bit_identical() {
        let oals = workload();
        let mut serial = ShardedTcmReducer::new(4, 6);
        let mut parallel = ShardedTcmReducer::new(4, 6);
        parallel.set_parallel_threshold(0); // spawn scoped threads even for tiny rounds
        for o in &oals {
            serial.ingest(o);
            parallel.ingest(o);
        }
        let (s_stats, s_summary) = serial.close_round();
        let (p_stats, p_summary) = parallel.close_round();
        assert_eq!(s_stats, p_stats);
        assert_eq!(s_summary.tcm.raw(), p_summary.tcm.raw());
        assert_eq!(s_summary.per_class, p_summary.per_class);
        assert_eq!(serial.reduce().raw(), parallel.reduce().raw());
    }

    #[test]
    fn split_oal_partitions_entries_exactly() {
        let o = oal(2, &[(0, 1), (1, 2), (2, 3), (3, 4), (7, 5)]);
        let slices = split_oal(&o, 3);
        let total: usize = slices.iter().map(|(_, s)| s.entries.len()).sum();
        assert_eq!(total, 5);
        for (shard, slice) in &slices {
            for e in &slice.entries {
                assert_eq!(shard_of(e.obj, 3), *shard);
                assert_eq!(slice.thread, ThreadId(2));
            }
        }
        // Wire bytes are conserved up to the per-slice context headers.
        let orig = o.wire_bytes();
        let split: usize = slices.iter().map(|(_, s)| s.wire_bytes()).sum();
        assert!(split >= orig && split <= orig + slices.len() * 16);
    }

    #[test]
    fn split_scratch_reuses_buffers_across_oals() {
        let mut scratch = SplitScratch::new();
        let big = oal(0, &(0..64u32).map(|o| (o, 8)).collect::<Vec<_>>());
        let n: usize = split_oal_into(&big, 4, &mut scratch).count();
        assert_eq!(n, 4);
        let caps: Vec<usize> = scratch.per_shard.iter().map(|v| v.capacity()).collect();
        assert!(caps.iter().all(|&c| c >= 16));
        // A smaller OAL reuses the grown buffers: capacities must not shrink or move.
        let small = oal(1, &[(0, 1), (1, 1)]);
        let views: Vec<(usize, usize)> = split_oal_into(&small, 4, &mut scratch)
            .map(|(s, v)| (s, v.entries.len()))
            .collect();
        assert_eq!(views, vec![(0, 1), (1, 1)]);
        let caps_after: Vec<usize> = scratch.per_shard.iter().map(|v| v.capacity()).collect();
        assert_eq!(caps, caps_after, "split buffers retained across OALs");
    }

    #[test]
    fn rounds_close_per_shard_and_stats_add_up() {
        let mut r = ShardedTcmReducer::new(4, 6);
        for o in workload() {
            r.ingest(&o);
        }
        let (stats, _) = r.close_round();
        assert!(stats.objects > 0);
        assert!(stats.max_shard_objects <= stats.objects);
        assert!(
            stats.max_shard_objects * 4 >= stats.objects,
            "shards roughly balanced: {stats:?}"
        );
        assert_eq!(r.rounds_closed(), 1);
    }

    #[test]
    fn parallel_reduction_on_real_threads_matches() {
        let oals = workload();
        let mut central = TcmBuilder::new(6);
        for o in &oals {
            central.ingest(o);
        }
        central.close_round();

        // Pre-split the stream, process each shard on its own OS thread.
        let n_shards = 4;
        let mut per_shard: Vec<Vec<Oal>> = vec![Vec::new(); n_shards];
        for o in &oals {
            for (shard, slice) in split_oal(o, n_shards) {
                per_shard[shard].push(slice);
            }
        }
        let handles: Vec<_> = per_shard
            .into_iter()
            .map(|slices| {
                std::thread::spawn(move || {
                    let mut b = TcmBuilder::new(6);
                    for s in &slices {
                        b.ingest(s);
                    }
                    b.close_round();
                    b
                })
            })
            .collect();
        let shards: Vec<TcmBuilder> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let reducer = ShardedTcmReducer::from_shards(shards, 6);
        assert_eq!(reducer.reduce().raw(), central.tcm().raw());
    }
}
