//! Distributed TCM deduction (Section V).
//!
//! The paper flags the central coordinator's `O(M·N²)` map construction as a
//! scalability bottleneck and asks for *"distributed algorithms for deducing
//! correlation maps in a more scalable way"*. The key observation: the TCM is a **sum
//! of per-object contributions** — object `o` shared by thread set `S` adds
//! `bytes(o)` to every pair in `S×S`, independently of every other object. Sharding
//! objects across `K` reducers therefore partitions the work *exactly*:
//!
//! 1. each thread splits its OAL by `shard(obj) = obj mod K` and sends each slice to
//!    the responsible reducer (same total wire bytes as the centralized scheme);
//! 2. each reducer runs the ordinary per-object reorganization + pair accrual over
//!    its `M/K` objects;
//! 3. partial maps merge by matrix addition at round close.
//!
//! [`ShardedTcmReducer`] implements the scheme; its result is bit-identical to the
//! centralized [`crate::TcmBuilder`] (asserted by tests), and the `distributed_tcm`
//! bench measures the speedup with reducers on real OS threads.

use serde::{Deserialize, Serialize};

use jessy_gos::ObjectId;

use crate::oal::{Oal, OalEntry};
use crate::tcm::{Tcm, TcmBuilder};

/// The reducer shard responsible for an object.
#[inline]
pub fn shard_of(obj: ObjectId, n_shards: usize) -> usize {
    obj.index() % n_shards
}

/// Split one OAL into per-shard slices (empty slices elided).
pub fn split_oal(oal: &Oal, n_shards: usize) -> Vec<(usize, Oal)> {
    let mut per_shard: Vec<Vec<OalEntry>> = vec![Vec::new(); n_shards];
    for e in &oal.entries {
        per_shard[shard_of(e.obj, n_shards)].push(*e);
    }
    per_shard
        .into_iter()
        .enumerate()
        .filter(|(_, entries)| !entries.is_empty())
        .map(|(shard, entries)| {
            (
                shard,
                Oal {
                    thread: oal.thread,
                    interval: oal.interval,
                    entries,
                },
            )
        })
        .collect()
}

/// Statistics of one reduction round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReduceStats {
    /// Objects organized, summed over shards.
    pub objects: usize,
    /// The largest single shard's object count (the critical path).
    pub max_shard_objects: usize,
}

/// An object-sharded TCM reducer: `K` independent builders plus a merge.
#[derive(Debug)]
pub struct ShardedTcmReducer {
    shards: Vec<TcmBuilder>,
    n_threads: usize,
}

impl ShardedTcmReducer {
    /// Reducer with `n_shards` shards over `n_threads` threads.
    pub fn new(n_shards: usize, n_threads: usize) -> Self {
        assert!(n_shards > 0);
        ShardedTcmReducer {
            shards: (0..n_shards).map(|_| TcmBuilder::new(n_threads)).collect(),
            n_threads,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Ingest one OAL, routing each entry to its shard.
    pub fn ingest(&mut self, oal: &Oal) {
        for (shard, slice) in split_oal(oal, self.shards.len()) {
            self.shards[shard].ingest(&slice);
        }
    }

    /// Close the round on every shard (what the parallel reducers do independently).
    pub fn close_round(&mut self) -> ReduceStats {
        let mut stats = ReduceStats::default();
        for shard in &mut self.shards {
            let summary = shard.close_round();
            stats.objects += summary.objects;
            stats.max_shard_objects = stats.max_shard_objects.max(summary.objects);
        }
        stats
    }

    /// Merge the shard maps into the global TCM (matrix addition).
    pub fn reduce(&self) -> Tcm {
        let mut out = Tcm::new(self.n_threads);
        for shard in &self.shards {
            out.merge(shard.tcm());
        }
        out
    }

    /// Direct access to a shard's builder (parallel drivers move these to threads).
    pub fn into_shards(self) -> Vec<TcmBuilder> {
        self.shards
    }

    /// Rebuild a reducer from independently-processed shard builders.
    pub fn from_shards(shards: Vec<TcmBuilder>, n_threads: usize) -> Self {
        assert!(!shards.is_empty());
        ShardedTcmReducer { shards, n_threads }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jessy_gos::ClassId;
    use jessy_net::ThreadId;

    fn oal(thread: u32, objs: &[(u32, u64)]) -> Oal {
        Oal {
            thread: ThreadId(thread),
            interval: 0,
            entries: objs
                .iter()
                .map(|&(o, b)| OalEntry {
                    obj: ObjectId(o),
                    class: ClassId(0),
                    bytes: b,
                })
                .collect(),
        }
    }

    fn workload() -> Vec<Oal> {
        // 6 threads sharing a spread of objects.
        (0..6u32)
            .flat_map(|t| {
                vec![
                    oal(t, &[(t, 64), (t + 1, 64), ((t * 7) % 20, 128)]),
                    oal(t, &[(19 - t, 32), (t % 3, 8)]),
                ]
            })
            .collect()
    }

    #[test]
    fn sharded_equals_centralized_exactly() {
        let oals = workload();
        let mut central = TcmBuilder::new(6);
        for o in &oals {
            central.ingest(o);
        }
        central.close_round();

        for n_shards in [1usize, 2, 3, 7, 16] {
            let mut sharded = ShardedTcmReducer::new(n_shards, 6);
            for o in &oals {
                sharded.ingest(o);
            }
            sharded.close_round();
            assert_eq!(
                sharded.reduce().raw(),
                central.tcm().raw(),
                "mismatch at {n_shards} shards"
            );
        }
    }

    #[test]
    fn split_oal_partitions_entries_exactly() {
        let o = oal(2, &[(0, 1), (1, 2), (2, 3), (3, 4), (7, 5)]);
        let slices = split_oal(&o, 3);
        let total: usize = slices.iter().map(|(_, s)| s.entries.len()).sum();
        assert_eq!(total, 5);
        for (shard, slice) in &slices {
            for e in &slice.entries {
                assert_eq!(shard_of(e.obj, 3), *shard);
                assert_eq!(slice.thread, ThreadId(2));
            }
        }
        // Wire bytes are conserved up to the per-slice context headers.
        let orig = o.wire_bytes();
        let split: usize = slices.iter().map(|(_, s)| s.wire_bytes()).sum();
        assert!(split >= orig && split <= orig + slices.len() * 16);
    }

    #[test]
    fn rounds_close_per_shard_and_stats_add_up() {
        let mut r = ShardedTcmReducer::new(4, 6);
        for o in workload() {
            r.ingest(&o);
        }
        let stats = r.close_round();
        assert!(stats.objects > 0);
        assert!(stats.max_shard_objects <= stats.objects);
        assert!(
            stats.max_shard_objects * 4 >= stats.objects,
            "shards roughly balanced: {stats:?}"
        );
    }

    #[test]
    fn parallel_reduction_on_real_threads_matches() {
        let oals = workload();
        let mut central = TcmBuilder::new(6);
        for o in &oals {
            central.ingest(o);
        }
        central.close_round();

        // Pre-split the stream, process each shard on its own OS thread.
        let n_shards = 4;
        let mut per_shard: Vec<Vec<Oal>> = vec![Vec::new(); n_shards];
        for o in &oals {
            for (shard, slice) in split_oal(o, n_shards) {
                per_shard[shard].push(slice);
            }
        }
        let handles: Vec<_> = per_shard
            .into_iter()
            .map(|slices| {
                std::thread::spawn(move || {
                    let mut b = TcmBuilder::new(6);
                    for s in &slices {
                        b.ingest(s);
                    }
                    b.close_round();
                    b
                })
            })
            .collect();
        let shards: Vec<TcmBuilder> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let reducer = ShardedTcmReducer::from_shards(shards, 6);
        assert_eq!(reducer.reduce().raw(), central.tcm().raw());
    }
}
