//! Distributed TCM deduction (Section V).
//!
//! The paper flags the central coordinator's `O(M·N²)` map construction as a
//! scalability bottleneck and asks for *"distributed algorithms for deducing
//! correlation maps in a more scalable way"*. The key observation: the TCM is a **sum
//! of per-object contributions** — object `o` shared by thread set `S` adds
//! `bytes(o)` to every pair in `S×S`, independently of every other object. Sharding
//! objects across `K` reducers therefore partitions the work *exactly*:
//!
//! 1. each thread splits its OAL by `shard(obj) = obj mod K` and sends each slice to
//!    the responsible reducer (same total wire bytes as the centralized scheme);
//! 2. each reducer runs the ordinary per-object reorganization + pair accrual over
//!    its `M/K` objects;
//! 3. partial maps merge by matrix addition at round close.
//!
//! [`ShardedTcmReducer`] implements the scheme. [`ShardedTcmReducer::close_round`]
//! runs the shard closes on crossbeam scoped threads (one per shard, skipped for
//! single shards or small rounds) and merges the partial maps at the join barrier.
//! The result is **bit-identical** to the serial reference regardless of thread
//! scheduling: each shard accrues its cells in its own fixed ingestion order, and
//! partial maps merge in ascending shard index (join order = spawn order), so every
//! f64 addition sequence is fixed. The property tests in `tests/properties.rs` assert
//! this against the retained scalar reference, including shuffled shard-close order.

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use jessy_gos::{ClassId, ObjectId};
use jessy_net::ThreadId;

use crate::oal::{Oal, OalEntry, OalRef};
use crate::tcm::{MergeScratch, RoundSummary, SparseTcm, Tcm, TcmBuilder};

/// The reducer shard responsible for an object.
#[inline]
pub fn shard_of(obj: ObjectId, n_shards: usize) -> usize {
    obj.index() % n_shards
}

/// Reusable per-shard entry buffers for OAL splitting. Keeping one of these alive
/// across OALs (and rounds) makes the split step allocation-free in steady state.
#[derive(Debug, Default)]
pub struct SplitScratch {
    per_shard: Vec<Vec<OalEntry>>,
}

impl SplitScratch {
    /// Empty scratch; buffers grow on first use and are retained afterwards.
    pub fn new() -> Self {
        SplitScratch::default()
    }
}

/// Split one OAL into per-shard slices inside `scratch` (buffers reused across
/// calls), yielding borrowed views with empty slices elided.
pub fn split_oal_into<'a>(
    oal: &Oal,
    n_shards: usize,
    scratch: &'a mut SplitScratch,
) -> impl Iterator<Item = (usize, OalRef<'a>)> + 'a {
    if scratch.per_shard.len() < n_shards {
        scratch.per_shard.resize_with(n_shards, Vec::new);
    }
    for buf in &mut scratch.per_shard[..n_shards] {
        buf.clear();
    }
    for e in &oal.entries {
        scratch.per_shard[shard_of(e.obj, n_shards)].push(*e);
    }
    let (thread, interval) = (oal.thread, oal.interval);
    scratch.per_shard[..n_shards]
        .iter()
        .enumerate()
        .filter(|(_, entries)| !entries.is_empty())
        .map(move |(shard, entries)| {
            (
                shard,
                OalRef {
                    thread,
                    interval,
                    entries,
                },
            )
        })
}

/// Split one OAL into owned per-shard slices (empty slices elided). Allocates per
/// call; hot paths should hold a [`SplitScratch`] and use [`split_oal_into`].
pub fn split_oal(oal: &Oal, n_shards: usize) -> Vec<(usize, Oal)> {
    let mut scratch = SplitScratch::new();
    split_oal_into(oal, n_shards, &mut scratch)
        .map(|(shard, view)| (shard, view.to_owned()))
        .collect()
}

/// Statistics of one reduction round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReduceStats {
    /// Objects organized, summed over shards.
    pub objects: usize,
    /// The largest single shard's object count (the critical path).
    pub max_shard_objects: usize,
}

/// Merge per-shard round summaries **in slice order** into one global summary.
/// Callers that need bit-identical results must pass summaries ordered by shard
/// index; the property tests feed deliberately shuffled close orders through this by
/// re-sorting first.
pub fn merge_round_summaries(n_threads: usize, summaries: &[RoundSummary]) -> RoundSummary {
    let mut merged = RoundSummary {
        objects: 0,
        tcm: Tcm::new(n_threads),
        per_class: std::collections::HashMap::new(),
    };
    for s in summaries {
        merged.objects += s.objects;
        merged.tcm.merge(&s.tcm);
        for (class, sparse) in &s.per_class {
            merged
                .per_class
                .entry(*class)
                .and_modify(|m| m.merge(sparse))
                .or_insert_with(|| sparse.clone());
        }
    }
    merged
}

/// Rounds smaller than this close serially even on multi-shard reducers: spawning
/// OS threads costs more than accruing a few thousand objects.
const PARALLEL_MIN_OBJECTS: usize = 4096;

/// An object-sharded TCM reducer: `K` independent builders plus a merge.
#[derive(Debug)]
pub struct ShardedTcmReducer {
    shards: Vec<TcmBuilder>,
    n_threads: usize,
    scratch: SplitScratch,
    parallel_threshold: usize,
}

impl ShardedTcmReducer {
    /// Reducer with `n_shards` shards over `n_threads` threads.
    pub fn new(n_shards: usize, n_threads: usize) -> Self {
        assert!(n_shards > 0);
        ShardedTcmReducer {
            shards: (0..n_shards).map(|_| TcmBuilder::new(n_threads)).collect(),
            n_threads,
            scratch: SplitScratch::new(),
            parallel_threshold: PARALLEL_MIN_OBJECTS,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Override the round size below which closes stay serial (tests use `0` to
    /// force the scoped-thread path on tiny rounds).
    pub fn set_parallel_threshold(&mut self, min_objects: usize) {
        self.parallel_threshold = min_objects;
    }

    /// Decay factor applied by every shard at round close (the merged map decays
    /// identically because scaling distributes over the shard sum).
    pub fn set_decay(&mut self, decay: f64) {
        for shard in &mut self.shards {
            shard.set_decay(decay);
        }
    }

    /// Ingest one OAL, routing each entry to its shard through the reused split
    /// scratch (no per-OAL allocation in steady state).
    pub fn ingest(&mut self, oal: &Oal) {
        let n_shards = self.shards.len();
        if n_shards == 1 {
            self.shards[0].ingest(oal);
            return;
        }
        let shards = &mut self.shards;
        for (shard, slice) in split_oal_into(oal, n_shards, &mut self.scratch) {
            shards[shard].ingest_view(slice);
        }
    }

    /// Close the round on every shard — in parallel on crossbeam scoped threads when
    /// the round is large enough — and merge the partial maps in shard-index order.
    ///
    /// Returns the reduce statistics plus the merged round summary (what a central
    /// builder's `close_round` would have returned; bit-identical to it).
    pub fn close_round(&mut self) -> (ReduceStats, RoundSummary) {
        let pending: usize = self.shards.iter().map(|s| s.pending_objects()).sum();
        let summaries: Vec<RoundSummary> =
            if self.shards.len() > 1 && pending >= self.parallel_threshold {
                crossbeam::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .shards
                        .iter_mut()
                        .map(|shard| scope.spawn(move |_| shard.close_round()))
                        .collect();
                    // Joining in spawn order = shard-index order; arbitrary shard
                    // completion order cannot perturb the merge below.
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard close panicked"))
                        .collect()
                })
                .expect("scoped shard close failed")
            } else {
                self.shards.iter_mut().map(|s| s.close_round()).collect()
            };
        let stats = ReduceStats {
            objects: summaries.iter().map(|s| s.objects).sum(),
            max_shard_objects: summaries.iter().map(|s| s.objects).max().unwrap_or(0),
        };
        let merged = merge_round_summaries(self.n_threads, &summaries);
        (stats, merged)
    }

    /// Merge the shard maps into the global TCM (matrix addition).
    pub fn reduce(&self) -> Tcm {
        let mut out = Tcm::new(self.n_threads);
        for shard in &self.shards {
            out.merge(shard.tcm());
        }
        out
    }

    /// Rounds closed so far (every shard closes each round, so shard 0 speaks for
    /// all).
    pub fn rounds_closed(&self) -> u64 {
        self.shards[0].rounds_closed()
    }

    /// Objects pending in the current (unclosed) round, summed over shards.
    pub fn pending_objects(&self) -> usize {
        self.shards.iter().map(|s| s.pending_objects()).sum()
    }

    /// Direct access to a shard's builder (parallel drivers move these to threads).
    pub fn into_shards(self) -> Vec<TcmBuilder> {
        self.shards
    }

    /// Rebuild a reducer from independently-processed shard builders.
    pub fn from_shards(shards: Vec<TcmBuilder>, n_threads: usize) -> Self {
        assert!(!shards.is_empty());
        ShardedTcmReducer {
            shards,
            n_threads,
            scratch: SplitScratch::new(),
            parallel_threshold: PARALLEL_MIN_OBJECTS,
        }
    }
}

// ---------------------------------------------------------------------------
// Fabric-tree aggregation: per-node pre-reduction, object-owner shuffle, k-ary
// partial merge.
//
// A node-local reducer cannot finish any pair by itself: an object's sharer set
// spans nodes, and its byte weight is the *global* max over every thread's
// logged size. The tree pipeline therefore splits the flat coordinator's two
// steps differently than `ShardedTcmReducer` does:
//
//   1. **leaf pre-reduction** — each node deduplicates its own threads' OALs
//      into per-object records (object, class, local byte max, local sharer
//      bitset). This is the `O(M·N)` reorganization hash work, now spread over
//      the nodes; a record is ≤ `16 + ⌈N/64⌉·8` bytes however many accesses it
//      deduplicates.
//   2. **object-owner shuffle** — records route to `shard_of(obj, n_nodes)`;
//      the owner unions the disjoint sharer bitsets, maxes the byte weights,
//      and runs the pair walk for its objects into *sparse* global + per-class
//      cell lists. Every object accrues exactly once, at its owner, with its
//      global weight — which is what makes the result bit-identical to a flat
//      `TcmBuilder`, with no cross-node correction terms.
//   3. **k-ary tree merge** — owner partials ([`TcmPartial`]) merge upward
//      (children ascending, parents processed deepest-first), so the master
//      folds at most `fanout` sorted sparse merges per round instead of
//      re-hashing every thread's OAL.
//
// Exactness everywhere rests on the same invariant the sharded reducer uses:
// OAL byte weights are integer-valued f64 and per-cell sums stay far below
// 2⁵³, so f64 addition is associative over every order this pipeline (or the
// flat one) can produce.
// ---------------------------------------------------------------------------

/// Parent of `node` in the k-ary aggregation tree, or `None` when the node
/// ships its partial straight to the master. Children of parent `p` are the
/// contiguous run `(p+1)·fanout .. (p+2)·fanout`.
#[inline]
pub fn tree_parent(node: usize, fanout: usize) -> Option<usize> {
    debug_assert!(fanout >= 2);
    if node < fanout {
        None
    } else {
        Some((node - fanout) / fanout)
    }
}

/// One node's (or merged subtree's) per-round reduction output: the sparse pair
/// map, its per-class split, and the object count it covers. This is what a
/// `TcmPartial` fabric message carries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcmPartial {
    /// Distinct objects whose pairs this partial covers.
    pub objects: usize,
    /// The partial correlation map (global, all classes).
    pub pairs: SparseTcm,
    /// Per-class split of `pairs`.
    pub per_class: HashMap<ClassId, SparseTcm>,
}

impl TcmPartial {
    /// An empty partial for `n_threads` threads.
    pub fn empty(n_threads: usize) -> Self {
        TcmPartial {
            objects: 0,
            pairs: SparseTcm::new(n_threads),
            per_class: HashMap::new(),
        }
    }

    /// Total sparse cells carried (global + per-class).
    pub fn cells(&self) -> usize {
        self.pairs.len() + self.per_class.values().map(SparseTcm::len).sum::<usize>()
    }

    /// Modeled wire size: a 16-byte context plus 12 bytes per sparse cell
    /// (packed `u32` cell index + `f64` value) and an 8-byte sub-map header per
    /// class.
    pub fn wire_bytes(&self) -> usize {
        16 + 12 * self.pairs.len()
            + self
                .per_class
                .values()
                .map(|m| 8 + 12 * m.len())
                .sum::<usize>()
    }

    /// Merge `other` into this partial (sorted sparse unions through the shared
    /// scratch; object counts add because every object has exactly one owner).
    pub fn merge(&mut self, other: &TcmPartial, scratch: &mut MergeScratch) {
        self.objects += other.objects;
        self.pairs.merge_with(&other.pairs, scratch);
        for (class, sparse) in &other.per_class {
            match self.per_class.entry(*class) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().merge_with(sparse, scratch)
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(sparse.clone());
                }
            }
        }
    }
}

/// One fabric hop of a tree round: `bytes` of partial-TCM (or shuffle-record)
/// traffic from `from` to `to`, carrying `cells` sparse cells (or records).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeEdge {
    /// Sending node.
    pub from: u16,
    /// Receiving node (the parent, or node 0 = the master).
    pub to: u16,
    /// Modeled wire bytes.
    pub bytes: u64,
    /// Sparse cells (tree edges) or object records (shuffle edges).
    pub cells: u64,
}

/// Statistics of one tree-aggregated round (the `master.reduce.*` counters).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TreeRoundStats {
    /// Distinct objects reduced this round (summed over owners).
    pub objects: usize,
    /// The largest single leaf's object count (the pre-reduction critical path).
    pub max_leaf_objects: usize,
    /// Object records that crossed nodes in the owner shuffle.
    pub shuffle_records: u64,
    /// Modeled wire bytes of the owner shuffle.
    pub shuffle_bytes: u64,
    /// Sparse cells shipped across aggregation-tree edges.
    pub partial_cells: u64,
    /// Modeled wire bytes of partial-TCM messages (tree edges, master included).
    pub partial_bytes: u64,
    /// Subtree partials the master folded (≤ fanout).
    pub master_partials: u64,
    /// Every fabric hop of the round, deterministic order: shuffle edges sorted
    /// by `(from, to)`, then tree edges deepest-parent-first, then the root
    /// hops into the master.
    pub edges: Vec<TreeEdge>,
}

/// Modeled wire size of one shuffled object record: object id + class + byte
/// weight (16 bytes) plus the node-local sharer bitset.
#[inline]
fn record_wire_bytes(words: usize) -> u64 {
    16 + 8 * words as u64
}

/// Sort pushed `(cell, value)` pairs and combine duplicates (exact for the
/// integer-valued weights OAL streams carry).
fn combine_sorted(mut pushed: Vec<(u32, f64)>) -> Vec<(u32, f64)> {
    pushed.sort_unstable_by_key(|&(idx, _)| idx);
    let mut out = Vec::with_capacity(pushed.len());
    for (idx, v) in pushed {
        match out.last_mut() {
            Some(&mut (last, ref mut lv)) if last == idx => *lv += v,
            _ => out.push((idx, v)),
        }
    }
    out
}

/// A round-local arena of per-object records (the leaf and owner state of the
/// tree pipeline). Mirrors `TcmBuilder`'s layout — slot map plus parallel
/// columns — with the object id kept for shuffle routing; every column retains
/// capacity across rounds.
#[derive(Debug)]
struct RecordArena {
    words: usize,
    slots: HashMap<ObjectId, u32>,
    obj_id: Vec<ObjectId>,
    obj_class: Vec<ClassId>,
    obj_bytes: Vec<f64>,
    obj_bits: Vec<u64>,
}

impl RecordArena {
    fn new(words: usize) -> Self {
        RecordArena {
            words,
            slots: HashMap::new(),
            obj_id: Vec::new(),
            obj_class: Vec::new(),
            obj_bytes: Vec::new(),
            obj_bits: Vec::new(),
        }
    }

    fn len(&self) -> usize {
        self.obj_id.len()
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.obj_id.clear();
        self.obj_class.clear();
        self.obj_bytes.clear();
        self.obj_bits.clear();
    }

    fn slot_for(&mut self, obj: ObjectId, class: ClassId) -> usize {
        let words = self.words;
        *self.slots.entry(obj).or_insert_with(|| {
            let s = self.obj_id.len() as u32;
            self.obj_id.push(obj);
            self.obj_class.push(class);
            self.obj_bytes.push(0.0);
            self.obj_bits.resize(self.obj_bits.len() + words, 0);
            s
        }) as usize
    }

    /// Leaf ingestion: dedup one thread's interval entries into the records.
    fn ingest_entries(&mut self, thread: ThreadId, entries: &[OalEntry]) {
        let t = thread.index();
        let (tw, tbit) = (t / 64, 1u64 << (t % 64));
        for e in entries {
            let slot = self.slot_for(e.obj, e.class);
            self.obj_bytes[slot] = self.obj_bytes[slot].max(e.bytes as f64);
            self.obj_bits[slot * self.words + tw] |= tbit;
        }
    }

    /// Owner-side merge of one shuffled record: union the (disjoint) sharer
    /// bitsets, keep the max byte weight. The class is a property of the object
    /// (every leaf reports the same one), so first-writer wins deterministically
    /// — leaves shuffle in ascending node order.
    fn merge_record(&mut self, obj: ObjectId, class: ClassId, bytes: f64, bits: &[u64]) {
        let slot = self.slot_for(obj, class);
        self.obj_bytes[slot] = self.obj_bytes[slot].max(bytes);
        let dst = &mut self.obj_bits[slot * self.words..(slot + 1) * self.words];
        for (d, s) in dst.iter_mut().zip(bits) {
            *d |= s;
        }
    }

    /// The owner's pair walk: every record with ≥ 2 sharers accrues its pairs
    /// into sparse global + per-class cell lists (sorted and combined at the
    /// end — exact, since weights are integer-valued f64).
    fn accrue(&self, n_threads: usize) -> TcmPartial {
        let words = self.words;
        let mut pairs: Vec<(u32, f64)> = Vec::new();
        let mut class_slots: HashMap<ClassId, usize> = HashMap::new();
        let mut class_cells: Vec<(ClassId, Vec<(u32, f64)>)> = Vec::new();
        let mut last_class: Option<(ClassId, usize)> = None;
        for slot in 0..self.len() {
            let bits = &self.obj_bits[slot * words..(slot + 1) * words];
            let pop: u32 = bits.iter().map(|w| w.count_ones()).sum();
            if pop < 2 {
                continue;
            }
            let bytes = self.obj_bytes[slot];
            let class = self.obj_class[slot];
            let ci = match last_class {
                Some((c, i)) if c == class => i,
                _ => {
                    let i = *class_slots.entry(class).or_insert_with(|| {
                        class_cells.push((class, Vec::new()));
                        class_cells.len() - 1
                    });
                    last_class = Some((class, i));
                    i
                }
            };
            let class_buf = &mut class_cells[ci].1;
            for wi in 0..words {
                let mut wa = bits[wi];
                while wa != 0 {
                    let a = wi * 64 + wa.trailing_zeros() as usize;
                    wa &= wa - 1;
                    let row_base =
                        (a * (2 * n_threads - a - 1) / 2).wrapping_sub(a + 1);
                    let mut wj = wi;
                    let mut wb = wa;
                    loop {
                        while wb != 0 {
                            let b = wj * 64 + wb.trailing_zeros() as usize;
                            wb &= wb - 1;
                            let idx = row_base.wrapping_add(b) as u32;
                            pairs.push((idx, bytes));
                            class_buf.push((idx, bytes));
                        }
                        wj += 1;
                        if wj == words {
                            break;
                        }
                        wb = bits[wj];
                    }
                }
            }
        }
        let per_class = class_cells
            .into_iter()
            .map(|(c, buf)| (c, SparseTcm::from_sorted_cells(n_threads, combine_sorted(buf))))
            .collect();
        TcmPartial {
            objects: self.len(),
            pairs: SparseTcm::from_sorted_cells(n_threads, combine_sorted(pairs)),
            per_class,
        }
    }
}

/// The distributed TCM reduction pipeline: per-node leaf arenas, an
/// object-owner shuffle, and a k-ary aggregation tree of sparse partials, with
/// the cumulative (dense-backend) maps folded at the root.
///
/// Bit-identical to a flat [`TcmBuilder`] fed the same OAL stream — including
/// under per-round decay — for any node placement, fanout and merge order (see
/// the module docs for why, and `tests/properties.rs` for the proof by
/// property test).
#[derive(Debug)]
pub struct TreeTcmReducer {
    n_threads: usize,
    n_nodes: usize,
    fanout: usize,
    words: usize,
    decay: f64,
    rounds_closed: u64,
    tcm: Tcm,
    per_class: HashMap<ClassId, Tcm>,
    leaves: Vec<RecordArena>,
    owners: Vec<RecordArena>,
    scratch: MergeScratch,
}

impl TreeTcmReducer {
    /// Reducer over `n_nodes` leaf nodes and an aggregation tree of `fanout`.
    ///
    /// # Panics
    /// If `fanout < 2` or `n_nodes == 0`.
    pub fn new(n_threads: usize, n_nodes: usize, fanout: usize) -> Self {
        assert!(fanout >= 2, "a unary aggregation chain reduces nothing");
        assert!(n_nodes > 0);
        let words = n_threads.div_ceil(64).max(1);
        TreeTcmReducer {
            n_threads,
            n_nodes,
            fanout,
            words,
            decay: 1.0,
            rounds_closed: 0,
            tcm: Tcm::new(n_threads),
            per_class: HashMap::new(),
            leaves: (0..n_nodes).map(|_| RecordArena::new(words)).collect(),
            owners: (0..n_nodes).map(|_| RecordArena::new(words)).collect(),
            scratch: MergeScratch::new(),
        }
    }

    /// Number of leaf nodes.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Aggregation-tree fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Decay factor applied to the cumulative maps at every fold.
    pub fn set_decay(&mut self, decay: f64) {
        assert!((0.0..=1.0).contains(&decay), "decay must be in [0, 1]");
        self.decay = decay;
    }

    /// Ingest one OAL at its node's leaf arena (the node-local pre-reduction).
    pub fn ingest(&mut self, node: usize, oal: &Oal) {
        self.leaves[node].ingest_entries(oal.thread, &oal.entries);
    }

    /// Ingest a borrowed OAL view at a node's leaf arena.
    pub fn ingest_view(&mut self, node: usize, oal: OalRef<'_>) {
        self.leaves[node].ingest_entries(oal.thread, oal.entries);
    }

    /// Objects pending across all leaf arenas (an object shared by `k` nodes
    /// counts `k` times until the shuffle dedups it).
    pub fn pending_objects(&self) -> usize {
        self.leaves.iter().map(RecordArena::len).sum()
    }

    /// Run the distributed phases of a round close — leaf pre-reduction, owner
    /// shuffle, pair accrual, and every tree merge *below* the master — and
    /// return the ≤ `fanout` subtree partials the master must fold, plus the
    /// round's fabric/work statistics. Pair with [`TreeTcmReducer::fold_subtrees`]
    /// (or [`TreeTcmReducer::merge_subtrees`] for sketch-backend callers).
    pub fn close_round_subtrees(&mut self) -> (TreeRoundStats, Vec<TcmPartial>) {
        let mut stats = TreeRoundStats::default();
        // Leaf → owner shuffle. Leaves drain in ascending node order and their
        // records in first-touch order, so owner insertion order — and with it
        // every downstream iteration — is deterministic.
        let mut shuffle: BTreeMap<(u16, u16), (u64, u64)> = BTreeMap::new();
        for leaf in 0..self.n_nodes {
            stats.max_leaf_objects = stats.max_leaf_objects.max(self.leaves[leaf].len());
            let (leaves, owners) = (&mut self.leaves, &mut self.owners);
            let arena = &leaves[leaf];
            for slot in 0..arena.len() {
                let obj = arena.obj_id[slot];
                let owner = shard_of(obj, self.n_nodes);
                let bits = &arena.obj_bits[slot * self.words..(slot + 1) * self.words];
                owners[owner].merge_record(
                    obj,
                    arena.obj_class[slot],
                    arena.obj_bytes[slot],
                    bits,
                );
                if owner != leaf {
                    stats.shuffle_records += 1;
                    stats.shuffle_bytes += record_wire_bytes(self.words);
                    let e = shuffle.entry((leaf as u16, owner as u16)).or_insert((0, 0));
                    e.0 += record_wire_bytes(self.words);
                    e.1 += 1;
                }
            }
            self.leaves[leaf].clear();
        }
        for ((from, to), (bytes, records)) in shuffle {
            stats.edges.push(TreeEdge {
                from,
                to,
                bytes,
                cells: records,
            });
        }
        // Owner pair walks → per-node partials.
        let mut partials: Vec<Option<TcmPartial>> = Vec::with_capacity(self.n_nodes);
        for owner in 0..self.n_nodes {
            let partial = self.owners[owner].accrue(self.n_threads);
            stats.objects += partial.objects;
            self.owners[owner].clear();
            partials.push(Some(partial));
        }
        // Tree merge below the master: parents deepest-first (a child's id
        // always exceeds its parent's), children ascending.
        for p in (0..self.n_nodes).rev() {
            let first_child = (p + 1) * self.fanout;
            if first_child >= self.n_nodes {
                continue;
            }
            for c in first_child..(first_child + self.fanout).min(self.n_nodes) {
                let child = partials[c].take().expect("child partial already taken");
                let bytes = child.wire_bytes() as u64;
                let cells = child.cells() as u64;
                stats.partial_cells += cells;
                stats.partial_bytes += bytes;
                stats.edges.push(TreeEdge {
                    from: c as u16,
                    to: p as u16,
                    bytes,
                    cells,
                });
                partials[p]
                    .as_mut()
                    .expect("parent partial missing")
                    .merge(&child, &mut self.scratch);
            }
        }
        let subtrees: Vec<TcmPartial> = partials
            .into_iter()
            .take(self.fanout.min(self.n_nodes))
            .map(|p| p.expect("subtree partial missing"))
            .collect();
        stats.master_partials = subtrees.len() as u64;
        for (i, s) in subtrees.iter().enumerate() {
            let bytes = s.wire_bytes() as u64;
            let cells = s.cells() as u64;
            // Node 0 hosts the master: its own hop is a local hand-off, but the
            // other subtree roots pay real fabric bytes into the coordinator.
            if i != 0 {
                stats.partial_cells += cells;
                stats.partial_bytes += bytes;
            }
            stats.edges.push(TreeEdge {
                from: i as u16,
                to: 0,
                bytes,
                cells,
            });
        }
        (stats, subtrees)
    }

    /// Master-side merge of the subtree partials into the round's root partial
    /// (ascending order; no cumulative state is touched).
    pub fn merge_subtrees(&mut self, subtrees: Vec<TcmPartial>) -> TcmPartial {
        let mut it = subtrees.into_iter();
        let mut root = it
            .next()
            .unwrap_or_else(|| TcmPartial::empty(self.n_threads));
        for s in it {
            root.merge(&s, &mut self.scratch);
        }
        root
    }

    /// Fold a round's root partial into the cumulative dense maps, in lockstep
    /// with [`TcmBuilder::fold_round`]: decay first, then sparse-merge.
    pub fn fold_partial(&mut self, root: &TcmPartial) {
        if self.decay < 1.0 {
            self.tcm.scale(self.decay);
            for map in self.per_class.values_mut() {
                map.scale(self.decay);
            }
        }
        self.tcm.merge_sparse(&root.pairs);
        for (class, sparse) in &root.per_class {
            self.per_class
                .entry(*class)
                .or_insert_with(|| Tcm::new(self.n_threads))
                .merge_sparse(sparse);
        }
        self.rounds_closed += 1;
    }

    /// Master-side completion of a round: merge the subtree partials, fold the
    /// root into the cumulative maps, and expand the round summary a flat
    /// builder would have produced (dense round map included — callers at
    /// production N that want to stay sparse use [`TreeTcmReducer::merge_subtrees`]
    /// + [`TreeTcmReducer::fold_partial`] directly).
    pub fn fold_subtrees(&mut self, subtrees: Vec<TcmPartial>) -> RoundSummary {
        let root = self.merge_subtrees(subtrees);
        self.fold_partial(&root);
        RoundSummary {
            objects: root.objects,
            tcm: root.pairs.to_dense(),
            per_class: root.per_class,
        }
    }

    /// Close a round end to end (every phase on the calling thread) and return
    /// the statistics plus the flat-equivalent round summary.
    pub fn close_round(&mut self) -> (TreeRoundStats, RoundSummary) {
        let (stats, subtrees) = self.close_round_subtrees();
        let summary = self.fold_subtrees(subtrees);
        (stats, summary)
    }

    /// The cumulative global map.
    pub fn tcm(&self) -> &Tcm {
        &self.tcm
    }

    /// The cumulative per-class maps.
    pub fn per_class(&self) -> &HashMap<ClassId, Tcm> {
        &self.per_class
    }

    /// Rounds folded so far.
    pub fn rounds_closed(&self) -> u64 {
        self.rounds_closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jessy_gos::ClassId;
    use jessy_net::ThreadId;

    fn oal(thread: u32, objs: &[(u32, u64)]) -> Oal {
        Oal {
            thread: ThreadId(thread),
            interval: 0,
            entries: objs
                .iter()
                .map(|&(o, b)| OalEntry {
                    obj: ObjectId(o),
                    class: ClassId(0),
                    bytes: b,
                })
                .collect(),
        }
    }

    fn workload() -> Vec<Oal> {
        // 6 threads sharing a spread of objects.
        (0..6u32)
            .flat_map(|t| {
                vec![
                    oal(t, &[(t, 64), (t + 1, 64), ((t * 7) % 20, 128)]),
                    oal(t, &[(19 - t, 32), (t % 3, 8)]),
                ]
            })
            .collect()
    }

    #[test]
    fn sharded_equals_centralized_exactly() {
        let oals = workload();
        let mut central = TcmBuilder::new(6);
        for o in &oals {
            central.ingest(o);
        }
        let central_summary = central.close_round();

        for n_shards in [1usize, 2, 3, 7, 16] {
            let mut sharded = ShardedTcmReducer::new(n_shards, 6);
            for o in &oals {
                sharded.ingest(o);
            }
            let (_, summary) = sharded.close_round();
            assert_eq!(
                sharded.reduce().raw(),
                central.tcm().raw(),
                "cumulative mismatch at {n_shards} shards"
            );
            assert_eq!(
                summary.tcm.raw(),
                central_summary.tcm.raw(),
                "round-map mismatch at {n_shards} shards"
            );
            assert_eq!(summary.per_class, central_summary.per_class);
        }
    }

    #[test]
    fn forced_parallel_close_is_bit_identical() {
        let oals = workload();
        let mut serial = ShardedTcmReducer::new(4, 6);
        let mut parallel = ShardedTcmReducer::new(4, 6);
        parallel.set_parallel_threshold(0); // spawn scoped threads even for tiny rounds
        for o in &oals {
            serial.ingest(o);
            parallel.ingest(o);
        }
        let (s_stats, s_summary) = serial.close_round();
        let (p_stats, p_summary) = parallel.close_round();
        assert_eq!(s_stats, p_stats);
        assert_eq!(s_summary.tcm.raw(), p_summary.tcm.raw());
        assert_eq!(s_summary.per_class, p_summary.per_class);
        assert_eq!(serial.reduce().raw(), parallel.reduce().raw());
    }

    #[test]
    fn split_oal_partitions_entries_exactly() {
        let o = oal(2, &[(0, 1), (1, 2), (2, 3), (3, 4), (7, 5)]);
        let slices = split_oal(&o, 3);
        let total: usize = slices.iter().map(|(_, s)| s.entries.len()).sum();
        assert_eq!(total, 5);
        for (shard, slice) in &slices {
            for e in &slice.entries {
                assert_eq!(shard_of(e.obj, 3), *shard);
                assert_eq!(slice.thread, ThreadId(2));
            }
        }
        // Wire bytes are conserved up to the per-slice context headers.
        let orig = o.wire_bytes();
        let split: usize = slices.iter().map(|(_, s)| s.wire_bytes()).sum();
        assert!(split >= orig && split <= orig + slices.len() * 16);
    }

    #[test]
    fn split_scratch_reuses_buffers_across_oals() {
        let mut scratch = SplitScratch::new();
        let big = oal(0, &(0..64u32).map(|o| (o, 8)).collect::<Vec<_>>());
        let n: usize = split_oal_into(&big, 4, &mut scratch).count();
        assert_eq!(n, 4);
        let caps: Vec<usize> = scratch.per_shard.iter().map(|v| v.capacity()).collect();
        assert!(caps.iter().all(|&c| c >= 16));
        // A smaller OAL reuses the grown buffers: capacities must not shrink or move.
        let small = oal(1, &[(0, 1), (1, 1)]);
        let views: Vec<(usize, usize)> = split_oal_into(&small, 4, &mut scratch)
            .map(|(s, v)| (s, v.entries.len()))
            .collect();
        assert_eq!(views, vec![(0, 1), (1, 1)]);
        let caps_after: Vec<usize> = scratch.per_shard.iter().map(|v| v.capacity()).collect();
        assert_eq!(caps, caps_after, "split buffers retained across OALs");
    }

    #[test]
    fn rounds_close_per_shard_and_stats_add_up() {
        let mut r = ShardedTcmReducer::new(4, 6);
        for o in workload() {
            r.ingest(&o);
        }
        let (stats, _) = r.close_round();
        assert!(stats.objects > 0);
        assert!(stats.max_shard_objects <= stats.objects);
        assert!(
            stats.max_shard_objects * 4 >= stats.objects,
            "shards roughly balanced: {stats:?}"
        );
        assert_eq!(r.rounds_closed(), 1);
    }

    #[test]
    fn parallel_reduction_on_real_threads_matches() {
        let oals = workload();
        let mut central = TcmBuilder::new(6);
        for o in &oals {
            central.ingest(o);
        }
        central.close_round();

        // Pre-split the stream, process each shard on its own OS thread.
        let n_shards = 4;
        let mut per_shard: Vec<Vec<Oal>> = vec![Vec::new(); n_shards];
        for o in &oals {
            for (shard, slice) in split_oal(o, n_shards) {
                per_shard[shard].push(slice);
            }
        }
        let handles: Vec<_> = per_shard
            .into_iter()
            .map(|slices| {
                std::thread::spawn(move || {
                    let mut b = TcmBuilder::new(6);
                    for s in &slices {
                        b.ingest(s);
                    }
                    b.close_round();
                    b
                })
            })
            .collect();
        let shards: Vec<TcmBuilder> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let reducer = ShardedTcmReducer::from_shards(shards, 6);
        assert_eq!(reducer.reduce().raw(), central.tcm().raw());
    }

    // --- fabric-tree aggregation ------------------------------------------

    /// Splitmix-style generator, so tree tests are seeded and reproducible.
    fn mix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A seeded random round: per-thread OALs over a shared object universe.
    /// Class is a pure function of the object id, as in the real runtime.
    fn random_round(seed: u64, n_threads: usize, n_objects: u32) -> Vec<Oal> {
        let mut s = seed;
        (0..n_threads as u32)
            .map(|t| {
                let n_entries = 1 + (mix(&mut s) % 12) as usize;
                Oal {
                    thread: ThreadId(t),
                    interval: 0,
                    entries: (0..n_entries)
                        .map(|_| {
                            let o = (mix(&mut s) % n_objects as u64) as u32;
                            OalEntry {
                                obj: ObjectId(o),
                                class: ClassId((o % 3) as u16),
                                bytes: 8 + (mix(&mut s) % 4096),
                            }
                        })
                        .collect(),
                }
            })
            .collect()
    }

    #[test]
    fn tree_parent_topology_is_a_forest_rooted_at_the_master() {
        for fanout in [2usize, 3, 4, 8] {
            for node in 0..64usize {
                match tree_parent(node, fanout) {
                    None => assert!(node < fanout, "only the first {fanout} ship direct"),
                    Some(p) => {
                        assert!(p < node, "parent id must be smaller (merge order)");
                        let first_child = (p + 1) * fanout;
                        assert!(
                            (first_child..first_child + fanout).contains(&node),
                            "node {node} not in parent {p}'s child run at fanout {fanout}"
                        );
                    }
                }
            }
        }
    }

    /// The tentpole property: for arbitrary OAL streams, node placements,
    /// fanouts and decay factors, the tree pipeline's cumulative and per-round
    /// state is bit-identical to a flat `TcmBuilder` fed the same stream.
    #[test]
    fn tree_reduction_is_bit_identical_to_flat_builder() {
        let n_threads = 23; // not a multiple of 64: exercises partial bitset words
        for (seed, n_nodes, fanout, decay) in [
            (1u64, 1usize, 2usize, 1.0f64),
            (2, 2, 2, 1.0),
            (3, 3, 2, 0.5),
            (4, 4, 3, 1.0),
            (5, 5, 4, 0.5),
            (6, 7, 2, 1.0),
            (7, 8, 3, 0.25),
        ] {
            let mut flat = TcmBuilder::new(n_threads);
            flat.set_decay(decay);
            let mut tree = TreeTcmReducer::new(n_threads, n_nodes, fanout);
            tree.set_decay(decay);
            let mut s = seed.wrapping_mul(0x5851_F42D_4C95_7F2D);
            for round in 0..4u64 {
                let oals = random_round(seed ^ round, n_threads, 40);
                for o in &oals {
                    // Arbitrary (but deterministic) thread→node placement.
                    let node = (o.thread.index() + (mix(&mut s) % 2) as usize) % n_nodes;
                    flat.ingest(o);
                    tree.ingest(node, o);
                }
                let flat_summary = flat.close_round();
                let (stats, tree_summary) = tree.close_round();
                let label = format!(
                    "seed {seed} round {round} nodes {n_nodes} fanout {fanout} decay {decay}"
                );
                assert_eq!(tree_summary.objects, flat_summary.objects, "{label}");
                assert_eq!(tree_summary.tcm.raw(), flat_summary.tcm.raw(), "{label}");
                assert_eq!(tree_summary.per_class, flat_summary.per_class, "{label}");
                assert_eq!(tree.tcm().raw(), flat.tcm().raw(), "{label}");
                assert_eq!(tree.per_class(), flat.per_class(), "{label}");
                assert_eq!(stats.master_partials, fanout.min(n_nodes) as u64, "{label}");
            }
            assert_eq!(tree.rounds_closed(), 4);
        }
    }

    #[test]
    fn tree_stats_count_only_real_fabric_traffic() {
        // Single node: everything is local. No shuffle bytes, and the lone
        // "subtree → master" hop is the node-0 self-edge, so no partial bytes.
        let mut tree = TreeTcmReducer::new(6, 1, 2);
        for o in workload() {
            tree.ingest(0, &o);
        }
        let (stats, _) = tree.close_round();
        assert_eq!(stats.shuffle_bytes, 0);
        assert_eq!(stats.partial_bytes, 0);
        assert_eq!(stats.master_partials, 1);
        assert_eq!(stats.edges.len(), 1);
        assert_eq!((stats.edges[0].from, stats.edges[0].to), (0, 0));

        // Spread over 5 nodes at fanout 2: shuffle + tree traffic appears, and
        // every non-master-self edge carries nonzero modeled bytes.
        let mut tree = TreeTcmReducer::new(6, 5, 2);
        for o in workload() {
            tree.ingest(o.thread.index() % 5, &o);
        }
        let (stats, _) = tree.close_round();
        assert!(stats.shuffle_records > 0);
        assert!(stats.shuffle_bytes >= stats.shuffle_records * 24);
        assert!(stats.partial_bytes > 0);
        assert_eq!(stats.master_partials, 2);
        // The round's edge list ends with the root hops, ascending subtree
        // order: node 0's local hand-off, then node 1's real fabric hop.
        let roots = &stats.edges[stats.edges.len() - 2..];
        assert_eq!((roots[0].from, roots[0].to), (0, 0));
        assert_eq!((roots[1].from, roots[1].to), (1, 0));
        assert!(roots[1].bytes > 0);
    }

    #[test]
    fn partial_merge_through_scratch_is_allocation_stable() {
        let mut tree = TreeTcmReducer::new(6, 3, 2);
        let mut acc = TcmPartial::empty(6);
        let mut scratch = MergeScratch::new();
        for round in 0..6u64 {
            for o in random_round(round, 6, 16) {
                tree.ingest(o.thread.index() % 3, &o);
            }
            let (_, subtrees) = tree.close_round_subtrees();
            let root = tree.merge_subtrees(subtrees);
            acc.merge(&root, &mut scratch);
            tree.fold_partial(&root);
        }
        // The accumulated partial equals the cumulative map (decay = 1.0).
        assert_eq!(acc.pairs.to_dense().raw(), tree.tcm().raw());
        // Steady state: once the union shape stabilizes, further merges reuse
        // the scratch (and the accumulator's own buffer) without allocating.
        for o in random_round(99, 6, 16) {
            tree.ingest(o.thread.index() % 3, &o);
        }
        let (_, subtrees) = tree.close_round_subtrees();
        let root = tree.merge_subtrees(subtrees);
        acc.merge(&root, &mut scratch);
        let cap = scratch.capacity();
        assert!(cap > 0);
        for _ in 0..4 {
            acc.merge(&root, &mut scratch);
        }
        assert_eq!(scratch.capacity(), cap, "merge scratch must be reused");
    }

    /// Satellite: heterogeneous per-node coverage. When some nodes are
    /// quarantined (contribute nothing) or prorated (contribute a boundary
    /// fraction of their threads), merging the surviving per-node summaries
    /// must equal a flat reduction over exactly the surviving OALs — the
    /// property the scheduler's `round_coverage` bookkeeping relies on when
    /// the tree path replaces the flat one.
    #[test]
    fn merge_round_summaries_handles_heterogeneous_node_coverage() {
        let n_threads = 12;
        let oals = random_round(42, n_threads, 30);
        let node_of = |t: usize| t % 4;
        // Node 2 quarantined; node 3 prorated to its first thread only.
        let survives =
            |o: &Oal| node_of(o.thread.index()) != 2 && (node_of(o.thread.index()) != 3 || o.thread.index() == 3);

        let mut flat = TcmBuilder::new(n_threads);
        let n_shards = 7; // more shards than hot objects: some merge in empty
        let mut shards: Vec<TcmBuilder> =
            (0..n_shards).map(|_| TcmBuilder::new(n_threads)).collect();
        let mut scratch = SplitScratch::new();
        for o in &oals {
            if survives(o) {
                flat.ingest(o);
                for (shard, view) in split_oal_into(o, n_shards, &mut scratch) {
                    shards[shard].ingest_view(view);
                }
            }
        }
        let flat_summary = flat.close_round();
        let shard_summaries: Vec<RoundSummary> =
            shards.iter_mut().map(|b| b.close_round()).collect();
        // Merge order is the scheduler's slice order and must not matter for
        // the result, even when quarantine/proration leaves some shards with
        // nothing to contribute.
        let merged = merge_round_summaries(n_threads, &shard_summaries);
        assert_eq!(merged.tcm.raw(), flat_summary.tcm.raw());
        assert_eq!(merged.per_class, flat_summary.per_class);
        assert_eq!(merged.objects, flat_summary.objects);

        // The tree reducer over the same survivor set agrees bit for bit.
        let mut tree = TreeTcmReducer::new(n_threads, 4, 2);
        for o in &oals {
            if survives(o) {
                tree.ingest(node_of(o.thread.index()), o);
            }
        }
        let (_, tree_summary) = tree.close_round();
        assert_eq!(tree_summary.tcm.raw(), flat_summary.tcm.raw());
        assert_eq!(tree_summary.per_class, flat_summary.per_class);
    }
}
