//! The per-thread profiling facade.
//!
//! The runtime owns one [`ThreadProfiler`] per application thread and drives it at
//! three points, mirroring where JESSICA2's hooks live:
//!
//! * **after every GOS access** ([`ThreadProfiler::on_access`]) — log correlation
//!   faults (and first touches) of sampled objects into the interval's OAL, feed
//!   sticky-set footprinting, and re-arm probe traps (nonstop or timer cadence);
//! * **at every synchronization point** ([`ThreadProfiler::close_interval`] then, after
//!   the sync completes, [`ThreadProfiler::open_interval`]) — emit the interval's OAL
//!   for shipment to the coordinator and advance the thread arena's interval epoch,
//!   which is what makes the traps armed during the previous interval go live
//!   (Section II.A). Arming itself is fused into access logging
//!   ([`jessy_gos::ThreadSpace::arm_next_interval`]), so the interval boundary walks
//!   nothing;
//! * **opportunistically** ([`ThreadProfiler::maybe_stack_sample`]) — timer-gated stack
//!   sampling (Section III.B).
//!
//! Shared, cross-thread state (the gap table the coordinator retunes, global counters)
//! lives in [`ProfilerShared`].

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use jessy_gos::{AccessOutcome, ClassId, Gos, ObjectCore, ObjectId, ThreadSpace};
use jessy_net::{ClockHandle, ThreadId};
use jessy_stack::JavaStack;

use crate::config::{FootprintMode, ProfilerConfig};
use crate::oal::{Oal, OalEntry};
use crate::sampling::GapTable;
use crate::stack_sampling::{StackInvariant, StackSampler};
use crate::sticky::footprint::{FootprintSnapshot, FootprintTracker};
use crate::sticky::resolution::{resolve_sticky_set, Resolution};

/// Global profiling counters (all threads).
#[derive(Debug, Default)]
pub struct ProfilerStats {
    intervals_closed: AtomicU64,
    oal_entries: AtomicU64,
    fi_armed: AtomicU64,
    footprint_rearms: AtomicU64,
}

/// A point-in-time copy of [`ProfilerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfilerStatsSnapshot {
    /// Intervals closed across all threads.
    pub intervals_closed: u64,
    /// OAL entries logged.
    pub oal_entries: u64,
    /// False-invalid traps armed at interval opens.
    pub fi_armed: u64,
    /// Extra traps armed by footprint probing.
    pub footprint_rearms: u64,
}

impl ProfilerStats {
    /// Snapshot the counters.
    pub fn snapshot(&self) -> ProfilerStatsSnapshot {
        ProfilerStatsSnapshot {
            intervals_closed: self.intervals_closed.load(Ordering::Relaxed),
            oal_entries: self.oal_entries.load(Ordering::Relaxed),
            fi_armed: self.fi_armed.load(Ordering::Relaxed),
            footprint_rearms: self.footprint_rearms.load(Ordering::Relaxed),
        }
    }

    /// Count traps armed outside the access path (the thread-side re-sync walk
    /// after a coordinator rate change).
    pub fn record_fi_armed(&self, n: u64) {
        self.fi_armed.fetch_add(n, Ordering::Relaxed);
    }
}

/// Profiler state shared by all threads: configuration, the per-class gap table and
/// global counters.
#[derive(Debug)]
pub struct ProfilerShared {
    config: ProfilerConfig,
    gaps: GapTable,
    stats: ProfilerStats,
    summary_only: AtomicBool,
}

impl ProfilerShared {
    /// Build the shared state.
    pub fn new(config: ProfilerConfig) -> Arc<Self> {
        Arc::new(ProfilerShared {
            config,
            gaps: GapTable::new(config.page_size),
            stats: ProfilerStats::default(),
            summary_only: AtomicBool::new(false),
        })
    }

    /// The configuration.
    pub fn config(&self) -> &ProfilerConfig {
        &self.config
    }

    /// The shared gap table (the adaptive controller mutates it).
    pub fn gaps(&self) -> &GapTable {
        &self.gaps
    }

    /// Global counters.
    pub fn stats(&self) -> &ProfilerStats {
        &self.stats
    }

    /// Is the budget ladder's summary-only rung in force? Threads check this when
    /// shipping OALs and collapse them to per-class summaries ([`Oal::summarize`]).
    pub fn summary_only(&self) -> bool {
        self.summary_only.load(Ordering::Relaxed)
    }

    /// Engage (or release) summary-only OAL shipping. Set by the coordinator when
    /// the degradation ladder reaches its last data-bearing rung.
    pub fn set_summary_only(&self, on: bool) {
        self.summary_only.store(on, Ordering::Relaxed);
    }

    /// Register a class for sampling at the configured initial rate.
    pub fn register_class(&self, class: ClassId, unit_bytes: usize) {
        self.gaps
            .register_class(class, unit_bytes, self.config.initial_rate);
    }

    /// Tag a freshly allocated object's sampled bit from its sequence number(s).
    pub fn tag_new_object(&self, core: &ObjectCore) {
        let len_elems = if core.is_array {
            let unit_words = (self.gaps.state(core.class).unit_bytes / 8).max(1) as u32;
            core.len_words / unit_words
        } else {
            1
        };
        core.set_sampled(self.gaps.decide_sampled(core.class, core.elem_seq0, len_elems));
    }
}

/// Per-thread profiler.
#[derive(Debug)]
pub struct ThreadProfiler {
    shared: Arc<ProfilerShared>,
    thread: ThreadId,
    interval: u64,
    oal_entries: Vec<OalEntry>,
    logged_this_interval: HashSet<ObjectId>,
    footprint: Option<FootprintTracker>,
    stack_sampler: Option<StackSampler>,
    last_footprint: FootprintSnapshot,
}

impl ThreadProfiler {
    /// Profiler for `thread`.
    pub fn new(shared: Arc<ProfilerShared>, thread: ThreadId) -> Self {
        let footprint = shared.config.footprint.map(FootprintTracker::new);
        let stack_sampler = shared.config.stack.map(StackSampler::new);
        ThreadProfiler {
            shared,
            thread,
            interval: 0,
            oal_entries: Vec::new(),
            logged_this_interval: HashSet::new(),
            footprint,
            stack_sampler,
            last_footprint: FootprintSnapshot::default(),
        }
    }

    /// The owning thread.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// Shared state.
    pub fn shared(&self) -> &Arc<ProfilerShared> {
        &self.shared
    }

    /// Current interval number.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Hook called after every GOS access with its [`AccessOutcome`], passing the
    /// accessing thread's own arena. Per-interval trap re-arming (Section II.A) is
    /// fused in here: logging an object also stamps its entry with the *next*
    /// interval's epoch, so [`ThreadProfiler::open_interval`] never walks an
    /// accessed set.
    pub fn on_access(
        &mut self,
        gos: &Gos,
        space: &mut ThreadSpace,
        out: &AccessOutcome,
        clock: &ClockHandle,
    ) {
        let config = &self.shared.config;
        let costs = gos.costs();

        if config.full_trace {
            // Ground truth: log every access once per interval at full payload size.
            // No arming — full-trace mode logs without traps.
            if config.track_correlation && self.logged_this_interval.insert(out.obj) {
                clock.spend(costs.log_append_ns);
                self.shared.stats.oal_entries.fetch_add(1, Ordering::Relaxed);
                self.oal_entries.push(OalEntry {
                    obj: out.obj,
                    class: out.class,
                    bytes: out.payload_bytes as u64,
                });
            }
            return;
        }

        if !out.loggable() || !out.sampled {
            return;
        }
        let scaled = self
            .shared
            .gaps
            .scaled_bytes(out.class, out.elem_seq0, out.len_elems);

        if self.logged_this_interval.insert(out.obj) {
            if config.track_correlation || self.footprint.is_some() {
                // The object must trap again next interval (at-most-once logging per
                // interval). Epoch-lazy: live once the epoch advances past the stamp.
                if space.arm_next_interval(out.obj) {
                    self.shared.stats.fi_armed.fetch_add(1, Ordering::Relaxed);
                }
            }
            if config.track_correlation {
                clock.spend(costs.log_append_ns);
                self.shared.stats.oal_entries.fetch_add(1, Ordering::Relaxed);
                self.oal_entries.push(OalEntry {
                    obj: out.obj,
                    class: out.class,
                    bytes: scaled,
                });
            }
        }

        if let Some(fp) = &mut self.footprint {
            fp.on_logged_access(out.obj, out.class, scaled);
            if matches!(fp.config().mode, FootprintMode::Nonstop) {
                // Exact frequency counting: the object must fault on its next access.
                let armed = space.arm_traps([out.obj]);
                self.shared
                    .stats
                    .footprint_rearms
                    .fetch_add(armed as u64, Ordering::Relaxed);
            }
        }
    }

    /// Timer-gated footprint probe: when due, re-arm traps on every object hit so far
    /// this interval so the next probe round can recount them. Call this from the
    /// runtime's access wrapper (it is cheap when not due).
    pub fn maybe_footprint_probe(&mut self, space: &mut ThreadSpace, clock: &ClockHandle) {
        let Some(fp) = &mut self.footprint else {
            return;
        };
        if !fp.should_probe(clock.now()) {
            return;
        }
        fp.start_round(clock.now());
        let armed = space.arm_traps(fp.hits());
        if armed > 0 {
            self.shared
                .stats
                .footprint_rearms
                .fetch_add(armed as u64, Ordering::Relaxed);
        }
    }

    /// Timer-gated stack sample (Section III.B). Returns whether a sample was taken.
    pub fn maybe_stack_sample(
        &mut self,
        gos: &Gos,
        stack: &mut JavaStack,
        clock: &ClockHandle,
    ) -> bool {
        match &mut self.stack_sampler {
            Some(s) => s.maybe_sample(stack, clock, gos.costs()),
            None => false,
        }
    }

    /// Close the current interval (called right *before* the release part of a sync
    /// operation): emits the interval's OAL (if correlation tracking is on) and folds
    /// the footprint snapshot (if footprinting is on).
    pub fn close_interval(&mut self) -> Option<Oal> {
        self.shared
            .stats
            .intervals_closed
            .fetch_add(1, Ordering::Relaxed);
        self.logged_this_interval.clear();
        if let Some(fp) = &mut self.footprint {
            self.last_footprint = fp.close_interval();
        }
        let entries = std::mem::take(&mut self.oal_entries);
        let oal = Oal {
            thread: self.thread,
            interval: self.interval,
            entries,
        };
        self.interval += 1;
        // Even empty OALs are emitted: the interval context tells the coordinator the
        // thread's interval stream is complete up to here, which is what lets it close
        // TCM rounds deterministically by interval number rather than arrival order.
        if self.shared.config.track_correlation {
            Some(oal)
        } else {
            None
        }
    }

    /// Open the next interval (called right *after* the acquire part of a sync
    /// operation): advance the arena's interval epoch, which makes every trap armed
    /// during the previous interval (by [`ThreadProfiler::on_access`]) go live.
    /// O(1) — no accessed-set walk.
    pub fn open_interval(&mut self, space: &mut ThreadSpace) {
        space.begin_interval();
    }

    /// Stack invariants discovered so far (topmost first).
    pub fn invariants(&self) -> Vec<StackInvariant> {
        self.stack_sampler
            .as_ref()
            .map(|s| s.invariants())
            .unwrap_or_default()
    }

    /// The stack sampler's counters, if enabled.
    pub fn stack_stats(&self) -> Option<crate::stack_sampling::StackSamplerStats> {
        self.stack_sampler.as_ref().map(|s| s.stats())
    }

    /// Average per-class sticky footprint over closed intervals (Table IV).
    pub fn average_footprint(&self) -> HashMap<ClassId, f64> {
        self.footprint
            .as_ref()
            .map(|f| f.average_footprint())
            .unwrap_or_default()
    }

    /// The most recently closed interval's footprint snapshot.
    pub fn last_footprint(&self) -> &FootprintSnapshot {
        &self.last_footprint
    }

    /// Resolve this thread's sticky set for a migration: stack invariants (topmost
    /// first) as roots, the averaged footprint as the per-class budget.
    pub fn resolve_sticky(&self, gos: &Gos, clock: &ClockHandle) -> Resolution {
        let roots: Vec<ObjectId> = self.invariants().iter().map(|i| i.obj).collect();
        self.resolve_sticky_from(gos, &roots, clock)
    }

    /// Resolve the sticky set with the thread's own access entries (its de-facto
    /// working set, object-id order) rooted ahead of the stack invariants. A
    /// shared container on the stack (a matrix object referencing every row, say)
    /// enumerates the *whole* structure in one hop, so rooting at it selects the
    /// same prefix for every thread; the access entries pin the walk to what this
    /// thread actually uses, and the invariants still extend it through linked
    /// structure the cache has not touched yet. Each entry scanned is charged one
    /// resolver edge.
    pub fn resolve_sticky_for_space(
        &self,
        gos: &Gos,
        space: &ThreadSpace,
        clock: &ClockHandle,
    ) -> Resolution {
        let mut roots = space.touched_objects();
        clock.spend(gos.costs().resolve_edge_ns * roots.len() as u64);
        roots.extend(self.invariants().iter().map(|i| i.obj));
        self.resolve_sticky_from(gos, &roots, clock)
    }

    fn resolve_sticky_from(&self, gos: &Gos, roots: &[ObjectId], clock: &ClockHandle) -> Resolution {
        let budget: HashMap<ClassId, u64> = self
            .average_footprint()
            .into_iter()
            .map(|(c, b)| (c, b.round() as u64))
            .collect();
        resolve_sticky_set(
            gos,
            self.shared.gaps(),
            roots,
            &budget,
            self.shared.config.tolerance_t,
            clock,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FootprintConfig, StackSamplingConfig};
    use crate::sampling::SamplingRate;
    use jessy_gos::{CostModel, GosConfig};
    use jessy_net::{ClockBoard, LatencyModel, NodeId};

    fn gos1() -> (Gos, ThreadSpace, ClockHandle) {
        let g = Gos::new(GosConfig {
            n_nodes: 1,
            n_threads: 1,
            latency: LatencyModel::free(),
            costs: CostModel::free(),
            prefetch_depth: 0,
            consistency: jessy_gos::protocol::ConsistencyModel::GlobalHlrc,
            faults: None,
        });
        (g, ThreadSpace::new(ThreadId(0)), ClockBoard::new(1).handle(ThreadId(0)))
    }

    #[test]
    fn first_touch_then_interval_arming_keeps_logging() {
        let (gos, mut space, clock) = gos1();
        let shared = ProfilerShared::new(ProfilerConfig::tracking_at(SamplingRate::Full));
        let class = gos.classes().register_scalar("X", 2);
        shared.register_class(class, 16);
        let mut prof = ThreadProfiler::new(Arc::clone(&shared), ThreadId(0));
        let node = NodeId(0);

        let core = gos.alloc_scalar(node, class, &clock, None);
        shared.tag_new_object(&core);
        assert!(core.is_sampled(), "full sampling tags everything");

        // Interval 0: the home-resident first touch is loggable.
        let (_, out) = gos.read(&mut space, node, core.id, &clock, |_| {});
        assert!(out.first_touch && !out.faulted());
        prof.on_access(&gos, &mut space, &out, &clock);
        // Repeat access: hit, not logged again (the re-arm stamped the *next* epoch).
        let (_, out) = gos.read(&mut space, node, core.id, &clock, |_| {});
        assert!(!out.loggable());
        prof.on_access(&gos, &mut space, &out, &clock);
        let oal = prof.close_interval().expect("first touch logged");
        assert_eq!(oal.entries.len(), 1);
        assert_eq!(oal.entries[0].bytes, 16, "scaled = payload at gap 1");

        // Interval 1: the epoch advance makes the trap live; access logs again.
        prof.open_interval(&mut space);
        assert_eq!(shared.stats().snapshot().fi_armed, 1);
        let (_, out) = gos.read(&mut space, node, core.id, &clock, |_| {});
        assert!(out.false_invalid, "trap live after open_interval");
        prof.on_access(&gos, &mut space, &out, &clock);
        let oal = prof.close_interval().unwrap();
        assert_eq!(oal.interval, 1);
        assert_eq!(oal.entries.len(), 1);
        assert_eq!(shared.stats().snapshot().oal_entries, 2);
    }

    #[test]
    fn unsampled_objects_are_never_logged() {
        let (gos, mut space, clock) = gos1();
        // 64-byte class at 1X → gap 67: seq 1 is unsampled.
        let shared = ProfilerShared::new(ProfilerConfig::tracking_at(SamplingRate::NX(1)));
        let class = gos.classes().register_scalar("Body", 8);
        shared.register_class(class, 64);
        let mut prof = ThreadProfiler::new(Arc::clone(&shared), ThreadId(0));
        let node = NodeId(0);
        let a = gos.alloc_scalar(node, class, &clock, None); // seq 0: sampled
        let b = gos.alloc_scalar(node, class, &clock, None); // seq 1: not
        shared.tag_new_object(&a);
        shared.tag_new_object(&b);
        assert!(a.is_sampled() && !b.is_sampled());

        for id in [a.id, b.id] {
            let (_, out) = gos.read(&mut space, node, id, &clock, |_| {});
            assert!(out.first_touch);
            prof.on_access(&gos, &mut space, &out, &clock);
        }
        let oal = prof.close_interval().unwrap();
        assert_eq!(oal.entries.len(), 1);
        assert_eq!(oal.entries[0].obj, a.id);
        assert_eq!(oal.entries[0].bytes, 64 * 67, "scaled by the gap");
    }

    #[test]
    fn full_trace_logs_every_object_without_arming() {
        let (gos, mut space, clock) = gos1();
        let shared = ProfilerShared::new(ProfilerConfig::ground_truth());
        let class = gos.classes().register_scalar("X", 1);
        shared.register_class(class, 8);
        let mut prof = ThreadProfiler::new(Arc::clone(&shared), ThreadId(0));
        let node = NodeId(0);
        let a = gos.alloc_scalar(node, class, &clock, None);
        let b = gos.alloc_scalar(node, class, &clock, None);
        for id in [a.id, b.id, a.id] {
            let (_, out) = gos.read(&mut space, node, id, &clock, |_| {});
            prof.on_access(&gos, &mut space, &out, &clock);
        }
        let oal = prof.close_interval().unwrap();
        assert_eq!(oal.entries.len(), 2, "deduplicated per interval");
        assert!(oal.entries.iter().all(|e| e.bytes == 8));

        // Next interval logs the same objects again without any arming.
        prof.open_interval(&mut space);
        let (_, out) = gos.read(&mut space, node, a.id, &clock, |_| {});
        assert!(!out.faulted(), "no traps in full-trace mode");
        prof.on_access(&gos, &mut space, &out, &clock);
        assert_eq!(prof.close_interval().unwrap().entries.len(), 1);
    }

    #[test]
    fn nonstop_footprint_rearms_and_counts_frequency() {
        let (gos, mut space, clock) = gos1();
        let mut config = ProfilerConfig::tracking_at(SamplingRate::Full);
        config.footprint = Some(FootprintConfig {
            mode: FootprintMode::Nonstop,
            min_gap: 1,
        });
        let shared = ProfilerShared::new(config);
        let class = gos.classes().register_scalar("X", 1);
        shared.register_class(class, 8);
        let mut prof = ThreadProfiler::new(Arc::clone(&shared), ThreadId(0));
        let node = NodeId(0);
        let core = gos.alloc_scalar(node, class, &clock, None);
        shared.tag_new_object(&core);

        // Every access faults: first touch, then nonstop re-arming.
        for i in 0..4 {
            let (_, out) = gos.read(&mut space, node, core.id, &clock, |_| {});
            assert!(out.loggable(), "access {i} must trap");
            prof.on_access(&gos, &mut space, &out, &clock);
        }
        prof.close_interval();
        assert_eq!(prof.last_footprint().sticky_objects, 1);
        assert_eq!(shared.stats().snapshot().footprint_rearms, 4);
    }

    #[test]
    fn stack_sampling_integration() {
        let (gos, _space, clock) = gos1();
        let mut config = ProfilerConfig::disabled();
        config.stack = Some(StackSamplingConfig {
            gap_ns: 0,
            lazy_extraction: true,
        });
        let shared = ProfilerShared::new(config);
        let mut prof = ThreadProfiler::new(shared, ThreadId(0));
        let mut stack = JavaStack::new();
        stack.push_raw(jessy_stack::MethodId(0), 2);
        stack.set_local(0, jessy_stack::Slot::Ref(ObjectId(4)));
        assert!(prof.maybe_stack_sample(&gos, &mut stack, &clock));
        clock.spend(1);
        assert!(prof.maybe_stack_sample(&gos, &mut stack, &clock));
        assert_eq!(prof.invariants().len(), 1);
        assert!(prof.stack_stats().unwrap().samples == 2);
    }
}
