//! The Thread Correlation Map (Section II.A).
//!
//! An N×N symmetric histogram: entry *(i, j)* accumulates the bytes of objects threads
//! *i* and *j* accessed in common. The central coordinator builds it from OALs in two
//! steps, exactly as the paper costs them: reorganizing per-thread lists into
//! per-object thread lists (`O(M·N)`), then accruing every pair (`O(M·N²)`).
//!
//! A [`TcmBuilder`] ingests OALs continuously; [`TcmBuilder::close_round`] folds the
//! per-object organization of the round into the map and clears it. Accumulating in
//! rounds (one round = `intervals_per_round` closed intervals) is what lets the
//! adaptive controller compare "successive correlation matrices".
//!
//! # Reduction data layout
//!
//! The map is symmetric with a zero diagonal, so [`Tcm`] stores only the strict upper
//! triangle, packed row-major into `n·(n−1)/2` cells — half the memory of a dense
//! matrix and one write per pair instead of two. Each round-pending object carries a
//! fixed-width **thread bitset** (`⌈N/64⌉` `u64` words) instead of a `Vec<ThreadId>`:
//! membership insert is one OR, dedup is structural (a thread logging the same object
//! in several intervals of one round sets the same bit), and pair accrual walks set
//! bits with trailing-zeros word iteration. Per-class round maps are **sparse**
//! ([`SparseTcm`]): only the pairs a class actually touched, accumulated in a
//! capacity-retained dense scratch and drained in ascending cell order at round close.
//! All round-local buffers (object index, bitset arena, class scratch) retain their
//! capacity across rounds, so steady-state ingestion is allocation-free.
//!
//! The [`reference`] module retains the seed's scalar implementation as the
//! bit-exactness oracle for tests and the baseline for the `tcm_reduce` bench.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use jessy_gos::{ClassId, ObjectId};
use jessy_net::ThreadId;

use crate::oal::{Oal, OalEntry, OalRef};

/// Cells of the packed strict upper triangle for `n` threads.
#[inline]
pub(crate) fn tri_len(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

/// Packed index of pair `(i, j)` with `i < j < n`.
#[inline]
pub(crate) fn tri_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i < j && j < n);
    i * (2 * n - i - 1) / 2 + (j - i - 1)
}

/// Inverse of [`tri_index`]: the `(i, j)` pair a packed cell belongs to.
pub(crate) fn tri_decode(n: usize, idx: usize) -> (usize, usize) {
    let mut i = 0;
    let mut start = 0;
    loop {
        let row_len = n - 1 - i;
        if idx < start + row_len {
            return (i, i + 1 + (idx - start));
        }
        start += row_len;
        i += 1;
    }
}

/// A symmetric N×N correlation map with a zero diagonal, stored as the packed strict
/// upper triangle (`n·(n−1)/2` cells).
///
/// ```
/// use jessy_core::Tcm;
/// use jessy_net::ThreadId;
///
/// let mut tcm = Tcm::new(3);
/// tcm.add_pair(ThreadId(0), ThreadId(2), 4096.0);
/// assert_eq!(tcm.at(ThreadId(2), ThreadId(0)), 4096.0); // symmetric
/// assert_eq!(tcm.at(ThreadId(1), ThreadId(1)), 0.0);    // zero diagonal
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tcm {
    n: usize,
    data: Vec<f64>,
}

impl Tcm {
    /// Zeroed map for `n` threads.
    pub fn new(n: usize) -> Self {
        Tcm {
            n,
            data: vec![0.0; tri_len(n)],
        }
    }

    /// Number of threads.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Value at unordered index pair `(i, j)` (0 on the diagonal).
    #[inline]
    fn at_idx(&self, i: usize, j: usize) -> f64 {
        match i.cmp(&j) {
            std::cmp::Ordering::Less => self.data[tri_index(self.n, i, j)],
            std::cmp::Ordering::Equal => 0.0,
            std::cmp::Ordering::Greater => self.data[tri_index(self.n, j, i)],
        }
    }

    /// Shared volume between threads `i` and `j`.
    #[inline]
    pub fn at(&self, i: ThreadId, j: ThreadId) -> f64 {
        self.at_idx(i.index(), j.index())
    }

    /// Accrue `bytes` to the (i, j) pair (one packed cell; no-op for i == j).
    pub fn add_pair(&mut self, i: ThreadId, j: ThreadId, bytes: f64) {
        if i == j {
            return;
        }
        let (a, b) = if i.index() < j.index() {
            (i.index(), j.index())
        } else {
            (j.index(), i.index())
        };
        self.data[tri_index(self.n, a, b)] += bytes;
    }

    /// Merge another map into this one.
    pub fn merge(&mut self, other: &Tcm) {
        assert_eq!(self.n, other.n);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Merge a sparse map into this one (cells land in ascending packed order).
    pub fn merge_sparse(&mut self, other: &SparseTcm) {
        assert_eq!(self.n, other.n);
        for &(idx, v) in &other.cells {
            self.data[idx as usize] += v;
        }
    }

    /// Sum of all entries of the full symmetric matrix (2× the total pairwise shared
    /// volume, as in the dense representation).
    pub fn total(&self) -> f64 {
        2.0 * self.data.iter().sum::<f64>()
    }

    /// Scale every entry (normalization for cross-run comparisons).
    pub fn scale(&mut self, k: f64) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Raw packed upper-triangle data, row-major: `(0,1) (0,2) … (0,n−1) (1,2) …`
    /// (for distance metrics and equality checks; both sides of a metric see the same
    /// packing, so the `E_ABS`/`E_EUC` ratios match the dense definition).
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Mutable packed cells, for in-crate accrual hot loops.
    #[inline]
    pub(crate) fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The map as rows of the full symmetric matrix (for rendering). Streams straight
    /// from the packed triangle — no intermediate `Vec<Vec<f64>>`.
    pub fn rows(&self) -> impl Iterator<Item = impl Iterator<Item = f64> + '_> + '_ {
        (0..self.n).map(move |i| (0..self.n).map(move |j| self.at_idx(i, j)))
    }

    /// Collect the nonzero cells into a [`SparseTcm`] (ascending packed order).
    /// This is the export-side bridge at production N: a map with `P` active pairs
    /// serializes in `O(P)` instead of `O(N²)`.
    pub fn to_sparse(&self) -> SparseTcm {
        let cells = self
            .data
            .iter()
            .enumerate()
            .filter(|&(_, v)| *v != 0.0)
            .map(|(i, &v)| (i as u32, v))
            .collect();
        SparseTcm::from_sorted_cells(self.n, cells)
    }

    /// Sparse CSV export: header `i,j,bytes`, one row per *touched* pair. The dense
    /// [`Tcm::to_csv`] emits `N²` cells — ~350 MB of text at N=4096 — where this
    /// emits only the active pairs.
    pub fn to_csv_sparse(&self) -> String {
        self.to_sparse().to_csv()
    }

    /// Serialize as CSV (header `t0,t1,…`, one row per thread) for external plotting
    /// of the Fig. 1 / Fig. 9 data. At production N prefer [`Tcm::to_csv_sparse`].
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity((self.n + 1) * (self.n * 4 + 1));
        for i in 0..self.n {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "t{i}");
        }
        out.push('\n');
        for row in self.rows() {
            for (j, v) in row.enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{v}");
            }
            out.push('\n');
        }
        out
    }

    /// Largest grid `ascii_heatmap` will render: maps wider than this are
    /// downsampled (each glyph = max over its bucket) so a report at N=4096 costs a
    /// screenful of text, not a 16-million-character string.
    pub const HEATMAP_MAX_DIM: usize = 64;

    /// Render an ASCII heatmap (darker glyph = more sharing), for the Fig. 1-style
    /// examples. Maps larger than [`Tcm::HEATMAP_MAX_DIM`] threads per side are
    /// downsampled onto buckets of `⌈N / MAX_DIM⌉` threads; each glyph shows the
    /// hottest pair in its bucket.
    pub fn ascii_heatmap(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let max = self.data.iter().cloned().fold(0.0f64, f64::max);
        let step = self.n.div_ceil(Self::HEATMAP_MAX_DIM).max(1);
        let dim = self.n.div_ceil(step);
        let mut out = String::with_capacity(dim * (dim + 1));
        for bi in 0..dim {
            for bj in 0..dim {
                let mut v = 0.0f64;
                for i in bi * step..((bi + 1) * step).min(self.n) {
                    for j in bj * step..((bj + 1) * step).min(self.n) {
                        v = v.max(self.at_idx(i, j));
                    }
                }
                let idx = if max <= 0.0 {
                    0
                } else {
                    (((v / max) * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)
                };
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

/// A sparse symmetric correlation map: only the touched pairs, as `(packed cell,
/// value)` sorted by ascending cell index. This is what per-class round maps use — a
/// class touching `P` pairs costs `O(P)` instead of a dense `N×N` allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseTcm {
    n: usize,
    cells: Vec<(u32, f64)>,
}

impl SparseTcm {
    /// Empty sparse map for `n` threads.
    pub fn new(n: usize) -> Self {
        SparseTcm { n, cells: Vec::new() }
    }

    /// Build from cells already sorted by ascending packed index.
    pub(crate) fn from_sorted_cells(n: usize, cells: Vec<(u32, f64)>) -> Self {
        debug_assert!(cells.windows(2).all(|w| w[0].0 < w[1].0));
        SparseTcm { n, cells }
    }

    /// Build from unordered `(i, j, bytes)` pairs, accumulating duplicates.
    pub fn from_pairs(n: usize, pairs: &[(ThreadId, ThreadId, f64)]) -> Self {
        let mut acc: HashMap<u32, f64> = HashMap::new();
        for &(i, j, v) in pairs {
            if i == j {
                continue;
            }
            let (a, b) = if i.index() < j.index() {
                (i.index(), j.index())
            } else {
                (j.index(), i.index())
            };
            *acc.entry(tri_index(n, a, b) as u32).or_insert(0.0) += v;
        }
        let mut cells: Vec<(u32, f64)> = acc.into_iter().collect();
        cells.sort_unstable_by_key(|&(idx, _)| idx);
        SparseTcm { n, cells }
    }

    /// Number of threads.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Touched pair count.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// No touched pairs?
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Shared volume between threads `i` and `j` (0 for untouched pairs).
    pub fn at(&self, i: ThreadId, j: ThreadId) -> f64 {
        if i == j {
            return 0.0;
        }
        let (a, b) = if i.index() < j.index() {
            (i.index(), j.index())
        } else {
            (j.index(), i.index())
        };
        let idx = tri_index(self.n, a, b) as u32;
        match self.cells.binary_search_by_key(&idx, |&(c, _)| c) {
            Ok(pos) => self.cells[pos].1,
            Err(_) => 0.0,
        }
    }

    /// The touched cells, `(packed index, value)` in ascending index order.
    pub fn cells(&self) -> &[(u32, f64)] {
        &self.cells
    }

    /// Iterate touched pairs as `(i, j, value)` with `i < j`.
    pub fn iter(&self) -> impl Iterator<Item = (ThreadId, ThreadId, f64)> + '_ {
        self.cells.iter().map(move |&(idx, v)| {
            let (i, j) = tri_decode(self.n, idx as usize);
            (ThreadId(i as u32), ThreadId(j as u32), v)
        })
    }

    /// Merge another sparse map into this one (sorted union; each side's cells keep
    /// their ascending-index accumulation order). Allocates a fresh cell vector;
    /// steady-state callers should use [`SparseTcm::merge_with`] and a retained
    /// [`MergeScratch`].
    pub fn merge(&mut self, other: &SparseTcm) {
        let mut scratch = MergeScratch::new();
        self.merge_with(other, &mut scratch);
    }

    /// [`SparseTcm::merge`] against a reusable scratch (mirroring
    /// [`SplitScratch`](crate::distributed::SplitScratch)): the sorted union is
    /// built in `scratch` and swapped in, so the displaced cell vector becomes the
    /// next merge's buffer and steady-state tree aggregation never allocates.
    pub fn merge_with(&mut self, other: &SparseTcm, scratch: &mut MergeScratch) {
        assert_eq!(self.n, other.n);
        if other.cells.is_empty() {
            return;
        }
        if self.cells.is_empty() {
            self.cells.extend_from_slice(&other.cells);
            return;
        }
        let merged = &mut scratch.buf;
        merged.clear();
        merged.reserve(self.cells.len() + other.cells.len());
        let (mut a, mut b) = (0, 0);
        while a < self.cells.len() && b < other.cells.len() {
            match self.cells[a].0.cmp(&other.cells[b].0) {
                std::cmp::Ordering::Less => {
                    merged.push(self.cells[a]);
                    a += 1;
                }
                std::cmp::Ordering::Greater => {
                    merged.push(other.cells[b]);
                    b += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((self.cells[a].0, self.cells[a].1 + other.cells[b].1));
                    a += 1;
                    b += 1;
                }
            }
        }
        merged.extend_from_slice(&self.cells[a..]);
        merged.extend_from_slice(&other.cells[b..]);
        // Copy back rather than swapping vectors: both buffers keep their
        // (monotone) capacities, so steady-state merges never allocate.
        self.cells.clear();
        self.cells.extend_from_slice(merged);
    }

    /// CSV of the touched pairs: header `i,j,bytes`, one row per pair with `i < j`,
    /// ascending packed order.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(10 + self.cells.len() * 24);
        out.push_str("i,j,bytes\n");
        for (i, j, v) in self.iter() {
            let _ = writeln!(out, "{},{},{v}", i.0, j.0);
        }
        out
    }

    /// Expand into a dense (packed triangular) [`Tcm`].
    pub fn to_dense(&self) -> Tcm {
        let mut t = Tcm::new(self.n);
        t.merge_sparse(self);
        t
    }

    /// Sum over the full symmetric matrix (2× the triangle sum), matching
    /// [`Tcm::total`].
    pub fn total(&self) -> f64 {
        2.0 * self.cells.iter().map(|&(_, v)| v).sum::<f64>()
    }
}

/// Reusable buffer for [`SparseTcm::merge_with`]. Holding one of these per merge
/// site (aggregation-tree node, partial folder) makes repeated sparse merges
/// allocation-free: the merged vector and the displaced input vector rotate
/// through the scratch.
#[derive(Debug, Default)]
pub struct MergeScratch {
    buf: Vec<(u32, f64)>,
}

impl MergeScratch {
    /// A fresh (empty) scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Retained capacity, in cells (diagnostics for allocation-free assertions).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

/// Streaming view of the `k` most correlated thread pairs, in `O(capacity)`
/// memory — the head of the pair distribution the placement engine steers by,
/// maintained without ever materializing the `O(N²)` map.
///
/// The tracker keeps up to `4·k` candidate pairs as `(packed cell, weight)`.
/// Pairs already tracked accrue their **exact** round deltas (round maps are
/// exact in every backend); a newly seen pair is admitted at `cum_before(cell) +
/// round value`, where `cum_before` reports the pre-round cumulative weight —
/// exact under [`TcmBackend::Dense`](crate::config::TcmBackend), a count-min
/// upper bound under the sketch backend (the sketch error model in DESIGN.md
/// §16). When the candidate set overflows, the coldest pairs are evicted under a
/// total order (weight desc, cell asc), so the view is deterministic for a
/// deterministic round stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopKPairs {
    n: usize,
    k: usize,
    capacity: usize,
    /// Tracked pairs, ascending packed-cell order.
    tracked: Vec<(u32, f64)>,
}

impl TopKPairs {
    /// Track the top `k` pairs of an `n`-thread map (capacity `4·k` candidates).
    pub fn new(n: usize, k: usize) -> Self {
        TopKPairs {
            n,
            k,
            capacity: k.saturating_mul(4),
            tracked: Vec::new(),
        }
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of threads.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Currently tracked candidate count (≤ `4·k`).
    pub fn tracked_len(&self) -> usize {
        self.tracked.len()
    }

    /// Decay every tracked weight (call in lockstep with the cumulative map).
    pub fn scale(&mut self, factor: f64) {
        for (_, w) in &mut self.tracked {
            *w *= factor;
        }
    }

    /// Total order for eviction/ranking: hotter first, ties broken by cell index.
    fn hotter(x: (u32, f64), y: (u32, f64)) -> std::cmp::Ordering {
        y.1.total_cmp(&x.1).then(x.0.cmp(&y.0))
    }

    /// Fold one round's (exact, sparse) map into the view. `cum_before` must
    /// report the cumulative weight of a cell *before* this round was folded —
    /// the dense cumulative cell, or the sketch estimate taken pre-fold.
    pub fn observe_round(&mut self, round: &SparseTcm, cum_before: impl Fn(u32) -> f64) {
        if self.k == 0 || round.cells.is_empty() {
            return;
        }
        let mut merged: Vec<(u32, f64)> =
            Vec::with_capacity(self.tracked.len() + round.cells.len());
        let (mut a, mut b) = (0, 0);
        while a < self.tracked.len() && b < round.cells.len() {
            match self.tracked[a].0.cmp(&round.cells[b].0) {
                std::cmp::Ordering::Less => {
                    merged.push(self.tracked[a]);
                    a += 1;
                }
                std::cmp::Ordering::Greater => {
                    let (idx, v) = round.cells[b];
                    merged.push((idx, cum_before(idx) + v));
                    b += 1;
                }
                std::cmp::Ordering::Equal => {
                    merged.push((self.tracked[a].0, self.tracked[a].1 + round.cells[b].1));
                    a += 1;
                    b += 1;
                }
            }
        }
        merged.extend_from_slice(&self.tracked[a..]);
        for &(idx, v) in &round.cells[b..] {
            merged.push((idx, cum_before(idx) + v));
        }
        if merged.len() > self.capacity {
            merged.select_nth_unstable_by(self.capacity - 1, |&x, &y| Self::hotter(x, y));
            merged.truncate(self.capacity);
            merged.sort_unstable_by_key(|&(idx, _)| idx);
        }
        self.tracked = merged;
    }

    /// The top `k` pairs, hottest first, as `(i, j, weight)` with `i < j`.
    pub fn top(&self) -> Vec<(ThreadId, ThreadId, f64)> {
        let mut ranked = self.tracked.clone();
        ranked.sort_unstable_by(|&x, &y| Self::hotter(x, y));
        ranked
            .iter()
            .take(self.k)
            .map(|&(idx, w)| {
                let (i, j) = tri_decode(self.n, idx as usize);
                (ThreadId(i as u32), ThreadId(j as u32), w)
            })
            .collect()
    }
}

/// Count-min sketch over packed pair cells: the long-tail backend of
/// [`TcmBackend::Sketch`](crate::config::TcmBackend). `depth` rows of `width`
/// f64 counters; an update adds to one counter per row (the *standard* — and
/// therefore mergeable — update rule, not the conservative one), a point query
/// takes the min over rows, so estimates are upper bounds with error ≤
/// `2·total/width` per row at ≥ `1 − (1/2)^depth` probability. Memory is
/// `width·depth·8` bytes regardless of N — ~2 MB at the default 65536×4 versus
/// a 67 MB dense triangle at N=4096.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SketchTcm {
    n: usize,
    width: usize,
    depth: usize,
    rows: Vec<f64>,
}

impl SketchTcm {
    /// A zeroed `width × depth` sketch for an `n`-thread map.
    ///
    /// # Panics
    /// If `width` or `depth` is zero.
    pub fn new(n: usize, width: usize, depth: usize) -> Self {
        assert!(width > 0 && depth > 0, "sketch dimensions must be nonzero");
        SketchTcm {
            n,
            width,
            depth,
            rows: vec![0.0; width * depth],
        }
    }

    /// Number of threads of the underlying map.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Counters per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of hash rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Resident counter memory in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.rows.len() * 8
    }

    /// Row-local slot of a packed cell: a fixed-seed splitmix64 finalizer over
    /// `(cell, row)`, so two sketches of equal shape always agree (which is what
    /// makes [`SketchTcm::merge`] sound).
    #[inline]
    fn slot(&self, row: usize, idx: u32) -> usize {
        let mut x = (idx as u64) ^ ((row as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x % self.width as u64) as usize
    }

    /// Accrue `v` onto cell `idx` (one counter per row).
    #[inline]
    pub fn add(&mut self, idx: u32, v: f64) {
        for row in 0..self.depth {
            let s = self.slot(row, idx);
            self.rows[row * self.width + s] += v;
        }
    }

    /// Point estimate of cell `idx`: min over rows (never underestimates).
    #[inline]
    pub fn estimate(&self, idx: u32) -> f64 {
        let mut est = f64::INFINITY;
        for row in 0..self.depth {
            let s = self.slot(row, idx);
            est = est.min(self.rows[row * self.width + s]);
        }
        est
    }

    /// Estimated shared volume between threads `i` and `j` (0 on the diagonal).
    pub fn at(&self, i: ThreadId, j: ThreadId) -> f64 {
        if i == j {
            return 0.0;
        }
        let (a, b) = if i.index() < j.index() {
            (i.index(), j.index())
        } else {
            (j.index(), i.index())
        };
        self.estimate(tri_index(self.n, a, b) as u32)
    }

    /// Fold one round's sparse map into the sketch.
    pub fn fold_round(&mut self, round: &SparseTcm) {
        for &(idx, v) in round.cells() {
            self.add(idx, v);
        }
    }

    /// Decay every counter (linear counters commute with scaling).
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.rows {
            *v *= factor;
        }
    }

    /// Merge another sketch (elementwise counter sum — exact for the standard
    /// update rule, since both sides hash identically).
    ///
    /// # Panics
    /// If the shapes differ.
    pub fn merge(&mut self, other: &SketchTcm) {
        assert_eq!((self.n, self.width, self.depth), (other.n, other.width, other.depth));
        for (a, b) in self.rows.iter_mut().zip(&other.rows) {
            *a += b;
        }
    }
}

/// What one [`TcmBuilder::close_round`] produced.
#[derive(Debug, Clone)]
pub struct RoundSummary {
    /// Distinct objects organized this round (the `M` of the `O(M·N²)` cost).
    pub objects: usize,
    /// This round's own correlation map.
    pub tcm: Tcm,
    /// This round's per-class maps (input to the adaptive controller), sparse: only
    /// the pairs each class touched.
    pub per_class: HashMap<ClassId, SparseTcm>,
}

/// Per-class round scratch: a dense packed-triangle accumulator plus a touched-cell
/// bitmap and list, all capacity-retained across rounds so accrual never allocates.
#[derive(Debug)]
struct ClassScratch {
    cells: Vec<f64>,
    touched: Vec<u64>,
    touched_idx: Vec<u32>,
}

impl ClassScratch {
    fn new(n: usize) -> Self {
        let len = tri_len(n);
        ClassScratch {
            cells: vec![0.0; len],
            touched: vec![0; len.div_ceil(64)],
            touched_idx: Vec::new(),
        }
    }

    #[inline]
    fn accrue(&mut self, idx: u32, bytes: f64) {
        let (w, bit) = ((idx / 64) as usize, 1u64 << (idx % 64));
        if self.touched[w] & bit == 0 {
            self.touched[w] |= bit;
            self.touched_idx.push(idx);
        }
        self.cells[idx as usize] += bytes;
    }

    /// Drain this round's touched cells into a sorted [`SparseTcm`], resetting the
    /// scratch (capacity kept) for the next round.
    fn drain_sorted(&mut self, n: usize) -> SparseTcm {
        self.touched_idx.sort_unstable();
        let cells: Vec<(u32, f64)> = self
            .touched_idx
            .iter()
            .map(|&i| (i, self.cells[i as usize]))
            .collect();
        for &i in &self.touched_idx {
            self.cells[i as usize] = 0.0;
            self.touched[(i / 64) as usize] = 0;
        }
        self.touched_idx.clear();
        SparseTcm::from_sorted_cells(n, cells)
    }
}

/// Builds a [`Tcm`] (and per-class sub-maps) from a stream of OALs.
///
/// Round-pending objects live in a flat arena — a slot map plus parallel `class` /
/// `bytes` / thread-bitset columns — iterated in first-touch order at round close, so
/// per-cell f64 accrual order is deterministic for a given ingestion order.
#[derive(Debug)]
pub struct TcmBuilder {
    n_threads: usize,
    /// Bitset words per object: `⌈n_threads/64⌉`.
    words: usize,
    tcm: Tcm,
    per_class: HashMap<ClassId, Tcm>,
    // Round-local object index; all columns retain capacity across rounds.
    slots: HashMap<ObjectId, u32>,
    obj_class: Vec<ClassId>,
    obj_bytes: Vec<f64>,
    obj_bits: Vec<u64>,
    // Per-class round scratch, reused across rounds.
    class_slots: HashMap<ClassId, usize>,
    class_scratch: Vec<ClassScratch>,
    intervals_ingested: u64,
    rounds_closed: u64,
    decay: f64,
}

impl TcmBuilder {
    /// Builder for `n_threads` threads.
    pub fn new(n_threads: usize) -> Self {
        TcmBuilder {
            n_threads,
            words: n_threads.div_ceil(64).max(1),
            tcm: Tcm::new(n_threads),
            per_class: HashMap::new(),
            slots: HashMap::new(),
            obj_class: Vec::new(),
            obj_bytes: Vec::new(),
            obj_bits: Vec::new(),
            class_slots: HashMap::new(),
            class_scratch: Vec::new(),
            intervals_ingested: 0,
            rounds_closed: 0,
            decay: 1.0,
        }
    }

    /// Exponentially decay the cumulative map at every round close (`1.0` = never
    /// forget, the default). A windowed map tracks *current* sharing, which is what a
    /// dynamic balancer should steer by when "sharing patterns could change
    /// dynamically" (the paper's motivating case for adaptivity).
    pub fn set_decay(&mut self, decay: f64) {
        assert!((0.0..=1.0).contains(&decay), "decay must be in [0, 1]");
        self.decay = decay;
    }

    /// Ingest one OAL: the `O(M·N)` reorganization step.
    pub fn ingest(&mut self, oal: &Oal) {
        self.ingest_entries(oal.thread, &oal.entries);
    }

    /// Ingest a borrowed OAL slice (what sharded reducers receive from the split
    /// scratch) without constructing an owned [`Oal`].
    pub fn ingest_view(&mut self, oal: OalRef<'_>) {
        self.ingest_entries(oal.thread, oal.entries);
    }

    fn ingest_entries(&mut self, thread: ThreadId, entries: &[OalEntry]) {
        self.intervals_ingested += 1;
        let t = thread.index();
        debug_assert!(t < self.n_threads);
        let (tw, tbit) = (t / 64, 1u64 << (t % 64));
        for e in entries {
            let slot = match self.slots.entry(e.obj) {
                std::collections::hash_map::Entry::Occupied(o) => *o.get(),
                std::collections::hash_map::Entry::Vacant(v) => {
                    let s = self.obj_class.len() as u32;
                    v.insert(s);
                    self.obj_class.push(e.class);
                    self.obj_bytes.push(0.0);
                    self.obj_bits.resize(self.obj_bits.len() + self.words, 0);
                    s
                }
            } as usize;
            self.obj_bytes[slot] = self.obj_bytes[slot].max(e.bytes as f64);
            self.obj_bits[slot * self.words + tw] |= tbit;
        }
    }

    /// Fold the round's per-object bitsets into the map: the `O(M·N²)` accrual step,
    /// now `O(M · pairs)` over set bits via trailing-zeros word iteration.
    ///
    /// Returns the round's own (non-cumulative) maps — the "successive correlation
    /// matrices" the adaptive controller compares — plus the object count.
    pub fn close_round(&mut self) -> RoundSummary {
        let summary = self.close_round_detached();
        self.fold_round(&summary);
        summary
    }

    /// Compute this round's maps and reset the round-local index **without** folding
    /// into the cumulative map. Shards use this to produce partial maps that a driver
    /// merges in shard-index order; pair it with [`TcmBuilder::fold_round`].
    pub fn close_round_detached(&mut self) -> RoundSummary {
        let n = self.n_threads;
        let words = self.words;
        let m = self.obj_class.len();
        let mut round_tcm = Tcm::new(n);
        {
            let rt = round_tcm.data_mut();
            let obj_class = &self.obj_class;
            let obj_bytes = &self.obj_bytes;
            let obj_bits = &self.obj_bits;
            let class_slots = &mut self.class_slots;
            let class_scratch = &mut self.class_scratch;
            let mut last_class: Option<(ClassId, usize)> = None;
            for slot in 0..m {
                let bits = &obj_bits[slot * words..(slot + 1) * words];
                let pop: u32 = bits.iter().map(|w| w.count_ones()).sum();
                if pop < 2 {
                    continue;
                }
                let bytes = obj_bytes[slot];
                let class = obj_class[slot];
                let cs_idx = match last_class {
                    Some((c, i)) if c == class => i,
                    _ => {
                        let i = *class_slots.entry(class).or_insert_with(|| {
                            class_scratch.push(ClassScratch::new(n));
                            class_scratch.len() - 1
                        });
                        last_class = Some((class, i));
                        i
                    }
                };
                let scratch = &mut class_scratch[cs_idx];
                // Walk ordered pairs (a, b), a < b, of the set bits.
                for wi in 0..words {
                    let mut wa = bits[wi];
                    while wa != 0 {
                        let a = wi * 64 + wa.trailing_zeros() as usize;
                        wa &= wa - 1;
                        // Row `a` of the packed triangle starts at a·(2n−a−1)/2 and
                        // holds columns a+1..n, so cell (a, b) sits at start + b−a−1.
                        let row_base = (a * (2 * n - a - 1) / 2).wrapping_sub(a + 1);
                        let mut wj = wi;
                        let mut wb = wa; // bits above `a` in the same word
                        loop {
                            while wb != 0 {
                                let b = wj * 64 + wb.trailing_zeros() as usize;
                                wb &= wb - 1;
                                let idx = row_base.wrapping_add(b);
                                rt[idx] += bytes;
                                scratch.accrue(idx as u32, bytes);
                            }
                            wj += 1;
                            if wj == words {
                                break;
                            }
                            wb = bits[wj];
                        }
                    }
                }
            }
        }
        // Reset the round-local index, keeping every buffer's capacity.
        self.slots.clear();
        self.obj_class.clear();
        self.obj_bytes.clear();
        self.obj_bits.clear();
        // Drain per-class scratches into sorted sparse maps.
        let mut per_class = HashMap::with_capacity(self.class_slots.len());
        for (&class, &idx) in &self.class_slots {
            let sparse = self.class_scratch[idx].drain_sorted(n);
            if !sparse.is_empty() {
                per_class.insert(class, sparse);
            }
        }
        RoundSummary {
            objects: m,
            tcm: round_tcm,
            per_class,
        }
    }

    /// Fold a round's maps into the cumulative state (decay, merge, round counter).
    /// [`TcmBuilder::close_round`] = [`TcmBuilder::close_round_detached`] + this.
    pub fn fold_round(&mut self, summary: &RoundSummary) {
        if self.decay < 1.0 {
            self.tcm.scale(self.decay);
            for map in self.per_class.values_mut() {
                map.scale(self.decay);
            }
        }
        self.tcm.merge(&summary.tcm);
        for (class, sparse) in &summary.per_class {
            self.per_class
                .entry(*class)
                .or_insert_with(|| Tcm::new(self.n_threads))
                .merge_sparse(sparse);
        }
        self.rounds_closed += 1;
    }

    /// The accumulated global map.
    pub fn tcm(&self) -> &Tcm {
        &self.tcm
    }

    /// The accumulated per-class maps.
    pub fn per_class(&self) -> &HashMap<ClassId, Tcm> {
        &self.per_class
    }

    /// Intervals ingested so far.
    pub fn intervals_ingested(&self) -> u64 {
        self.intervals_ingested
    }

    /// Rounds closed so far.
    pub fn rounds_closed(&self) -> u64 {
        self.rounds_closed
    }

    /// Objects pending in the current (unclosed) round.
    pub fn pending_objects(&self) -> usize {
        self.obj_class.len()
    }
}

pub mod reference {
    //! The seed's scalar TCM reduction, retained as the exactness oracle for the
    //! bitset/triangular/parallel pipeline and as the baseline of the `tcm_reduce`
    //! bench: dense N×N matrices, a `Vec<ThreadId>` with a linear-scan dedup per
    //! object, a fresh `HashMap` + dense per-class maps every round.
    //!
    //! Cell values equal the optimized pipeline's bit-for-bit whenever per-object
    //! bytes are integer-valued f64 with per-cell sums below 2⁵³ (always true of OAL
    //! streams, whose bytes are `u64` casts) — addition of such values is exact, so
    //! accrual order cannot perturb the result.

    use std::collections::HashMap;

    use jessy_gos::{ClassId, ObjectId};
    use jessy_net::ThreadId;

    use crate::oal::Oal;

    /// The seed's dense row-major symmetric matrix (both triangle halves stored and
    /// written).
    #[derive(Debug, Clone, PartialEq)]
    pub struct DenseTcm {
        n: usize,
        data: Vec<f64>,
    }

    impl DenseTcm {
        /// Zeroed dense map for `n` threads.
        pub fn new(n: usize) -> Self {
            DenseTcm {
                n,
                data: vec![0.0; n * n],
            }
        }

        /// Number of threads.
        pub fn n(&self) -> usize {
            self.n
        }

        /// Shared volume between threads `i` and `j`.
        pub fn at(&self, i: ThreadId, j: ThreadId) -> f64 {
            self.data[i.index() * self.n + j.index()]
        }

        /// Accrue `bytes` to both halves of the (i, j) pair.
        pub fn add_pair(&mut self, i: ThreadId, j: ThreadId, bytes: f64) {
            if i == j {
                return;
            }
            self.data[i.index() * self.n + j.index()] += bytes;
            self.data[j.index() * self.n + i.index()] += bytes;
        }

        /// Merge another dense map into this one.
        pub fn merge(&mut self, other: &DenseTcm) {
            assert_eq!(self.n, other.n);
            for (a, b) in self.data.iter_mut().zip(&other.data) {
                *a += b;
            }
        }

        /// Scale every entry.
        pub fn scale(&mut self, k: f64) {
            for v in &mut self.data {
                *v *= k;
            }
        }

        /// Sum of all entries (2× the pairwise total, diagonal zero).
        pub fn total(&self) -> f64 {
            self.data.iter().sum()
        }

        /// Raw dense row-major data.
        pub fn raw(&self) -> &[f64] {
            &self.data
        }
    }

    #[derive(Debug, Default, Clone)]
    struct ObjAccum {
        bytes: f64,
        threads: Vec<ThreadId>,
    }

    /// One reference round's output.
    #[derive(Debug, Clone)]
    pub struct ScalarRoundSummary {
        /// Distinct objects organized this round.
        pub objects: usize,
        /// The round's own dense map.
        pub tcm: DenseTcm,
        /// The round's dense per-class maps.
        pub per_class: HashMap<ClassId, DenseTcm>,
    }

    /// The seed's scalar [`TcmBuilder`](crate::TcmBuilder), verbatim.
    #[derive(Debug)]
    pub struct ScalarTcmBuilder {
        n_threads: usize,
        tcm: DenseTcm,
        per_class: HashMap<ClassId, DenseTcm>,
        round_objects: HashMap<ObjectId, (ClassId, ObjAccum)>,
        decay: f64,
    }

    impl ScalarTcmBuilder {
        /// Reference builder for `n_threads` threads.
        pub fn new(n_threads: usize) -> Self {
            ScalarTcmBuilder {
                n_threads,
                tcm: DenseTcm::new(n_threads),
                per_class: HashMap::new(),
                round_objects: HashMap::new(),
                decay: 1.0,
            }
        }

        /// Decay factor applied to the cumulative map at every round close.
        pub fn set_decay(&mut self, decay: f64) {
            assert!((0.0..=1.0).contains(&decay));
            self.decay = decay;
        }

        /// The seed's reorganization step: `Vec<ThreadId>` per object with a
        /// linear-scan dedup.
        pub fn ingest(&mut self, oal: &Oal) {
            for e in &oal.entries {
                let (_, accum) = self
                    .round_objects
                    .entry(e.obj)
                    .or_insert_with(|| (e.class, ObjAccum::default()));
                accum.bytes = accum.bytes.max(e.bytes as f64);
                if !accum.threads.contains(&oal.thread) {
                    accum.threads.push(oal.thread);
                }
            }
        }

        /// The seed's accrual step: nested pair loops over each object's thread list
        /// into dense round + per-class maps, then decay-and-merge.
        pub fn close_round(&mut self) -> ScalarRoundSummary {
            let objects = std::mem::take(&mut self.round_objects);
            let m = objects.len();
            let mut round_tcm = DenseTcm::new(self.n_threads);
            let mut round_per_class: HashMap<ClassId, DenseTcm> = HashMap::new();
            for (_obj, (class, accum)) in objects {
                if accum.threads.len() < 2 {
                    continue;
                }
                let class_tcm = round_per_class
                    .entry(class)
                    .or_insert_with(|| DenseTcm::new(self.n_threads));
                for a in 0..accum.threads.len() {
                    for b in (a + 1)..accum.threads.len() {
                        round_tcm.add_pair(accum.threads[a], accum.threads[b], accum.bytes);
                        class_tcm.add_pair(accum.threads[a], accum.threads[b], accum.bytes);
                    }
                }
            }
            if self.decay < 1.0 {
                self.tcm.scale(self.decay);
                for map in self.per_class.values_mut() {
                    map.scale(self.decay);
                }
            }
            self.tcm.merge(&round_tcm);
            for (class, map) in &round_per_class {
                self.per_class
                    .entry(*class)
                    .or_insert_with(|| DenseTcm::new(self.n_threads))
                    .merge(map);
            }
            ScalarRoundSummary {
                objects: m,
                tcm: round_tcm,
                per_class: round_per_class,
            }
        }

        /// The accumulated dense global map.
        pub fn tcm(&self) -> &DenseTcm {
            &self.tcm
        }

        /// The accumulated dense per-class maps.
        pub fn per_class(&self) -> &HashMap<ClassId, DenseTcm> {
            &self.per_class
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oal::OalEntry;

    fn entry(obj: u32, bytes: u64) -> OalEntry {
        OalEntry {
            obj: ObjectId(obj),
            class: ClassId(0),
            bytes,
        }
    }

    fn oal(thread: u32, entries: Vec<OalEntry>) -> Oal {
        Oal {
            thread: ThreadId(thread),
            interval: 0,
            entries,
        }
    }

    fn oal_at(thread: u32, interval: u64, entries: Vec<OalEntry>) -> Oal {
        Oal {
            thread: ThreadId(thread),
            interval,
            entries,
        }
    }

    #[test]
    fn tcm_is_symmetric_with_zero_diagonal() {
        let mut t = Tcm::new(3);
        t.add_pair(ThreadId(0), ThreadId(2), 10.0);
        t.add_pair(ThreadId(1), ThreadId(1), 99.0);
        assert_eq!(t.at(ThreadId(0), ThreadId(2)), 10.0);
        assert_eq!(t.at(ThreadId(2), ThreadId(0)), 10.0);
        assert_eq!(t.at(ThreadId(1), ThreadId(1)), 0.0, "diagonal stays zero");
        assert_eq!(t.total(), 20.0);
    }

    #[test]
    fn triangular_packing_indexes_every_pair_once() {
        let n = 7;
        let mut seen = vec![false; tri_len(n)];
        for i in 0..n {
            for j in (i + 1)..n {
                let idx = tri_index(n, i, j);
                assert!(!seen[idx], "({i},{j}) collides");
                seen[idx] = true;
                assert_eq!(tri_decode(n, idx), (i, j));
            }
        }
        assert!(seen.iter().all(|&s| s), "packing is dense");
    }

    #[test]
    fn builder_accrues_common_objects_only() {
        let mut b = TcmBuilder::new(3);
        // Threads 0 and 1 share object 7; thread 2 touches only object 8.
        b.ingest(&oal(0, vec![entry(7, 100), entry(8, 50)]));
        b.ingest(&oal(1, vec![entry(7, 100)]));
        b.ingest(&oal(2, vec![entry(9, 64)]));
        assert_eq!(b.pending_objects(), 3);
        let summary = b.close_round();
        assert_eq!(summary.objects, 3);
        assert_eq!(
            summary.tcm.at(ThreadId(0), ThreadId(1)),
            100.0,
            "round map matches cumulative map after one round"
        );
        let t = b.tcm();
        assert_eq!(t.at(ThreadId(0), ThreadId(1)), 100.0);
        assert_eq!(t.at(ThreadId(0), ThreadId(2)), 0.0);
        assert_eq!(t.at(ThreadId(1), ThreadId(2)), 0.0);
    }

    #[test]
    fn decayed_builder_forgets_old_rounds() {
        let mut b = TcmBuilder::new(2);
        b.set_decay(0.5);
        // Round 1: heavy sharing. Rounds 2-4: none.
        b.ingest(&oal(0, vec![entry(1, 80)]));
        b.ingest(&oal(1, vec![entry(1, 80)]));
        b.close_round();
        assert_eq!(b.tcm().at(ThreadId(0), ThreadId(1)), 80.0);
        for _ in 0..3 {
            b.close_round();
        }
        assert_eq!(b.tcm().at(ThreadId(0), ThreadId(1)), 10.0, "80 * 0.5^3");
        // New sharing dominates the faded history.
        b.ingest(&oal(0, vec![entry(2, 40)]));
        b.ingest(&oal(1, vec![entry(2, 40)]));
        b.close_round();
        assert_eq!(b.tcm().at(ThreadId(0), ThreadId(1)), 45.0, "80*0.5^4 + 40");
    }

    #[test]
    fn repeated_intervals_accumulate_across_rounds() {
        let mut b = TcmBuilder::new(2);
        for _ in 0..3 {
            b.ingest(&oal(0, vec![entry(1, 10)]));
            b.ingest(&oal(1, vec![entry(1, 10)]));
            b.close_round();
        }
        assert_eq!(b.tcm().at(ThreadId(0), ThreadId(1)), 30.0);
        assert_eq!(b.rounds_closed(), 3);
        assert_eq!(b.intervals_ingested(), 6);
    }

    #[test]
    fn multi_interval_duplicate_logging_counts_once() {
        // A thread logging the same object in several intervals of one round must
        // count once per pair — with bitsets the dedup is structural (same bit).
        let mut b = TcmBuilder::new(3);
        b.ingest(&oal_at(0, 0, vec![entry(7, 100)]));
        b.ingest(&oal_at(0, 1, vec![entry(7, 100)]));
        b.ingest(&oal_at(0, 2, vec![entry(7, 100)]));
        b.ingest(&oal_at(1, 1, vec![entry(7, 100)]));
        let summary = b.close_round();
        assert_eq!(
            summary.tcm.at(ThreadId(0), ThreadId(1)),
            100.0,
            "pair accrues once despite thread 0 logging the object in 3 intervals"
        );
        assert_eq!(b.tcm().at(ThreadId(0), ThreadId(1)), 100.0);
    }

    #[test]
    fn three_way_sharing_hits_all_pairs() {
        let mut b = TcmBuilder::new(3);
        for t in 0..3 {
            b.ingest(&oal(t, vec![entry(5, 8)]));
        }
        b.close_round();
        for i in 0..3u32 {
            for j in 0..3u32 {
                let expect = if i == j { 0.0 } else { 8.0 };
                assert_eq!(b.tcm().at(ThreadId(i), ThreadId(j)), expect);
            }
        }
    }

    #[test]
    fn wide_bitsets_cross_word_boundaries() {
        // 130 threads = 3 words; sharers straddle all of them.
        let mut b = TcmBuilder::new(130);
        let sharers = [0u32, 1, 63, 64, 65, 127, 128, 129];
        for &t in &sharers {
            b.ingest(&oal(t, vec![entry(42, 16)]));
        }
        let summary = b.close_round();
        for (ai, &a) in sharers.iter().enumerate() {
            for &bt in &sharers[ai + 1..] {
                assert_eq!(
                    summary.tcm.at(ThreadId(a), ThreadId(bt)),
                    16.0,
                    "pair ({a},{bt})"
                );
            }
        }
        let expected_pairs = sharers.len() * (sharers.len() - 1) / 2;
        assert_eq!(summary.tcm.total(), (expected_pairs * 2 * 16) as f64);
    }

    #[test]
    fn per_class_submaps_split_contributions() {
        let mut b = TcmBuilder::new(2);
        let c1 = OalEntry {
            obj: ObjectId(1),
            class: ClassId(1),
            bytes: 10,
        };
        let c2 = OalEntry {
            obj: ObjectId(2),
            class: ClassId(2),
            bytes: 20,
        };
        b.ingest(&oal(0, vec![c1, c2]));
        b.ingest(&oal(1, vec![c1, c2]));
        let summary = b.close_round();
        assert_eq!(b.tcm().at(ThreadId(0), ThreadId(1)), 30.0);
        assert_eq!(b.per_class()[&ClassId(1)].at(ThreadId(0), ThreadId(1)), 10.0);
        assert_eq!(b.per_class()[&ClassId(2)].at(ThreadId(0), ThreadId(1)), 20.0);
        // The round's sparse maps carry only the touched pair.
        assert_eq!(summary.per_class[&ClassId(1)].len(), 1);
        assert_eq!(
            summary.per_class[&ClassId(1)].at(ThreadId(0), ThreadId(1)),
            10.0
        );
    }

    #[test]
    fn ingest_order_does_not_matter() {
        // TCM(OALs) must be permutation-invariant within a round.
        let oals = vec![
            oal(0, vec![entry(1, 4), entry(2, 8)]),
            oal(1, vec![entry(2, 8)]),
            oal(2, vec![entry(1, 4), entry(2, 8)]),
        ];
        let mut fwd = TcmBuilder::new(3);
        for o in &oals {
            fwd.ingest(o);
        }
        fwd.close_round();
        let mut rev = TcmBuilder::new(3);
        for o in oals.iter().rev() {
            rev.ingest(o);
        }
        rev.close_round();
        assert_eq!(fwd.tcm().raw(), rev.tcm().raw());
    }

    #[test]
    fn capacity_is_retained_across_rounds() {
        let mut b = TcmBuilder::new(4);
        for t in 0..4u32 {
            b.ingest(&oal(t, (0..100).map(|o| entry(o, 8)).collect()));
        }
        b.close_round();
        let bits_cap = b.obj_bits.capacity();
        let class_cap = b.obj_class.capacity();
        assert!(bits_cap >= 100 && class_cap >= 100);
        for t in 0..4u32 {
            b.ingest(&oal(t, (0..100).map(|o| entry(o, 8)).collect()));
        }
        b.close_round();
        assert_eq!(b.obj_bits.capacity(), bits_cap, "bitset arena reused");
        assert_eq!(b.obj_class.capacity(), class_cap, "class column reused");
    }

    #[test]
    fn matches_scalar_reference_exactly() {
        let mut fast = TcmBuilder::new(8);
        let mut slow = reference::ScalarTcmBuilder::new(8);
        let stream: Vec<Oal> = (0..40u32)
            .map(|k| {
                oal(
                    k % 8,
                    vec![
                        entry(k % 13, (k as u64 + 1) * 8),
                        entry((k * 3) % 13, 64),
                        OalEntry {
                            obj: ObjectId(100 + k % 5),
                            class: ClassId(2),
                            bytes: 24,
                        },
                    ],
                )
            })
            .collect();
        for o in &stream {
            fast.ingest(o);
            slow.ingest(o);
        }
        let fs = fast.close_round();
        let ss = slow.close_round();
        assert_eq!(fs.objects, ss.objects);
        for i in 0..8u32 {
            for j in 0..8u32 {
                assert_eq!(
                    fast.tcm().at(ThreadId(i), ThreadId(j)),
                    slow.tcm().at(ThreadId(i), ThreadId(j)),
                    "cumulative ({i},{j})"
                );
            }
        }
        assert_eq!(fs.per_class.len(), ss.per_class.len());
        for (class, sparse) in &fs.per_class {
            let dense = &ss.per_class[class];
            for i in 0..8u32 {
                for j in 0..8u32 {
                    assert_eq!(
                        sparse.at(ThreadId(i), ThreadId(j)),
                        dense.at(ThreadId(i), ThreadId(j)),
                        "class {class:?} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn sparse_tcm_merges_and_decodes() {
        let t = |i| ThreadId(i);
        let mut a = SparseTcm::from_pairs(4, &[(t(0), t(1), 5.0), (t(2), t(3), 7.0)]);
        let b = SparseTcm::from_pairs(4, &[(t(1), t(0), 3.0), (t(1), t(2), 2.0)]);
        a.merge(&b);
        assert_eq!(a.at(t(0), t(1)), 8.0);
        assert_eq!(a.at(t(1), t(2)), 2.0);
        assert_eq!(a.at(t(2), t(3)), 7.0);
        assert_eq!(a.at(t(0), t(3)), 0.0);
        assert_eq!(a.len(), 3);
        assert_eq!(a.total(), 2.0 * (8.0 + 2.0 + 7.0));
        let pairs: Vec<_> = a.iter().collect();
        assert_eq!(pairs[0], (t(0), t(1), 8.0));
        assert!(pairs.windows(2).all(|w| w[0].0 <= w[1].0), "sorted by row");
        assert_eq!(a.to_dense().at(t(1), t(2)), 2.0);
    }

    #[test]
    fn csv_round_trips_through_parsing() {
        let mut t = Tcm::new(3);
        t.add_pair(ThreadId(0), ThreadId(2), 12.5);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "t0,t1,t2");
        let cell: f64 = lines[1].split(',').nth(2).unwrap().parse().unwrap();
        assert_eq!(cell, 12.5);
        let diag: f64 = lines[2].split(',').nth(1).unwrap().parse().unwrap();
        assert_eq!(diag, 0.0);
        // Symmetric lower half streams from the same packed cell.
        let mirror: f64 = lines[3].split(',').next().unwrap().parse().unwrap();
        assert_eq!(mirror, 12.5);
    }

    #[test]
    fn ascii_heatmap_shape() {
        let mut t = Tcm::new(2);
        t.add_pair(ThreadId(0), ThreadId(1), 5.0);
        let art = t.ascii_heatmap();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.len() == 2));
        assert_eq!(lines[0].as_bytes()[0], b' ', "zero diagonal renders blank");
        assert_eq!(lines[0].as_bytes()[1], b'@', "max renders darkest");
    }

    #[test]
    fn ascii_heatmap_downsamples_large_maps() {
        let n = 200; // step = ⌈200/64⌉ = 4 ⇒ a 50×50 grid
        let mut t = Tcm::new(n);
        t.add_pair(ThreadId(10), ThreadId(190), 64.0);
        let art = t.ascii_heatmap();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 50, "4096-class maps render a bounded grid");
        assert!(lines.iter().all(|l| l.len() == 50));
        // The hot pair lands in bucket (10/4, 190/4) = (2, 47) and its mirror.
        assert_eq!(lines[2].as_bytes()[47], b'@');
        assert_eq!(lines[47].as_bytes()[2], b'@');
    }

    #[test]
    fn sparse_export_round_trips() {
        let mut t = Tcm::new(5);
        t.add_pair(ThreadId(0), ThreadId(3), 12.0);
        t.add_pair(ThreadId(2), ThreadId(4), 7.5);
        let s = t.to_sparse();
        assert_eq!(s.len(), 2);
        assert_eq!(s.to_dense(), t);
        let csv = t.to_csv_sparse();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "i,j,bytes");
        assert_eq!(lines.len(), 3, "only touched pairs are emitted");
        assert!(lines.contains(&"0,3,12"));
        assert!(lines.contains(&"2,4,7.5"));
    }

    #[test]
    fn merge_with_matches_merge_and_reuses_buffers() {
        let t = |i| ThreadId(i);
        let base = SparseTcm::from_pairs(6, &[(t(0), t(1), 5.0), (t(2), t(3), 7.0)]);
        let delta = SparseTcm::from_pairs(6, &[(t(0), t(1), 3.0), (t(4), t(5), 2.0)]);
        let mut plain = base.clone();
        plain.merge(&delta);
        let mut scratched = base.clone();
        let mut scratch = MergeScratch::new();
        scratched.merge_with(&delta, &mut scratch);
        assert_eq!(plain, scratched);
        assert!(scratch.capacity() > 0, "union staged through the scratch");
        // One more merge settles both buffers at the stable union size; from
        // then on a steady-state merge must not grow either buffer.
        scratched.merge_with(&delta, &mut scratch);
        let cap_before = (scratch.capacity(), scratched.cells.capacity());
        for _ in 0..8 {
            scratched.merge_with(&delta, &mut scratch);
        }
        let cap_after = (scratch.capacity(), scratched.cells.capacity());
        assert_eq!(cap_before, cap_after, "no per-merge growth for a stable union");
        assert_eq!(scratched.at(t(0), t(1)), 5.0 + 10.0 * 3.0);
    }

    #[test]
    fn topk_matches_brute_force_on_dense_cumulative() {
        // Deterministic pseudo-random rounds; the tracker fed exact cumulative
        // lookups must agree with a full sort of the dense map after every round.
        let n = 24;
        let mut cum = Tcm::new(n);
        let mut top = TopKPairs::new(n, 5);
        let mut h = 0x1234_5678_u64;
        let mut mix = move || {
            h ^= h << 13;
            h ^= h >> 7;
            h ^= h << 17;
            h
        };
        for _ in 0..20 {
            let mut pairs = Vec::new();
            for _ in 0..40 {
                let i = (mix() % n as u64) as u32;
                let j = (mix() % n as u64) as u32;
                let v = (mix() % 512 + 1) as f64;
                pairs.push((ThreadId(i), ThreadId(j), v));
            }
            let round = SparseTcm::from_pairs(n, &pairs);
            top.observe_round(&round, |idx| cum.raw()[idx as usize]);
            cum.merge_sparse(&round);
            let mut all: Vec<(u32, f64)> = cum
                .raw()
                .iter()
                .enumerate()
                .filter(|&(_, v)| *v > 0.0)
                .map(|(i, &v)| (i as u32, v))
                .collect();
            all.sort_unstable_by(|&x, &y| TopKPairs::hotter(x, y));
            let expect: Vec<(u32, f64)> = all.into_iter().take(5).collect();
            let got: Vec<(u32, f64)> = top
                .top()
                .iter()
                .map(|&(i, j, w)| (tri_index(n, i.index(), j.index()) as u32, w))
                .collect();
            assert_eq!(got, expect, "top-k view drifted from the dense truth");
        }
        assert!(top.tracked_len() <= 20, "candidate set stays O(k)");
    }

    #[test]
    fn topk_decays_in_lockstep() {
        let n = 4;
        let mut cum = Tcm::new(n);
        let mut top = TopKPairs::new(n, 2);
        let round = SparseTcm::from_pairs(n, &[(ThreadId(0), ThreadId(1), 100.0)]);
        top.observe_round(&round, |idx| cum.raw()[idx as usize]);
        cum.merge_sparse(&round);
        cum.scale(0.5);
        top.scale(0.5);
        let later = SparseTcm::from_pairs(n, &[(ThreadId(2), ThreadId(3), 60.0)]);
        top.observe_round(&later, |idx| cum.raw()[idx as usize]);
        cum.merge_sparse(&later);
        let got = top.top();
        assert_eq!(got[0], (ThreadId(2), ThreadId(3), 60.0));
        assert_eq!(got[1], (ThreadId(0), ThreadId(1), 50.0));
    }

    #[test]
    fn sketch_never_underestimates_and_merges_exactly() {
        let n = 64;
        let mut one = SketchTcm::new(n, 256, 4);
        let mut left = SketchTcm::new(n, 256, 4);
        let mut right = SketchTcm::new(n, 256, 4);
        let mut exact: HashMap<u32, f64> = HashMap::new();
        let mut h = 99u64;
        let mut mix = move || {
            h ^= h << 13;
            h ^= h >> 7;
            h ^= h << 17;
            h
        };
        for k in 0..500 {
            let idx = (mix() % tri_len(n) as u64) as u32;
            let v = (mix() % 128 + 1) as f64;
            one.add(idx, v);
            if k % 2 == 0 {
                left.add(idx, v);
            } else {
                right.add(idx, v);
            }
            *exact.entry(idx).or_insert(0.0) += v;
        }
        for (&idx, &truth) in &exact {
            assert!(one.estimate(idx) >= truth, "count-min must upper-bound");
        }
        left.merge(&right);
        assert_eq!(left, one, "standard-update sketches merge exactly");
        one.scale(0.25);
        let (&some_idx, &some_truth) = exact.iter().next().unwrap();
        assert!(one.estimate(some_idx) >= 0.25 * some_truth);
    }

    #[test]
    fn sketch_at_wide_width_is_near_exact() {
        // A sparse workload against the default-ish width: few collisions, so the
        // hot cells read back (almost always) exactly.
        let n = 128;
        let mut sk = SketchTcm::new(n, 1 << 14, 4);
        let mut t = Tcm::new(n);
        for i in 0..40u32 {
            let (a, b) = (ThreadId(i), ThreadId(i + 60));
            let v = ((i + 1) * 64) as f64;
            t.add_pair(a, b, v);
            sk.add(tri_index(n, a.index(), b.index()) as u32, v);
        }
        for i in 0..40u32 {
            let (a, b) = (ThreadId(i), ThreadId(i + 60));
            assert_eq!(sk.at(a, b), t.at(a, b), "no collisions at this density");
        }
        assert!(sk.memory_bytes() < tri_len(4096) * 8, "sketch ≪ dense at production N");
    }
}
