//! The Thread Correlation Map (Section II.A).
//!
//! An N×N symmetric histogram: entry *(i, j)* accumulates the bytes of objects threads
//! *i* and *j* accessed in common. The central coordinator builds it from OALs in two
//! steps, exactly as the paper costs them: reorganizing per-thread lists into
//! per-object thread lists (`O(M·N)`), then accruing every pair (`O(M·N²)`).
//!
//! A [`TcmBuilder`] ingests OALs continuously; [`TcmBuilder::close_round`] folds the
//! per-object organization of the round into the map and clears it. Accumulating in
//! rounds (one round = `intervals_per_round` closed intervals) is what lets the
//! adaptive controller compare "successive correlation matrices".

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use jessy_gos::{ClassId, ObjectId};
use jessy_net::ThreadId;

use crate::oal::Oal;

/// A symmetric N×N correlation map with a zero diagonal.
///
/// ```
/// use jessy_core::Tcm;
/// use jessy_net::ThreadId;
///
/// let mut tcm = Tcm::new(3);
/// tcm.add_pair(ThreadId(0), ThreadId(2), 4096.0);
/// assert_eq!(tcm.at(ThreadId(2), ThreadId(0)), 4096.0); // symmetric
/// assert_eq!(tcm.at(ThreadId(1), ThreadId(1)), 0.0);    // zero diagonal
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tcm {
    n: usize,
    data: Vec<f64>,
}

impl Tcm {
    /// Zeroed map for `n` threads.
    pub fn new(n: usize) -> Self {
        Tcm {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Number of threads.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Shared volume between threads `i` and `j`.
    #[inline]
    pub fn at(&self, i: ThreadId, j: ThreadId) -> f64 {
        self.data[i.index() * self.n + j.index()]
    }

    /// Accrue `bytes` to the (i, j) pair (both triangle halves; no-op for i == j).
    pub fn add_pair(&mut self, i: ThreadId, j: ThreadId, bytes: f64) {
        if i == j {
            return;
        }
        self.data[i.index() * self.n + j.index()] += bytes;
        self.data[j.index() * self.n + i.index()] += bytes;
    }

    /// Merge another map into this one.
    pub fn merge(&mut self, other: &Tcm) {
        assert_eq!(self.n, other.n);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Sum of all entries (2× the total pairwise shared volume).
    pub fn total(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Scale every entry (normalization for cross-run comparisons).
    pub fn scale(&mut self, k: f64) {
        for v in &mut self.data {
            *v *= k;
        }
    }

    /// Raw row-major data (for distance metrics and heatmaps).
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// The map as rows (for rendering).
    pub fn rows(&self) -> Vec<Vec<f64>> {
        (0..self.n)
            .map(|i| self.data[i * self.n..(i + 1) * self.n].to_vec())
            .collect()
    }

    /// Serialize as CSV (header `t0,t1,…`, one row per thread) for external plotting
    /// of the Fig. 1 / Fig. 9 data.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(
            &(0..self.n)
                .map(|i| format!("t{i}"))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in self.rows() {
            out.push_str(
                &row.iter()
                    .map(|v| format!("{v}"))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push('\n');
        }
        out
    }

    /// Render an ASCII heatmap (darker glyph = more sharing), for the Fig. 1-style
    /// examples.
    pub fn ascii_heatmap(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let max = self.data.iter().cloned().fold(0.0f64, f64::max);
        let mut out = String::with_capacity(self.n * (self.n + 1));
        for i in 0..self.n {
            for j in 0..self.n {
                let v = self.data[i * self.n + j];
                let idx = if max <= 0.0 {
                    0
                } else {
                    (((v / max) * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1)
                };
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

#[derive(Debug, Default, Clone)]
struct ObjAccum {
    bytes: f64,
    threads: Vec<ThreadId>,
}

/// What one [`TcmBuilder::close_round`] produced.
#[derive(Debug, Clone)]
pub struct RoundSummary {
    /// Distinct objects organized this round (the `M` of the `O(M·N²)` cost).
    pub objects: usize,
    /// This round's own correlation map.
    pub tcm: Tcm,
    /// This round's per-class maps (input to the adaptive controller).
    pub per_class: HashMap<ClassId, Tcm>,
}

/// Builds a [`Tcm`] (and per-class sub-maps) from a stream of OALs.
#[derive(Debug)]
pub struct TcmBuilder {
    n_threads: usize,
    tcm: Tcm,
    per_class: HashMap<ClassId, Tcm>,
    round_objects: HashMap<ObjectId, (ClassId, ObjAccum)>,
    intervals_ingested: u64,
    rounds_closed: u64,
    decay: f64,
}

impl TcmBuilder {
    /// Builder for `n_threads` threads.
    pub fn new(n_threads: usize) -> Self {
        TcmBuilder {
            n_threads,
            tcm: Tcm::new(n_threads),
            per_class: HashMap::new(),
            round_objects: HashMap::new(),
            intervals_ingested: 0,
            rounds_closed: 0,
            decay: 1.0,
        }
    }

    /// Exponentially decay the cumulative map at every round close (`1.0` = never
    /// forget, the default). A windowed map tracks *current* sharing, which is what a
    /// dynamic balancer should steer by when "sharing patterns could change
    /// dynamically" (the paper's motivating case for adaptivity).
    pub fn set_decay(&mut self, decay: f64) {
        assert!((0.0..=1.0).contains(&decay), "decay must be in [0, 1]");
        self.decay = decay;
    }

    /// Ingest one OAL: the `O(M·N)` reorganization step.
    pub fn ingest(&mut self, oal: &Oal) {
        self.intervals_ingested += 1;
        for e in &oal.entries {
            let (_, accum) = self
                .round_objects
                .entry(e.obj)
                .or_insert_with(|| (e.class, ObjAccum::default()));
            accum.bytes = accum.bytes.max(e.bytes as f64);
            if !accum.threads.contains(&oal.thread) {
                accum.threads.push(oal.thread);
            }
        }
    }

    /// Fold the round's per-object lists into the map: the `O(M·N²)` accrual step.
    ///
    /// Returns the round's own (non-cumulative) maps — the "successive correlation
    /// matrices" the adaptive controller compares — plus the object count.
    pub fn close_round(&mut self) -> RoundSummary {
        let objects = std::mem::take(&mut self.round_objects);
        let m = objects.len();
        let mut round_tcm = Tcm::new(self.n_threads);
        let mut round_per_class: HashMap<ClassId, Tcm> = HashMap::new();
        for (_obj, (class, accum)) in objects {
            if accum.threads.len() < 2 {
                continue;
            }
            let class_tcm = round_per_class
                .entry(class)
                .or_insert_with(|| Tcm::new(self.n_threads));
            for a in 0..accum.threads.len() {
                for b in (a + 1)..accum.threads.len() {
                    round_tcm.add_pair(accum.threads[a], accum.threads[b], accum.bytes);
                    class_tcm.add_pair(accum.threads[a], accum.threads[b], accum.bytes);
                }
            }
        }
        if self.decay < 1.0 {
            self.tcm.scale(self.decay);
            for map in self.per_class.values_mut() {
                map.scale(self.decay);
            }
        }
        self.tcm.merge(&round_tcm);
        for (class, map) in &round_per_class {
            self.per_class
                .entry(*class)
                .or_insert_with(|| Tcm::new(self.n_threads))
                .merge(map);
        }
        self.rounds_closed += 1;
        RoundSummary {
            objects: m,
            tcm: round_tcm,
            per_class: round_per_class,
        }
    }

    /// The accumulated global map.
    pub fn tcm(&self) -> &Tcm {
        &self.tcm
    }

    /// The accumulated per-class maps.
    pub fn per_class(&self) -> &HashMap<ClassId, Tcm> {
        &self.per_class
    }

    /// Intervals ingested so far.
    pub fn intervals_ingested(&self) -> u64 {
        self.intervals_ingested
    }

    /// Rounds closed so far.
    pub fn rounds_closed(&self) -> u64 {
        self.rounds_closed
    }

    /// Objects pending in the current (unclosed) round.
    pub fn pending_objects(&self) -> usize {
        self.round_objects.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oal::OalEntry;

    fn entry(obj: u32, bytes: u64) -> OalEntry {
        OalEntry {
            obj: ObjectId(obj),
            class: ClassId(0),
            bytes,
        }
    }

    fn oal(thread: u32, entries: Vec<OalEntry>) -> Oal {
        Oal {
            thread: ThreadId(thread),
            interval: 0,
            entries,
        }
    }

    #[test]
    fn tcm_is_symmetric_with_zero_diagonal() {
        let mut t = Tcm::new(3);
        t.add_pair(ThreadId(0), ThreadId(2), 10.0);
        t.add_pair(ThreadId(1), ThreadId(1), 99.0);
        assert_eq!(t.at(ThreadId(0), ThreadId(2)), 10.0);
        assert_eq!(t.at(ThreadId(2), ThreadId(0)), 10.0);
        assert_eq!(t.at(ThreadId(1), ThreadId(1)), 0.0, "diagonal stays zero");
        assert_eq!(t.total(), 20.0);
    }

    #[test]
    fn builder_accrues_common_objects_only() {
        let mut b = TcmBuilder::new(3);
        // Threads 0 and 1 share object 7; thread 2 touches only object 8.
        b.ingest(&oal(0, vec![entry(7, 100), entry(8, 50)]));
        b.ingest(&oal(1, vec![entry(7, 100)]));
        b.ingest(&oal(2, vec![entry(9, 64)]));
        assert_eq!(b.pending_objects(), 3);
        let summary = b.close_round();
        assert_eq!(summary.objects, 3);
        assert_eq!(
            summary.tcm.at(ThreadId(0), ThreadId(1)),
            100.0,
            "round map matches cumulative map after one round"
        );
        let t = b.tcm();
        assert_eq!(t.at(ThreadId(0), ThreadId(1)), 100.0);
        assert_eq!(t.at(ThreadId(0), ThreadId(2)), 0.0);
        assert_eq!(t.at(ThreadId(1), ThreadId(2)), 0.0);
    }

    #[test]
    fn decayed_builder_forgets_old_rounds() {
        let mut b = TcmBuilder::new(2);
        b.set_decay(0.5);
        // Round 1: heavy sharing. Rounds 2-4: none.
        b.ingest(&oal(0, vec![entry(1, 80)]));
        b.ingest(&oal(1, vec![entry(1, 80)]));
        b.close_round();
        assert_eq!(b.tcm().at(ThreadId(0), ThreadId(1)), 80.0);
        for _ in 0..3 {
            b.close_round();
        }
        assert_eq!(b.tcm().at(ThreadId(0), ThreadId(1)), 10.0, "80 * 0.5^3");
        // New sharing dominates the faded history.
        b.ingest(&oal(0, vec![entry(2, 40)]));
        b.ingest(&oal(1, vec![entry(2, 40)]));
        b.close_round();
        assert_eq!(b.tcm().at(ThreadId(0), ThreadId(1)), 45.0, "80*0.5^4 + 40");
    }

    #[test]
    fn repeated_intervals_accumulate_across_rounds() {
        let mut b = TcmBuilder::new(2);
        for _ in 0..3 {
            b.ingest(&oal(0, vec![entry(1, 10)]));
            b.ingest(&oal(1, vec![entry(1, 10)]));
            b.close_round();
        }
        assert_eq!(b.tcm().at(ThreadId(0), ThreadId(1)), 30.0);
        assert_eq!(b.rounds_closed(), 3);
        assert_eq!(b.intervals_ingested(), 6);
    }

    #[test]
    fn three_way_sharing_hits_all_pairs() {
        let mut b = TcmBuilder::new(3);
        for t in 0..3 {
            b.ingest(&oal(t, vec![entry(5, 8)]));
        }
        b.close_round();
        for i in 0..3u32 {
            for j in 0..3u32 {
                let expect = if i == j { 0.0 } else { 8.0 };
                assert_eq!(b.tcm().at(ThreadId(i), ThreadId(j)), expect);
            }
        }
    }

    #[test]
    fn per_class_submaps_split_contributions() {
        let mut b = TcmBuilder::new(2);
        let c1 = OalEntry {
            obj: ObjectId(1),
            class: ClassId(1),
            bytes: 10,
        };
        let c2 = OalEntry {
            obj: ObjectId(2),
            class: ClassId(2),
            bytes: 20,
        };
        b.ingest(&oal(0, vec![c1, c2]));
        b.ingest(&oal(1, vec![c1, c2]));
        b.close_round();
        assert_eq!(b.tcm().at(ThreadId(0), ThreadId(1)), 30.0);
        assert_eq!(b.per_class()[&ClassId(1)].at(ThreadId(0), ThreadId(1)), 10.0);
        assert_eq!(b.per_class()[&ClassId(2)].at(ThreadId(0), ThreadId(1)), 20.0);
    }

    #[test]
    fn ingest_order_does_not_matter() {
        // TCM(OALs) must be permutation-invariant within a round.
        let oals = vec![
            oal(0, vec![entry(1, 4), entry(2, 8)]),
            oal(1, vec![entry(2, 8)]),
            oal(2, vec![entry(1, 4), entry(2, 8)]),
        ];
        let mut fwd = TcmBuilder::new(3);
        for o in &oals {
            fwd.ingest(o);
        }
        fwd.close_round();
        let mut rev = TcmBuilder::new(3);
        for o in oals.iter().rev() {
            rev.ingest(o);
        }
        rev.close_round();
        assert_eq!(fwd.tcm().raw(), rev.tcm().raw());
    }

    #[test]
    fn csv_round_trips_through_parsing() {
        let mut t = Tcm::new(3);
        t.add_pair(ThreadId(0), ThreadId(2), 12.5);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "t0,t1,t2");
        let cell: f64 = lines[1].split(',').nth(2).unwrap().parse().unwrap();
        assert_eq!(cell, 12.5);
        let diag: f64 = lines[2].split(',').nth(1).unwrap().parse().unwrap();
        assert_eq!(diag, 0.0);
    }

    #[test]
    fn ascii_heatmap_shape() {
        let mut t = Tcm::new(2);
        t.add_pair(ThreadId(0), ThreadId(1), 5.0);
        let art = t.ascii_heatmap();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.iter().all(|l| l.len() == 2));
        assert_eq!(lines[0].as_bytes()[0], b' ', "zero diagonal renders blank");
        assert_eq!(lines[0].as_bytes()[1], b'@', "max renders darkest");
    }
}
