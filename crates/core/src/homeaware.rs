//! Home-effect-aware correlation analysis (Section V).
//!
//! The paper's future work: *"Our active correlation tracking mechanism still needs to
//! be enhanced for taking home effect into account for proper thread migration
//! decisions in some tricky cases that objects shared by a pair of threads are homed
//! at neither node of the threads."* Collocating two threads only removes the
//! communication on shared objects that are (or can be re-homed) at the common node;
//! bytes homed at a third node keep costing remote faults no matter where the pair
//! sits.
//!
//! [`HomeAwareAnalyzer`] consumes the same OAL stream as the TCM builder and splits
//! every pair's shared volume into a **realizable** part (homed at either thread's
//! node) and a **stranded** part (homed at neither — the tricky case). It also derives
//! per-object **home-migration recommendations**: objects whose accessors
//! predominantly sit on some other node, which is exactly what the GOS's
//! `migrate_home` fixes.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use jessy_gos::{Gos, ObjectId};
use jessy_net::{NodeId, ThreadId};

use crate::oal::Oal;
use crate::tcm::Tcm;

/// One recommended object home migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HomeMigrationRec {
    /// The object to re-home.
    pub obj: ObjectId,
    /// Its current home.
    pub from: NodeId,
    /// The recommended home (the dominant accessor node).
    pub to: NodeId,
    /// Interval-accesses observed from the recommended node.
    pub accesses_at_dest: u32,
    /// Interval-accesses observed from everywhere else (including the current home).
    pub accesses_elsewhere: u32,
}

/// The analyzer's output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HomeAwareReport {
    /// Pair-shared bytes homed at either thread's node — the gain collocation (plus a
    /// matching home migration) can actually realize.
    pub realizable: Tcm,
    /// Pair-shared bytes homed at neither thread's node — the paper's tricky case.
    pub stranded: Tcm,
    /// Per-object re-homing recommendations, most-profitable first.
    pub recommendations: Vec<HomeMigrationRec>,
}

impl HomeAwareReport {
    /// Fraction of the total pairwise volume that is stranded (0 when nothing is
    /// shared).
    pub fn stranded_fraction(&self) -> f64 {
        let total = self.realizable.total() + self.stranded.total();
        if total == 0.0 {
            0.0
        } else {
            self.stranded.total() / total
        }
    }
}

#[derive(Debug, Default, Clone)]
struct ObjStat {
    bytes: f64,
    threads: Vec<ThreadId>,
    /// Interval-accesses per node (indexed by node id).
    per_node: Vec<u32>,
}

/// Accumulates per-object accessor statistics from OALs.
#[derive(Debug)]
pub struct HomeAwareAnalyzer {
    n_threads: usize,
    n_nodes: usize,
    objects: HashMap<ObjectId, ObjStat>,
}

impl HomeAwareAnalyzer {
    /// Analyzer for a cluster of `n_nodes` nodes and `n_threads` threads.
    pub fn new(n_nodes: usize, n_threads: usize) -> Self {
        HomeAwareAnalyzer {
            n_threads,
            n_nodes,
            objects: HashMap::new(),
        }
    }

    /// Ingest one OAL; `placement` maps each thread to its current node.
    pub fn ingest(&mut self, oal: &Oal, placement: &[NodeId]) {
        let node = placement[oal.thread.index()];
        for e in &oal.entries {
            let stat = self.objects.entry(e.obj).or_insert_with(|| ObjStat {
                per_node: vec![0; self.n_nodes],
                ..Default::default()
            });
            stat.bytes = stat.bytes.max(e.bytes as f64);
            if !stat.threads.contains(&oal.thread) {
                stat.threads.push(oal.thread);
            }
            stat.per_node[node.index()] += 1;
        }
    }

    /// Objects observed so far.
    pub fn n_objects(&self) -> usize {
        self.objects.len()
    }

    /// Forget every accumulated statistic. A planning epoch that applied thread
    /// moves or home repairs calls this so the next epoch's dominance evidence
    /// describes the *post-repair* world, not a mixture.
    pub fn clear(&mut self) {
        self.objects.clear();
    }

    /// Build the report against the current homes (read from `gos`) and `placement`.
    pub fn build(&self, gos: &Gos, placement: &[NodeId]) -> HomeAwareReport {
        let mut realizable = Tcm::new(self.n_threads);
        let mut stranded = Tcm::new(self.n_threads);
        let mut recommendations = Vec::new();

        for (&obj, stat) in &self.objects {
            let home = gos.object(obj).home();
            // Pair decomposition.
            for a in 0..stat.threads.len() {
                for b in (a + 1)..stat.threads.len() {
                    let (ta, tb) = (stat.threads[a], stat.threads[b]);
                    let at_either =
                        home == placement[ta.index()] || home == placement[tb.index()];
                    if at_either {
                        realizable.add_pair(ta, tb, stat.bytes);
                    } else {
                        stranded.add_pair(ta, tb, stat.bytes);
                    }
                }
            }
            // Home recommendation: only accesses from the *current home* node change
            // cost when the home moves (they become remote; the destination's become
            // local; everyone else stays remote either way). Profitable iff the
            // dominant accessor node strictly beats the current home's own pull.
            let (best_node, &best) = stat
                .per_node
                .iter()
                .enumerate()
                .max_by_key(|&(i, c)| (*c, std::cmp::Reverse(i)))
                .expect("at least one node");
            let at_home = stat.per_node[home.index()];
            let elsewhere: u32 = stat.per_node.iter().sum::<u32>() - best;
            if NodeId(best_node as u16) != home && best > at_home {
                recommendations.push(HomeMigrationRec {
                    obj,
                    from: home,
                    to: NodeId(best_node as u16),
                    accesses_at_dest: best,
                    accesses_elsewhere: elsewhere,
                });
            }
        }
        recommendations.sort_by_key(|r| {
            (
                std::cmp::Reverse(r.accesses_at_dest.saturating_sub(r.accesses_elsewhere)),
                r.obj,
            )
        });
        HomeAwareReport {
            realizable,
            stranded,
            recommendations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oal::OalEntry;
    use jessy_gos::{ClassId, CostModel, GosConfig};
    use jessy_net::{ClockBoard, LatencyModel};

    fn gos3() -> (Gos, jessy_net::ClockHandle) {
        let g = Gos::new(GosConfig {
            n_nodes: 3,
            n_threads: 3,
            latency: LatencyModel::free(),
            costs: CostModel::free(),
            prefetch_depth: 0,
            consistency: jessy_gos::protocol::ConsistencyModel::GlobalHlrc,
            faults: None,
        });
        (g, ClockBoard::new(1).handle(ThreadId(0)))
    }

    fn oal(thread: u32, interval: u64, obj: ObjectId) -> Oal {
        Oal {
            thread: ThreadId(thread),
            interval,
            entries: vec![OalEntry {
                obj,
                class: ClassId(0),
                bytes: 100,
            }],
        }
    }

    #[test]
    fn stranded_vs_realizable_split() {
        let (gos, clock) = gos3();
        let class = gos.classes().register_scalar("X", 1);
        // Object A homed at node 0 (thread 0's node); object B homed at node 2 —
        // neither thread 0's nor thread 1's node.
        let a = gos.alloc_scalar(NodeId(0), class, &clock, None).id;
        let b = gos.alloc_scalar(NodeId(2), class, &clock, None).id;
        let placement = vec![NodeId(0), NodeId(1), NodeId(2)];

        let mut an = HomeAwareAnalyzer::new(3, 3);
        for t in [0u32, 1] {
            an.ingest(&oal(t, 0, a), &placement);
            an.ingest(&oal(t, 0, b), &placement);
        }
        let report = an.build(&gos, &placement);
        assert_eq!(report.realizable.at(ThreadId(0), ThreadId(1)), 100.0, "A realizable");
        assert_eq!(report.stranded.at(ThreadId(0), ThreadId(1)), 100.0, "B stranded");
        assert!((report.stranded_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recommends_rehoming_to_dominant_accessor() {
        let (gos, clock) = gos3();
        let class = gos.classes().register_scalar("X", 1);
        let obj = gos.alloc_scalar(NodeId(2), class, &clock, None).id;
        let placement = vec![NodeId(0), NodeId(0), NodeId(1)];

        let mut an = HomeAwareAnalyzer::new(3, 3);
        // Threads 0 and 1 (both node 0) access it every interval; thread 2 once.
        for interval in 0..5 {
            an.ingest(&oal(0, interval, obj), &placement);
            an.ingest(&oal(1, interval, obj), &placement);
        }
        an.ingest(&oal(2, 0, obj), &placement);

        let report = an.build(&gos, &placement);
        assert_eq!(report.recommendations.len(), 1);
        let rec = report.recommendations[0];
        assert_eq!(rec.obj, obj);
        assert_eq!(rec.from, NodeId(2));
        assert_eq!(rec.to, NodeId(0));
        assert_eq!(rec.accesses_at_dest, 10);
        assert_eq!(rec.accesses_elsewhere, 1);
    }

    #[test]
    fn no_recommendation_when_the_home_pulls_its_weight() {
        let (gos, clock) = gos3();
        let class = gos.classes().register_scalar("X", 1);
        let obj = gos.alloc_scalar(NodeId(0), class, &clock, None).id;
        // Thread 2 runs ON the home node and accesses as often as the remote thread:
        // moving the home would trade one remote accessor for another — no gain.
        let placement = vec![NodeId(1), NodeId(2), NodeId(0)];
        let mut an = HomeAwareAnalyzer::new(3, 3);
        for interval in 0..3 {
            an.ingest(&oal(0, interval, obj), &placement); // node 1
            an.ingest(&oal(2, interval, obj), &placement); // node 0 (the home)
        }
        let report = an.build(&gos, &placement);
        assert!(
            report.recommendations.is_empty(),
            "{:?}",
            report.recommendations
        );
    }

    #[test]
    fn idle_home_is_always_worth_leaving() {
        let (gos, clock) = gos3();
        let class = gos.classes().register_scalar("X", 1);
        let obj = gos.alloc_scalar(NodeId(0), class, &clock, None).id;
        // Nobody runs on the home node; even a single remote accessor justifies the
        // move (its accesses become local, nobody's become remote).
        let placement = vec![NodeId(1), NodeId(2), NodeId(2)];
        let mut an = HomeAwareAnalyzer::new(3, 3);
        an.ingest(&oal(0, 0, obj), &placement);
        let report = an.build(&gos, &placement);
        assert_eq!(report.recommendations.len(), 1);
        assert_eq!(report.recommendations[0].to, NodeId(1));
    }

    #[test]
    fn recommendation_applies_cleanly_through_the_gos() {
        let (gos, clock) = gos3();
        let class = gos.classes().register_scalar("X", 1);
        let obj = gos.alloc_scalar(NodeId(2), class, &clock, None).id;
        let placement = vec![NodeId(0), NodeId(0), NodeId(1)];
        let mut an = HomeAwareAnalyzer::new(3, 3);
        for interval in 0..3 {
            an.ingest(&oal(0, interval, obj), &placement);
        }
        let report = an.build(&gos, &placement);
        let rec = report.recommendations[0];
        assert!(gos.migrate_home(rec.obj, rec.to, &clock));
        assert_eq!(gos.object(obj).home(), NodeId(0));
        // Re-analyzing against the new home: nothing left to recommend.
        let report = an.build(&gos, &placement);
        assert!(report.recommendations.is_empty());
    }
}
