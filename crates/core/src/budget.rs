//! The overhead-budget (SLO) feedback loop around the adaptive controller.
//!
//! The paper's controller (Section II.B) optimizes one variable: TCM accuracy. A
//! production profiler must also bound its *own* cost — access-path charges, OAL
//! wire bytes, reduce work — as a fraction of the compute it observes. The
//! [`BudgetedController`] wraps the accuracy-only [`AdaptiveController`] with a
//! second loop: each round the master measures the profiling cost fraction from
//! the metrics registry and feeds it here; a round whose cost exceeds
//! [`ProfilerConfig::overhead_budget`](crate::config::ProfilerConfig) walks one
//! rung down a deterministic **degradation ladder** instead of adapting:
//!
//! 1. **Coarsen** — step the finest still-coarsenable class one rate down
//!    (fewer sampled objects → fewer log appends and OAL bytes);
//! 2. **Merge rounds** — once every class sits at 1X, halve the controller's
//!    cadence (factor 2, 4, … up to 8), eliding broadcasts and resample walks;
//! 3. **Summary-only OALs** — collapse shipped OALs to per-class summaries,
//!    shedding object identity to cut wire bytes (class-grain correlation, the
//!    analogue of the paper's page-grain baseline);
//! 4. **Exhausted** — every lever is pulled; the residual cost is the floor.
//!
//! Rungs are never climbed back up: a one-directional ladder is trivially
//! deterministic and cannot oscillate against the accuracy loop (which still
//! refines within budget). With `overhead_budget = None` every call delegates
//! verbatim to the inner controller — bit-identical to previous releases, and
//! property-tested to stay that way.

use std::collections::HashMap;

use jessy_gos::ClassId;
use serde::{Deserialize, Serialize};

use crate::adaptive::{AdaptiveController, ControllerCheckpoint, DriftConfig, RoundOutcome};
use crate::sampling::{ClassGapState, GapTable, SamplingRate};
use crate::tcm::SparseTcm;

/// Ceiling of the round-merge factor: beyond 8× the controller reacts too slowly
/// to workload shifts to be worth the marginal saving.
pub const MAX_MERGE_FACTOR: u32 = 8;

/// Rounds to wait after taking a rung before trusting an over-budget
/// measurement again. One round suffices: the re-arm fault burst lands in the
/// round following the rung's broadcast, and the round after that is clean.
pub const SETTLE_ROUNDS: u32 = 1;

/// One rung taken on the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegradeStep {
    /// A class's sampling rate stepped one rung coarser.
    CoarsenRate {
        /// The class that was coarsened.
        class: ClassId,
        /// Its new sampling state.
        new_state: ClassGapState,
    },
    /// The controller's cadence halved: it now acts every `factor` rounds.
    MergeRounds {
        /// The new merge factor.
        factor: u32,
    },
    /// OALs degrade to per-class summaries from here on.
    SummaryOnly,
    /// Every lever is already pulled; the cost floor is reached.
    Exhausted,
}

impl DegradeStep {
    /// Stable label for obs events and metrics ("coarsen:c3:2X", "merge_rounds:4",
    /// "summary_only", "exhausted").
    pub fn label(&self) -> String {
        match self {
            DegradeStep::CoarsenRate { class, new_state } => {
                format!("coarsen:{class}:{}", new_state.rate.label())
            }
            DegradeStep::MergeRounds { factor } => format!("merge_rounds:{factor}"),
            DegradeStep::SummaryOnly => "summary_only".to_string(),
            DegradeStep::Exhausted => "exhausted".to_string(),
        }
    }
}

/// What the budgeted controller did with one round.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetOutcome {
    /// Within budget (or no budget configured): the inner accuracy controller ran.
    Adapted(RoundOutcome),
    /// Within budget, but this round falls between merge-factor act points: the
    /// inner controller was not consulted (no baselines, no broadcasts).
    MergedOut {
        /// The merge factor in force.
        factor: u32,
    },
    /// Over budget: one ladder rung was taken instead of adapting.
    Degraded(DegradeStep),
    /// Over budget, but inside the settling window right after a rung: the
    /// measured cost still reflects the transition itself (rate-change
    /// broadcasts, the threads' trap re-arm walks and the resulting fault
    /// burst), so no new rung is taken until a clean round has been measured.
    /// Without this the transition spike cascades the ladder past the rate
    /// that would have held the budget at steady state.
    Settling,
}

/// Serializable snapshot of a [`BudgetedController`], wrapping the inner
/// controller's checkpoint with the ladder position.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BudgetCheckpoint {
    /// The accuracy controller's state.
    pub inner: ControllerCheckpoint,
    /// Merge factor in force (1 = every round).
    pub merge_factor: u32,
    /// Whether OALs have degraded to per-class summaries.
    pub summary_only: bool,
    /// Rounds observed (drives the merge-cadence phase).
    pub rounds_seen: u64,
    /// Over-budget rounds still ignored while the last rung settles.
    pub cooldown: u32,
}

/// [`AdaptiveController`] plus the overhead-budget loop and degradation ladder.
#[derive(Debug)]
pub struct BudgetedController {
    inner: AdaptiveController,
    budget: Option<f64>,
    merge_factor: u32,
    summary_only: bool,
    rounds_seen: u64,
    /// Over-budget rounds left to ignore while the last rung's transition
    /// costs wash out.
    cooldown: u32,
    over_rounds: u64,
    degrades: u64,
}

impl BudgetedController {
    /// Wrap a threshold-`threshold` accuracy controller with an optional overhead
    /// budget (a fraction of charged compute in `(0, 1]`).
    pub fn new(threshold: f64, budget: Option<f64>) -> Self {
        BudgetedController {
            inner: AdaptiveController::new(threshold),
            budget,
            merge_factor: 1,
            summary_only: false,
            rounds_seen: 0,
            cooldown: 0,
            over_rounds: 0,
            degrades: 0,
        }
    }

    /// Require at least this OAL coverage before a round may steer rates.
    pub fn with_min_coverage(mut self, min_coverage: f64) -> Self {
        self.inner = self.inner.with_min_coverage(min_coverage);
        self
    }

    /// Watch converged classes for drift (see [`crate::adaptive`]'s module docs).
    /// Composes with the budget loop by construction: an over-budget round takes a
    /// ladder rung *instead of* consulting the inner controller, so a drift
    /// re-activation can never fire on a round the budget already claimed — the
    /// budget rung wins, and drift waits for a within-budget act point.
    pub fn with_drift(mut self, drift: DriftConfig) -> Self {
        self.inner = self.inner.with_drift(drift);
        self
    }

    /// Feed one round: its per-class maps, coverage, and the measured profiling
    /// cost as a fraction of charged compute. Decision order: no budget →
    /// delegate verbatim; over budget → take one ladder rung (the inner
    /// controller is *not* consulted, so its baselines stay clean); within
    /// budget → consult the inner controller at the merge cadence.
    pub fn on_round(
        &mut self,
        round_per_class: &HashMap<ClassId, SparseTcm>,
        gaps: &GapTable,
        coverage: f64,
        cost_fraction: f64,
    ) -> BudgetOutcome {
        let Some(budget) = self.budget else {
            return BudgetOutcome::Adapted(self.inner.on_round_with_coverage(
                round_per_class,
                gaps,
                coverage,
            ));
        };
        self.rounds_seen += 1;
        if cost_fraction > budget {
            self.over_rounds += 1;
            if self.cooldown > 0 {
                self.cooldown -= 1;
                return BudgetOutcome::Settling;
            }
            let step = self.degrade_once(gaps);
            if !matches!(step, DegradeStep::Exhausted) {
                self.degrades += 1;
                self.cooldown = SETTLE_ROUNDS;
            }
            return BudgetOutcome::Degraded(step);
        }
        self.cooldown = 0;
        if self.merge_factor > 1 && !self.rounds_seen.is_multiple_of(self.merge_factor as u64) {
            return BudgetOutcome::MergedOut { factor: self.merge_factor };
        }
        BudgetOutcome::Adapted(self.inner.on_round_with_coverage(round_per_class, gaps, coverage))
    }

    /// Take one rung down the ladder. Deterministic: the class to coarsen is the
    /// finest still-coarsenable one (smallest real gap; ties break on the lower
    /// class id), because the finest class logs the most and thus buys the most
    /// relief per rung.
    fn degrade_once(&mut self, gaps: &GapTable) -> DegradeStep {
        let mut finest: Option<(u64, ClassId)> = None;
        for class in gaps.classes() {
            let st = gaps.state(class);
            if st.rate == SamplingRate::NX(1) {
                continue; // already at the coarsest rung the paper uses
            }
            let key = (st.real_gap, class);
            if finest.is_none_or(|best| key < best) {
                finest = Some(key);
            }
        }
        if let Some((_, class)) = finest {
            let new_state = gaps.step_down(class);
            return DegradeStep::CoarsenRate { class, new_state };
        }
        if self.merge_factor < MAX_MERGE_FACTOR {
            self.merge_factor = (self.merge_factor * 2).min(MAX_MERGE_FACTOR);
            return DegradeStep::MergeRounds { factor: self.merge_factor };
        }
        if !self.summary_only {
            self.summary_only = true;
            return DegradeStep::SummaryOnly;
        }
        DegradeStep::Exhausted
    }

    /// The configured budget, if any.
    pub fn budget(&self) -> Option<f64> {
        self.budget
    }

    /// The merge factor in force (1 = act every round).
    pub fn merge_factor(&self) -> u32 {
        self.merge_factor
    }

    /// Whether the ladder has degraded OALs to per-class summaries.
    pub fn summary_only(&self) -> bool {
        self.summary_only
    }

    /// Rounds whose measured cost exceeded the budget.
    pub fn over_rounds(&self) -> u64 {
        self.over_rounds
    }

    /// Ladder rungs actually taken (excludes `Exhausted` no-ops).
    pub fn degrades(&self) -> u64 {
        self.degrades
    }

    /// The coverage floor in force.
    pub fn min_coverage(&self) -> f64 {
        self.inner.min_coverage()
    }

    /// Has this class converged (in the inner accuracy loop)?
    pub fn is_converged(&self, class: ClassId) -> bool {
        self.inner.is_converged(class)
    }

    /// Number of converged classes.
    pub fn converged_count(&self) -> usize {
        self.inner.converged_count()
    }

    /// Total drift re-activations performed (in the inner accuracy loop).
    pub fn reactivations(&self) -> u64 {
        self.inner.reactivations()
    }

    /// Snapshot controller + ladder state in canonical form. The over/degrade
    /// tallies are telemetry, not decision state, and are not checkpointed.
    pub fn checkpoint(&self) -> BudgetCheckpoint {
        BudgetCheckpoint {
            inner: self.inner.checkpoint(),
            merge_factor: self.merge_factor,
            summary_only: self.summary_only,
            rounds_seen: self.rounds_seen,
            cooldown: self.cooldown,
        }
    }

    /// Overwrite controller + ladder state from a checkpoint.
    pub fn restore(&mut self, cp: &BudgetCheckpoint) {
        self.inner.restore(&cp.inner);
        self.merge_factor = cp.merge_factor;
        self.summary_only = cp.summary_only;
        self.rounds_seen = cp.rounds_seen;
        self.cooldown = cp.cooldown;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adaptive::RateCause;
    use jessy_net::ThreadId;
    use proptest::prelude::*;

    fn round(class: ClassId, v: f64) -> HashMap<ClassId, SparseTcm> {
        let t = SparseTcm::from_pairs(2, &[(ThreadId(0), ThreadId(1), v)]);
        HashMap::from([(class, t)])
    }

    fn gaps_with(class: ClassId, unit: usize, rate: SamplingRate) -> GapTable {
        let g = GapTable::new(4096);
        g.register_class(class, unit, rate);
        g
    }

    #[test]
    fn within_budget_behaves_like_the_accuracy_controller() {
        let class = ClassId(0);
        let gaps = gaps_with(class, 64, SamplingRate::NX(1));
        let mut ctl = BudgetedController::new(0.05, Some(0.02));
        // Cost fraction under the 2% budget: baseline, then a step-up.
        assert_eq!(
            ctl.on_round(&round(class, 100.0), &gaps, 1.0, 0.01),
            BudgetOutcome::Adapted(RoundOutcome::Applied(vec![]))
        );
        match ctl.on_round(&round(class, 200.0), &gaps, 1.0, 0.01) {
            BudgetOutcome::Adapted(RoundOutcome::Applied(ch)) => {
                assert_eq!(ch.len(), 1);
                assert_eq!(ch[0].new_state.rate, SamplingRate::NX(2));
            }
            other => panic!("expected a step-up, got {other:?}"),
        }
        assert_eq!(ctl.over_rounds(), 0);
    }

    #[test]
    fn over_budget_walks_the_ladder_in_order() {
        let c0 = ClassId(0);
        let c1 = ClassId(1);
        let gaps = gaps_with(c0, 64, SamplingRate::NX(4)); // gap 17 — finest
        gaps.register_class(c1, 64, SamplingRate::NX(2)); // gap 31
        let mut ctl = BudgetedController::new(0.05, Some(0.02));
        let r = round(c0, 100.0);
        // Every rung is followed by one settling round (the over-budget cost
        // right after a rung reflects the transition, not the new regime).
        let rung = |ctl: &mut BudgetedController| {
            let out = ctl.on_round(&r, &gaps, 1.0, 0.10);
            assert_eq!(ctl.on_round(&r, &gaps, 1.0, 0.10), BudgetOutcome::Settling);
            out
        };

        // Rung 1: coarsen the finest class (c0: 4X → 2X).
        match rung(&mut ctl) {
            BudgetOutcome::Degraded(DegradeStep::CoarsenRate { class, new_state }) => {
                assert_eq!(class, c0);
                assert_eq!(new_state.rate, SamplingRate::NX(2));
            }
            other => panic!("{other:?}"),
        }
        // Both at 2X (gap 31): tie breaks to the lower class id.
        match rung(&mut ctl) {
            BudgetOutcome::Degraded(DegradeStep::CoarsenRate { class, .. }) => {
                assert_eq!(class, c0)
            }
            other => panic!("{other:?}"),
        }
        // The last rate rung: c1 2X → 1X.
        match rung(&mut ctl) {
            BudgetOutcome::Degraded(DegradeStep::CoarsenRate { class, new_state }) => {
                assert_eq!(class, c1);
                assert_eq!(new_state.rate, SamplingRate::NX(1));
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(gaps.state(c0).rate, SamplingRate::NX(1));
        assert_eq!(gaps.state(c1).rate, SamplingRate::NX(1));
        // Next rungs: merge factor 2 → 4 → 8.
        for want in [2u32, 4, 8] {
            match rung(&mut ctl) {
                BudgetOutcome::Degraded(DegradeStep::MergeRounds { factor }) => {
                    assert_eq!(factor, want)
                }
                other => panic!("{other:?}"),
            }
        }
        // Then summary-only, then the ladder is exhausted (no settling after
        // an Exhausted no-op — there is no transition to wash out).
        assert_eq!(rung(&mut ctl), BudgetOutcome::Degraded(DegradeStep::SummaryOnly));
        assert!(ctl.summary_only());
        assert_eq!(
            ctl.on_round(&r, &gaps, 1.0, 0.10),
            BudgetOutcome::Degraded(DegradeStep::Exhausted)
        );
        assert_eq!(
            ctl.on_round(&r, &gaps, 1.0, 0.10),
            BudgetOutcome::Degraded(DegradeStep::Exhausted)
        );
        assert_eq!(ctl.over_rounds(), 16);
        assert_eq!(ctl.degrades(), 7, "Exhausted and settling rounds take no rung");
    }

    #[test]
    fn merge_factor_gates_the_inner_cadence() {
        let class = ClassId(0);
        let gaps = gaps_with(class, 64, SamplingRate::NX(1)); // nothing to coarsen
        let mut ctl = BudgetedController::new(0.05, Some(0.02));
        assert_eq!(
            ctl.on_round(&round(class, 100.0), &gaps, 1.0, 0.10),
            BudgetOutcome::Degraded(DegradeStep::MergeRounds { factor: 2 })
        );
        // rounds_seen = 1. Round 2 is the act point (2 % 2 == 0); round 3 merges out.
        assert!(matches!(
            ctl.on_round(&round(class, 100.0), &gaps, 1.0, 0.01),
            BudgetOutcome::Adapted(_)
        ));
        assert_eq!(
            ctl.on_round(&round(class, 100.0), &gaps, 1.0, 0.01),
            BudgetOutcome::MergedOut { factor: 2 }
        );
        assert!(matches!(
            ctl.on_round(&round(class, 100.0), &gaps, 1.0, 0.01),
            BudgetOutcome::Adapted(_)
        ));
    }

    #[test]
    fn degraded_rounds_leave_baselines_untouched() {
        let class = ClassId(0);
        let gaps = gaps_with(class, 64, SamplingRate::NX(2));
        let mut ctl = BudgetedController::new(0.05, Some(0.02));
        ctl.on_round(&round(class, 100.0), &gaps, 1.0, 0.01); // baseline 100
        ctl.on_round(&round(class, 500.0), &gaps, 1.0, 0.50); // over budget: coarsen
        // Next trusted round compares against 100, not 500: 1% off → converge.
        match ctl.on_round(&round(class, 101.0), &gaps, 1.0, 0.01) {
            BudgetOutcome::Adapted(RoundOutcome::Applied(ch)) => assert!(ch.is_empty()),
            other => panic!("{other:?}"),
        }
        assert!(ctl.is_converged(class));
    }

    #[test]
    fn checkpoint_restore_preserves_the_ladder_position() {
        let class = ClassId(0);
        let gaps = gaps_with(class, 64, SamplingRate::NX(1));
        let mut ctl = BudgetedController::new(0.05, Some(0.02));
        ctl.on_round(&round(class, 100.0), &gaps, 1.0, 0.10); // merge 2
        ctl.on_round(&round(class, 100.0), &gaps, 1.0, 0.10); // settling
        ctl.on_round(&round(class, 100.0), &gaps, 1.0, 0.10); // merge 4
        let cp = ctl.checkpoint();
        assert_eq!(cp.merge_factor, 4);
        assert_eq!(cp.rounds_seen, 3);
        assert_eq!(cp.cooldown, 1, "mid-settle ladder position survives");
        let mut restored = BudgetedController::new(0.05, Some(0.02));
        restored.restore(&cp);
        assert_eq!(restored.merge_factor(), 4);
        // Both controllers settle, then take the same next rung.
        for want in [
            BudgetOutcome::Settling,
            BudgetOutcome::Degraded(DegradeStep::MergeRounds { factor: 8 }),
        ] {
            let a = ctl.on_round(&round(class, 100.0), &gaps, 1.0, 0.10);
            let b = restored.on_round(&round(class, 100.0), &gaps, 1.0, 0.10);
            assert_eq!(a, b);
            assert_eq!(a, want);
        }
    }

    #[test]
    fn budget_rung_wins_over_drift_reactivation() {
        let class = ClassId(0);
        let gaps = gaps_with(class, 64, SamplingRate::NX(2));
        let mut ctl = BudgetedController::new(0.05, Some(0.02)).with_drift(DriftConfig {
            threshold: 0.2,
            hysteresis_rounds: 1,
            max_reactivations: 8,
        });
        // Converge within budget.
        ctl.on_round(&round(class, 100.0), &gaps, 1.0, 0.01);
        ctl.on_round(&round(class, 101.0), &gaps, 1.0, 0.01);
        assert!(ctl.is_converged(class));

        // A drifting map on an over-budget round: the ladder rung is taken, the
        // inner controller is never consulted — no re-activation, no streak, and
        // the class is *coarsened* (the budget's call), not refined (drift's).
        match ctl.on_round(&round(class, 900.0), &gaps, 1.0, 0.50) {
            BudgetOutcome::Degraded(DegradeStep::CoarsenRate { class: c, new_state }) => {
                assert_eq!(c, class);
                assert_eq!(new_state.rate, SamplingRate::NX(1));
            }
            other => panic!("expected the budget rung, got {other:?}"),
        }
        assert!(ctl.is_converged(class), "budget round never reaches drift detection");
        assert_eq!(ctl.reactivations(), 0);
        assert!(ctl.checkpoint().inner.drift_streaks.is_empty());

        // Once back within budget, drift detection runs and re-activates against
        // the still-clean baseline (100).
        match ctl.on_round(&round(class, 900.0), &gaps, 1.0, 0.01) {
            BudgetOutcome::Adapted(RoundOutcome::Applied(ch)) => {
                assert_eq!(ch.len(), 1);
                assert_eq!(ch[0].cause, RateCause::Drift);
            }
            other => panic!("expected drift re-activation, got {other:?}"),
        }
        assert!(!ctl.is_converged(class));
        assert_eq!(ctl.reactivations(), 1);
    }

    #[test]
    fn merged_out_rounds_do_not_advance_drift_streaks() {
        let class = ClassId(0);
        let gaps = gaps_with(class, 64, SamplingRate::NX(1)); // nothing to coarsen
        let mut ctl = BudgetedController::new(0.05, Some(0.02)).with_drift(DriftConfig {
            threshold: 0.2,
            hysteresis_rounds: 2,
            max_reactivations: 8,
        });
        ctl.on_round(&round(class, 100.0), &gaps, 1.0, 0.10); // merge 2 (rounds_seen 1)
        ctl.on_round(&round(class, 100.0), &gaps, 1.0, 0.01); // act: baseline (2)
        ctl.on_round(&round(class, 100.0), &gaps, 1.0, 0.01); // merged out (3)
        ctl.on_round(&round(class, 101.0), &gaps, 1.0, 0.01); // act: converge (4)
        assert!(ctl.is_converged(class));
        // Drifting maps on merged-out rounds are never seen by the inner
        // controller: streaks only advance on act points.
        ctl.on_round(&round(class, 900.0), &gaps, 1.0, 0.01); // merged out (5)
        assert!(ctl.checkpoint().inner.drift_streaks.is_empty());
        ctl.on_round(&round(class, 900.0), &gaps, 1.0, 0.01); // act: streak 1 (6)
        assert_eq!(ctl.checkpoint().inner.drift_streaks, vec![(class, 1)]);
        assert!(ctl.is_converged(class));
    }

    #[test]
    fn step_labels_are_stable() {
        let gaps = gaps_with(ClassId(3), 64, SamplingRate::NX(2));
        let st = gaps.state(ClassId(3));
        let s = DegradeStep::CoarsenRate { class: ClassId(3), new_state: st };
        assert_eq!(s.label(), "coarsen:c3:2X");
        assert_eq!(DegradeStep::MergeRounds { factor: 4 }.label(), "merge_rounds:4");
        assert_eq!(DegradeStep::SummaryOnly.label(), "summary_only");
        assert_eq!(DegradeStep::Exhausted.label(), "exhausted");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// With no budget configured the wrapper is bit-identical to the bare
        /// accuracy controller: same outcomes, same checkpoint, for any round
        /// sequence, coverage pattern, and (ignored) cost fractions.
        #[test]
        fn no_budget_is_bit_identical_to_the_accuracy_controller(
            values in prop::collection::vec((0.0f64..1000.0, 0.0f64..1.0, 0.0f64..0.5), 1..20),
            min_cov in 0.0f64..1.0,
        ) {
            let class = ClassId(0);
            let gaps_a = gaps_with(class, 64, SamplingRate::NX(1));
            let gaps_b = gaps_with(class, 64, SamplingRate::NX(1));
            let mut budgeted = BudgetedController::new(0.05, None).with_min_coverage(min_cov);
            let mut bare = AdaptiveController::new(0.05).with_min_coverage(min_cov);
            for (v, cov, cost) in values {
                let r = round(class, v);
                let a = budgeted.on_round(&r, &gaps_a, cov, cost);
                let b = bare.on_round_with_coverage(&r, &gaps_b, cov);
                prop_assert_eq!(a, BudgetOutcome::Adapted(b));
                prop_assert_eq!(gaps_a.state(class), gaps_b.state(class));
            }
            prop_assert_eq!(budgeted.checkpoint().inner, bare.checkpoint());
            prop_assert_eq!(budgeted.merge_factor(), 1);
            prop_assert!(!budgeted.summary_only());
        }

        /// The no-budget identity holds with drift detection enabled too: the
        /// wrapper's drift decisions (streaks, re-activations, rate steps) match
        /// the bare controller's bit for bit.
        #[test]
        fn no_budget_identity_holds_with_drift(
            values in prop::collection::vec((0.0f64..1000.0, 0.0f64..1.0), 1..24),
            min_cov in 0.0f64..1.0,
            hysteresis in 1u32..4,
        ) {
            let class = ClassId(0);
            let drift = DriftConfig {
                threshold: 0.2,
                hysteresis_rounds: hysteresis,
                max_reactivations: 3,
            };
            let gaps_a = gaps_with(class, 64, SamplingRate::NX(1));
            let gaps_b = gaps_with(class, 64, SamplingRate::NX(1));
            let mut budgeted = BudgetedController::new(0.05, None)
                .with_min_coverage(min_cov)
                .with_drift(drift);
            let mut bare = AdaptiveController::new(0.05)
                .with_min_coverage(min_cov)
                .with_drift(drift);
            for (v, cov) in values {
                let r = round(class, v);
                let a = budgeted.on_round(&r, &gaps_a, cov, 0.0);
                let b = bare.on_round_with_coverage(&r, &gaps_b, cov);
                prop_assert_eq!(a, BudgetOutcome::Adapted(b));
                prop_assert_eq!(gaps_a.state(class), gaps_b.state(class));
            }
            prop_assert_eq!(budgeted.checkpoint().inner, bare.checkpoint());
            prop_assert_eq!(budgeted.reactivations(), bare.reactivations());
        }
    }
}
