//! Profiler configuration.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::sampling::SamplingRate;

/// A [`ProfilerConfig`] field holds a value outside its documented domain.
///
/// Mirrors the `FaultPlan::validate()` pattern: the error names the offending
/// field, echoes the rejected value and states the requirement, so a bad config
/// is diagnosable from the message alone. Values are carried as strings to keep
/// the error `Eq` (f64 isn't).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending `ProfilerConfig` field.
    pub field: &'static str,
    /// The rejected value, rendered.
    pub value: String,
    /// What the field requires.
    pub requirement: &'static str,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ProfilerConfig.{} = {} is invalid: {}",
            self.field, self.value, self.requirement
        )
    }
}

impl std::error::Error for ConfigError {}

/// Configuration of the stack-sampling subsystem (Section III.B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StackSamplingConfig {
    /// Timer gap between samples, in simulated nanoseconds (the paper evaluates
    /// 4 ms and 16 ms).
    pub gap_ns: u64,
    /// Lazy frame extraction (capture raw on first visit, extract on second) versus
    /// immediate extraction — the two columns of Table V.
    pub lazy_extraction: bool,
}

impl Default for StackSamplingConfig {
    fn default() -> Self {
        StackSamplingConfig {
            gap_ns: 16_000_000,
            lazy_extraction: true,
        }
    }
}

/// How often sticky-set footprinting re-arms tracking within an interval (Table V's
/// "Nonstop" vs "Timer-based (100ms)" columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FootprintMode {
    /// Re-arm a sampled object immediately after every logged access: exact access
    /// frequencies, maximal overhead.
    Nonstop,
    /// Re-arm in rounds separated by at least this many simulated nanoseconds.
    Timer(u64),
}

/// Configuration of sticky-set footprinting (Section III.A.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FootprintConfig {
    /// Probing cadence.
    pub mode: FootprintMode,
    /// Lower bound on the object sampling gap used for footprinting (the paper puts
    /// "a lower bound on object sampling gap" to bound repeated-tracking overhead).
    pub min_gap: u64,
}

impl Default for FootprintConfig {
    fn default() -> Self {
        FootprintConfig {
            mode: FootprintMode::Timer(100_000_000), // 100 ms
            min_gap: 1,
        }
    }
}

/// Storage backend of the coordinator's cumulative correlation state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TcmBackend {
    /// The packed dense triangle (`n·(n−1)/2` f64 cells) — exact, `O(N²)` memory,
    /// and bit-identical to every run before the backend existed.
    Dense,
    /// Count-min sketch for the long tail plus the exact streaming top-k head:
    /// coordinator memory is `O(active pairs + width·depth)` instead of `O(N²)`.
    Sketch {
        /// Counters per hash row (default 65536 ⇒ ~2 MB at depth 4).
        width: u32,
        /// Hash rows (each halves the probability of a bad estimate).
        depth: u32,
    },
}

impl TcmBackend {
    /// The default sketch shape: 65536×4 (~2 MB), which holds the top-k relative
    /// error under 1% on the `tcm_reduce` workloads up to N=4096.
    pub fn default_sketch() -> Self {
        TcmBackend::Sketch {
            width: 65536,
            depth: 4,
        }
    }
}

/// How a thread sheds pending OAL batches when the master's bounded mailbox is
/// full (see `ProfilerConfig::oal_mailbox_capacity`). Every policy is
/// deterministic — the choice of what to shed depends only on the pending queue,
/// never on wall-clock time — and every shed batch is attributed in `RunReport`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShedPolicy {
    /// Drop the oldest pending batch outright. The freshest data survives; the
    /// dropped interval is prorated out of round coverage like a lost OAL.
    DropOldestRound,
    /// Merge the two oldest pending batches into one (entries concatenated, the
    /// younger interval's identity kept) — halves queue depth without losing
    /// bytes, at the cost of interval-attribution precision.
    MergeBatches,
    /// Merge like [`ShedPolicy::MergeBatches`] but also collapse the merged batch
    /// to per-class summaries (`Oal::summarize`), shedding object identity to cut
    /// wire bytes — the last rung before data loss.
    SummaryOnly,
}

impl ShedPolicy {
    /// Stable lowercase label for events and metrics keys.
    pub fn label(self) -> &'static str {
        match self {
            ShedPolicy::DropOldestRound => "drop_oldest_round",
            ShedPolicy::MergeBatches => "merge_batches",
            ShedPolicy::SummaryOnly => "summary_only",
        }
    }
}

/// Top-level profiler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfilerConfig {
    /// Page size `SP` used by the `nX` rate notation (4 KB in the paper).
    pub page_size: u32,
    /// Initial per-class sampling rate.
    pub initial_rate: SamplingRate,
    /// Enable correlation tracking (OAL generation via false-invalid arming).
    pub track_correlation: bool,
    /// Ship OALs to the central coordinator (Table II isolates CPU cost by disabling
    /// this; Table III enables it).
    pub send_oals: bool,
    /// Ground-truth mode: log *every* access (deduplicated per interval) at full
    /// payload size — the "log inserted at every object access" simulation behind
    /// Fig. 1(a). Overrides sampling.
    pub full_trace: bool,
    /// Convergence threshold on the relative `E_ABS` distance for the adaptive rate
    /// controller; `None` pins rates at `initial_rate`.
    pub adaptive_threshold: Option<f64>,
    /// How many closed intervals the analyzer folds into one TCM round.
    pub intervals_per_round: u32,
    /// Keep the raw OAL stream at the master (memory-heavy; used by the page-grain
    /// baseline analysis and by Fig. 1-style offline comparisons).
    pub record_oals: bool,
    /// Exponential decay of the cumulative TCM per round (`None` = never forget).
    /// A windowed map follows workloads whose sharing patterns change over time.
    pub tcm_decay: Option<f64>,
    /// Stack sampling, if enabled.
    pub stack: Option<StackSamplingConfig>,
    /// Sticky-set footprinting, if enabled.
    pub footprint: Option<FootprintConfig>,
    /// Landmark tolerance `t` (> 1) of sticky-set resolution (Section III.A.3).
    pub tolerance_t: f64,
    /// Deadline-based TCM round close for lossy networks: round `r` closes as soon as
    /// the fastest thread's interval watermark reaches `(r+1)·intervals_per_round`
    /// plus this many grace intervals, even if slower (or dead) threads never report.
    /// `None` keeps the fault-free wait-for-all-watermarks behavior.
    pub round_deadline_intervals: Option<u64>,
    /// Minimum fraction of expected (thread, interval) OALs a round must have
    /// received for the adaptive controller to act on it; rounds below the threshold
    /// still fold into the TCM but skip rate adaptation (a lossy round would look
    /// artificially different from its predecessor and trigger spurious refinement).
    pub min_round_coverage: f64,
    /// Number of shards the master's TCM reducer spreads round closes over (Section
    /// V's distributed deduction). `1` (the default) keeps the centralized serial
    /// reducer; any value yields bit-identical maps, larger values let big rounds
    /// close on parallel OS threads.
    pub tcm_shards: usize,
    /// Snapshot the coordinator's profiling state (`ProfilerCheckpoint`) every this
    /// many closed TCM rounds, so a crashed master restarts from the snapshot and
    /// replays only post-checkpoint OALs. `None` disables checkpointing: a master
    /// crash then replays the full OAL history from round zero.
    pub checkpoint_every_rounds: Option<u64>,
    /// Quarantine a node out of the round-coverage denominator once it has crashed
    /// more than this many times, so a flapping node cannot keep every round below
    /// `min_round_coverage` and starve adaptive convergence. `None` never expels.
    pub quarantine_after_crashes: Option<u32>,
    /// Fanout of the k-ary TCM aggregation tree. `0` (the default) keeps the flat
    /// coordinator: every thread ships its raw OAL to the master. Any value ≥ 2
    /// turns on distributed reduction — each node pre-reduces its own threads'
    /// OALs, partials shuffle to per-object owners and merge up a k-ary tree of
    /// nodes, and the master folds at most `fanout` subtree partials per round.
    /// (`1` is rejected: a unary chain aggregates nothing.)
    pub tcm_tree_fanout: usize,
    /// Cumulative-map storage at the coordinator. [`TcmBackend::Sketch`] requires
    /// tree mode (`tcm_tree_fanout ≥ 2`): the sketch folds the merged sparse
    /// round stream, which only the tree path produces.
    pub tcm_backend: TcmBackend,
    /// Size of the streaming top-correlated-pairs view maintained at the master
    /// and exported through `MasterOutput::top_pairs` (0 disables). Under the
    /// sketch backend this head is the exact state; the tail lives in the sketch.
    pub tcm_top_k: usize,
    /// SLO on the profiler's own cost, as a fraction of charged compute time
    /// (e.g. `Some(0.02)` = "profiling may consume at most 2% of the work it
    /// observes"). When the per-round measured cost fraction exceeds the budget,
    /// the budget controller walks a deterministic degradation ladder — coarsen
    /// the hottest class's rate, merge rounds, summary-only OALs — instead of
    /// refining. Requires `adaptive_threshold` (the budget loop shares the
    /// controller). `None` keeps the accuracy-only controller bit-identical to
    /// previous releases.
    pub overhead_budget: Option<f64>,
    /// Bound the master's OAL mailbox to this many queued envelopes; senders that
    /// find it full shed per `shed_policy` instead of growing the queue. `None`
    /// keeps the legacy unbounded mailbox.
    pub oal_mailbox_capacity: Option<usize>,
    /// What a thread does with pending OAL batches when the bounded mailbox is
    /// full. Ignored unless `oal_mailbox_capacity` is set.
    pub shed_policy: ShedPolicy,
    /// Post-convergence drift watching: a converged class whose per-round
    /// relative `E_ABS` distance spikes above this threshold (for
    /// `drift_hysteresis_rounds` consecutive trusted rounds) is un-converged and
    /// stepped one rate finer, so the profiler re-follows a workload phase
    /// change instead of reporting the pre-shift correlation picture forever.
    /// Must be at least `adaptive_threshold` (the gap is the hysteresis band).
    /// `None` keeps the historical frozen-forever behaviour, bit for bit.
    pub drift_threshold: Option<f64>,
    /// Consecutive trusted drifting rounds before a converged class re-activates
    /// (≥ 1). Ignored unless `drift_threshold` is set.
    pub drift_hysteresis_rounds: u32,
    /// Upper bound on drift re-activations per class (≥ 1); past it the class
    /// stays frozen. Ignored unless `drift_threshold` is set.
    pub drift_max_reactivations: u32,
    /// Gray-failure detection: demote a node to straggler once the EWMA of its
    /// per-round progress deficit (intervals advanced behind the cluster's
    /// fastest-progressing node between round closes) exceeds this; its
    /// unreported intervals are prorated out of round coverage (like a soft
    /// quarantine) until the EWMA recovers below half the threshold. `None`
    /// disables detection.
    pub straggler_lag_intervals: Option<f64>,
}

impl ProfilerConfig {
    /// Everything off — the "No Correl. Tracking" baseline columns.
    pub fn disabled() -> Self {
        ProfilerConfig {
            page_size: 4096,
            initial_rate: SamplingRate::Full,
            track_correlation: false,
            send_oals: false,
            full_trace: false,
            adaptive_threshold: None,
            intervals_per_round: 1,
            record_oals: false,
            tcm_decay: None,
            stack: None,
            footprint: None,
            tolerance_t: 2.0,
            round_deadline_intervals: None,
            min_round_coverage: 0.0,
            tcm_shards: 1,
            checkpoint_every_rounds: None,
            quarantine_after_crashes: None,
            tcm_tree_fanout: 0,
            tcm_backend: TcmBackend::Dense,
            tcm_top_k: 0,
            overhead_budget: None,
            oal_mailbox_capacity: None,
            shed_policy: ShedPolicy::DropOldestRound,
            drift_threshold: None,
            drift_hysteresis_rounds: 2,
            drift_max_reactivations: 8,
            straggler_lag_intervals: None,
        }
    }

    /// Correlation tracking at a fixed rate with OAL transfer (Table III columns).
    pub fn tracking_at(rate: SamplingRate) -> Self {
        ProfilerConfig {
            initial_rate: rate,
            track_correlation: true,
            send_oals: true,
            ..Self::disabled()
        }
    }

    /// Ground-truth full-trace profiling (the inherent pattern of Fig. 1a).
    pub fn ground_truth() -> Self {
        ProfilerConfig {
            track_correlation: true,
            send_oals: true,
            full_trace: true,
            ..Self::disabled()
        }
    }

    /// Check every field against its documented domain, naming the first
    /// offender. Called by the cluster builder (`try_build`) so an invalid
    /// user-supplied config is a typed error at build time — not an `assert!`
    /// panic mid-run when sticky-set resolution first dereferences
    /// `tolerance_t`.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |field: &'static str, value: String, requirement: &'static str| {
            Err(ConfigError {
                field,
                value,
                requirement,
            })
        };
        if !self.tolerance_t.is_finite() || self.tolerance_t <= 1.0 {
            return err(
                "tolerance_t",
                format!("{}", self.tolerance_t),
                "the landmark tolerance t must be a finite number exceeding 1",
            );
        }
        if self.page_size == 0 {
            return err("page_size", self.page_size.to_string(), "must be nonzero");
        }
        if self.intervals_per_round == 0 {
            return err(
                "intervals_per_round",
                self.intervals_per_round.to_string(),
                "a TCM round must span at least one interval",
            );
        }
        if let Some(t) = self.adaptive_threshold {
            if !t.is_finite() || t <= 0.0 {
                return err(
                    "adaptive_threshold",
                    format!("{t}"),
                    "the convergence threshold must be a finite number exceeding 0",
                );
            }
        }
        if !(0.0..=1.0).contains(&self.min_round_coverage) {
            return err(
                "min_round_coverage",
                format!("{}", self.min_round_coverage),
                "must be a fraction in [0, 1]",
            );
        }
        if let Some(d) = self.tcm_decay {
            if d.is_nan() || d <= 0.0 || d > 1.0 {
                return err(
                    "tcm_decay",
                    format!("{d}"),
                    "the per-round decay factor must lie in (0, 1]",
                );
            }
        }
        if self.tcm_shards == 0 {
            return err(
                "tcm_shards",
                self.tcm_shards.to_string(),
                "the reducer needs at least one shard",
            );
        }
        if self.checkpoint_every_rounds == Some(0) {
            return err(
                "checkpoint_every_rounds",
                "0".to_string(),
                "a checkpoint cadence of 0 rounds is meaningless; use None to disable",
            );
        }
        if self.tcm_tree_fanout == 1 {
            return err(
                "tcm_tree_fanout",
                "1".to_string(),
                "a unary aggregation chain reduces nothing; use 0 (flat) or a fanout of at least 2",
            );
        }
        if let TcmBackend::Sketch { width, depth } = self.tcm_backend {
            if width == 0 || depth == 0 {
                return err(
                    "tcm_backend",
                    format!("Sketch {{ width: {width}, depth: {depth} }}"),
                    "count-min dimensions must both be nonzero",
                );
            }
            if self.tcm_tree_fanout < 2 {
                return err(
                    "tcm_backend",
                    "Sketch".to_string(),
                    "the sketch backend folds the tree-merged round stream; set tcm_tree_fanout >= 2",
                );
            }
        }
        if let Some(b) = self.overhead_budget {
            if !b.is_finite() || b <= 0.0 || b > 1.0 {
                return err(
                    "overhead_budget",
                    format!("{b}"),
                    "the overhead budget is a fraction of charged compute in (0, 1]",
                );
            }
            if self.adaptive_threshold.is_none() {
                return err(
                    "overhead_budget",
                    format!("{b}"),
                    "the budget loop rides the adaptive controller; set adaptive_threshold",
                );
            }
        }
        if let Some(dt) = self.drift_threshold {
            let Some(at) = self.adaptive_threshold else {
                return err(
                    "drift_threshold",
                    format!("{dt}"),
                    "drift watching rides the adaptive controller; set adaptive_threshold",
                );
            };
            if !dt.is_finite() || dt < at {
                return err(
                    "drift_threshold",
                    format!("{dt}"),
                    "must be finite and at least adaptive_threshold (the gap is the hysteresis band)",
                );
            }
            if self.drift_hysteresis_rounds == 0 {
                return err(
                    "drift_hysteresis_rounds",
                    "0".to_string(),
                    "re-activation needs at least one drifting round; use 1 for no hysteresis",
                );
            }
            if self.drift_max_reactivations == 0 {
                return err(
                    "drift_max_reactivations",
                    "0".to_string(),
                    "a zero bound could never re-activate; use None drift_threshold to disable drift",
                );
            }
        }
        if self.oal_mailbox_capacity == Some(0) {
            return err(
                "oal_mailbox_capacity",
                "0".to_string(),
                "a zero-capacity mailbox could never accept mail; use None for unbounded",
            );
        }
        if let Some(lag) = self.straggler_lag_intervals {
            if !lag.is_finite() || lag <= 0.0 {
                return err(
                    "straggler_lag_intervals",
                    format!("{lag}"),
                    "the straggler lag threshold must be a finite number of intervals exceeding 0",
                );
            }
        }
        Ok(())
    }
}

impl Default for ProfilerConfig {
    fn default() -> Self {
        ProfilerConfig::tracking_at(SamplingRate::NX(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_switches() {
        let off = ProfilerConfig::disabled();
        assert!(!off.track_correlation && !off.send_oals && !off.full_trace);

        let track = ProfilerConfig::tracking_at(SamplingRate::NX(4));
        assert!(track.track_correlation && track.send_oals);
        assert_eq!(track.initial_rate, SamplingRate::NX(4));

        let truth = ProfilerConfig::ground_truth();
        assert!(truth.full_trace && truth.track_correlation);
    }

    #[test]
    fn presets_all_validate() {
        ProfilerConfig::disabled().validate().unwrap();
        ProfilerConfig::default().validate().unwrap();
        ProfilerConfig::ground_truth().validate().unwrap();
        ProfilerConfig::tracking_at(SamplingRate::NX(16)).validate().unwrap();
    }

    #[test]
    fn tree_and_sketch_modes_validate() {
        let tree = ProfilerConfig {
            tcm_tree_fanout: 4,
            tcm_top_k: 16,
            ..ProfilerConfig::default()
        };
        tree.validate().unwrap();
        let sketch = ProfilerConfig {
            tcm_backend: TcmBackend::default_sketch(),
            ..tree
        };
        sketch.validate().unwrap();
    }

    #[test]
    fn validation_names_the_offending_field_and_value() {
        let bad = ProfilerConfig {
            tolerance_t: 0.5,
            ..ProfilerConfig::default()
        };
        let e = bad.validate().unwrap_err();
        assert_eq!(e.field, "tolerance_t");
        let msg = e.to_string();
        assert!(msg.contains("tolerance_t"), "field named: {msg}");
        assert!(msg.contains("0.5"), "value echoed: {msg}");
        assert!(msg.contains("exceeding 1"), "requirement stated: {msg}");
    }

    #[test]
    fn tolerance_exactly_one_nan_and_infinity_are_rejected() {
        for t in [1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -3.0] {
            let bad = ProfilerConfig {
                tolerance_t: t,
                ..ProfilerConfig::default()
            };
            assert!(bad.validate().is_err(), "tolerance_t = {t} must be rejected");
        }
    }

    #[test]
    fn every_domain_check_fires() {
        let base = ProfilerConfig::default();
        let cases: Vec<(ProfilerConfig, &str)> = vec![
            (ProfilerConfig { page_size: 0, ..base }, "page_size"),
            (
                ProfilerConfig { intervals_per_round: 0, ..base },
                "intervals_per_round",
            ),
            (
                ProfilerConfig { adaptive_threshold: Some(0.0), ..base },
                "adaptive_threshold",
            ),
            (
                ProfilerConfig { adaptive_threshold: Some(f64::NAN), ..base },
                "adaptive_threshold",
            ),
            (
                ProfilerConfig { min_round_coverage: 1.5, ..base },
                "min_round_coverage",
            ),
            (
                ProfilerConfig { min_round_coverage: f64::NAN, ..base },
                "min_round_coverage",
            ),
            (ProfilerConfig { tcm_decay: Some(0.0), ..base }, "tcm_decay"),
            (ProfilerConfig { tcm_decay: Some(1.5), ..base }, "tcm_decay"),
            (ProfilerConfig { tcm_shards: 0, ..base }, "tcm_shards"),
            (
                ProfilerConfig { checkpoint_every_rounds: Some(0), ..base },
                "checkpoint_every_rounds",
            ),
            (
                ProfilerConfig { tcm_tree_fanout: 1, ..base },
                "tcm_tree_fanout",
            ),
            (
                ProfilerConfig {
                    tcm_tree_fanout: 2,
                    tcm_backend: TcmBackend::Sketch { width: 0, depth: 4 },
                    ..base
                },
                "tcm_backend",
            ),
            (
                ProfilerConfig {
                    tcm_backend: TcmBackend::default_sketch(),
                    ..base
                },
                "tcm_backend",
            ),
            (
                ProfilerConfig {
                    overhead_budget: Some(0.0),
                    adaptive_threshold: Some(0.05),
                    ..base
                },
                "overhead_budget",
            ),
            (
                ProfilerConfig {
                    overhead_budget: Some(1.5),
                    adaptive_threshold: Some(0.05),
                    ..base
                },
                "overhead_budget",
            ),
            (
                ProfilerConfig {
                    overhead_budget: Some(0.02),
                    adaptive_threshold: None,
                    ..base
                },
                "overhead_budget",
            ),
            (
                ProfilerConfig { oal_mailbox_capacity: Some(0), ..base },
                "oal_mailbox_capacity",
            ),
            (
                ProfilerConfig {
                    drift_threshold: Some(0.2),
                    adaptive_threshold: None,
                    ..base
                },
                "drift_threshold",
            ),
            (
                ProfilerConfig {
                    drift_threshold: Some(0.01),
                    adaptive_threshold: Some(0.05),
                    ..base
                },
                "drift_threshold",
            ),
            (
                ProfilerConfig {
                    drift_threshold: Some(f64::NAN),
                    adaptive_threshold: Some(0.05),
                    ..base
                },
                "drift_threshold",
            ),
            (
                ProfilerConfig {
                    drift_threshold: Some(0.2),
                    adaptive_threshold: Some(0.05),
                    drift_hysteresis_rounds: 0,
                    ..base
                },
                "drift_hysteresis_rounds",
            ),
            (
                ProfilerConfig {
                    drift_threshold: Some(0.2),
                    adaptive_threshold: Some(0.05),
                    drift_max_reactivations: 0,
                    ..base
                },
                "drift_max_reactivations",
            ),
            (
                ProfilerConfig {
                    straggler_lag_intervals: Some(f64::NAN),
                    ..base
                },
                "straggler_lag_intervals",
            ),
            (
                ProfilerConfig {
                    straggler_lag_intervals: Some(0.0),
                    ..base
                },
                "straggler_lag_intervals",
            ),
        ];
        for (cfg, field) in cases {
            assert_eq!(cfg.validate().unwrap_err().field, field);
        }
    }

    #[test]
    fn defaults_match_paper_constants() {
        let c = ProfilerConfig::default();
        assert_eq!(c.page_size, 4096);
        assert_eq!(StackSamplingConfig::default().gap_ns, 16_000_000);
        match FootprintConfig::default().mode {
            FootprintMode::Timer(ns) => assert_eq!(ns, 100_000_000),
            _ => panic!("default footprint mode should be the 100 ms timer"),
        }
        assert!(c.tolerance_t > 1.0);
    }
}
