//! Object Access Lists (Section II.A).
//!
//! Per thread and per HLRC interval, the profiler accumulates one [`Oal`]: the sampled
//! objects the thread (fault-)accessed, each with its gap-scaled amortized size. On
//! interval close the OAL is packed "along with the interval context ... into a jumbo
//! message to be sent to the central coordinator", piggybacked on lock/barrier traffic
//! when possible — we account it as asynchronous `OalBatch` traffic.

use serde::{Deserialize, Serialize};

use jessy_gos::{ClassId, ObjectId};
use jessy_net::ThreadId;

/// Wire bytes per OAL entry (object id + size, as in the paper).
pub const OAL_ENTRY_BYTES: usize = 8;
/// Wire bytes of the per-interval context (thread id, interval id, start/end PCs).
pub const OAL_CONTEXT_BYTES: usize = 16;

/// One logged access: a sampled object and its scaled amortized size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OalEntry {
    /// The accessed object.
    pub obj: ObjectId,
    /// Its class (the analyzer builds per-class sub-maps for the adaptive controller).
    pub class: ClassId,
    /// Gap-scaled amortized bytes (see `sampling` module docs on unbiasedness).
    pub bytes: u64,
}

/// One thread-interval's object access list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Oal {
    /// The logging thread.
    pub thread: ThreadId,
    /// The thread's interval counter value.
    pub interval: u64,
    /// Logged accesses (at most one per object thanks to the at-most-once property).
    pub entries: Vec<OalEntry>,
}

impl Oal {
    /// Serialized size on the wire.
    pub fn wire_bytes(&self) -> usize {
        OAL_CONTEXT_BYTES + self.entries.len() * OAL_ENTRY_BYTES
    }

    /// Total scaled bytes logged in this interval.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Collapse the list to one synthetic entry per class (bytes summed, sorted by
    /// class id), shedding object identity to cut wire bytes — the budget ladder's
    /// "summary-only" rung and the shed policies' last-resort payload. The synthetic
    /// object id is the class id with the top bit set, so summary entries of the same
    /// class from different threads still correlate in the TCM (class-grain
    /// correlation, the analogue of the paper's page-grain baseline).
    pub fn summarize(&self) -> Oal {
        let mut per_class: Vec<(ClassId, u64)> = Vec::new();
        for e in &self.entries {
            match per_class.iter_mut().find(|(c, _)| *c == e.class) {
                Some((_, b)) => *b += e.bytes,
                None => per_class.push((e.class, e.bytes)),
            }
        }
        per_class.sort_unstable_by_key(|(c, _)| *c);
        Oal {
            thread: self.thread,
            interval: self.interval,
            entries: per_class
                .into_iter()
                .map(|(class, bytes)| OalEntry {
                    obj: ObjectId(class.0 as u32 | 0x8000_0000),
                    class,
                    bytes,
                })
                .collect(),
        }
    }

    /// Borrow this OAL as a zero-copy view.
    pub fn as_view(&self) -> OalRef<'_> {
        OalRef {
            thread: self.thread,
            interval: self.interval,
            entries: &self.entries,
        }
    }
}

/// A borrowed view of an OAL (or a per-shard slice of one): same context, entries
/// backed by someone else's buffer. Lets the sharded reducer split an OAL into shard
/// slices without allocating an owned [`Oal`] per slice.
#[derive(Debug, Clone, Copy)]
pub struct OalRef<'a> {
    /// The logging thread.
    pub thread: ThreadId,
    /// The thread's interval counter value.
    pub interval: u64,
    /// Logged accesses.
    pub entries: &'a [OalEntry],
}

impl OalRef<'_> {
    /// Serialized size on the wire (same accounting as [`Oal::wire_bytes`]).
    pub fn wire_bytes(&self) -> usize {
        OAL_CONTEXT_BYTES + self.entries.len() * OAL_ENTRY_BYTES
    }

    /// Materialize an owned [`Oal`] (clones the entries).
    pub fn to_owned(&self) -> Oal {
        Oal {
            thread: self.thread,
            interval: self.interval,
            entries: self.entries.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oal() -> Oal {
        Oal {
            thread: ThreadId(3),
            interval: 9,
            entries: vec![
                OalEntry {
                    obj: ObjectId(1),
                    class: ClassId(0),
                    bytes: 64,
                },
                OalEntry {
                    obj: ObjectId(2),
                    class: ClassId(0),
                    bytes: 128,
                },
            ],
        }
    }

    #[test]
    fn wire_bytes_count_context_and_entries() {
        assert_eq!(oal().wire_bytes(), 16 + 2 * 8);
        let empty = Oal {
            thread: ThreadId(0),
            interval: 0,
            entries: vec![],
        };
        assert_eq!(empty.wire_bytes(), 16);
        assert!(empty.is_empty());
    }

    #[test]
    fn total_bytes_sums_entries() {
        assert_eq!(oal().total_bytes(), 192);
    }

    #[test]
    fn summarize_collapses_to_sorted_per_class_entries() {
        let mut o = oal(); // two ClassId(0) entries: 64 + 128
        o.entries.push(OalEntry { obj: ObjectId(9), class: ClassId(2), bytes: 32 });
        let s = o.summarize();
        assert_eq!(s.thread, o.thread);
        assert_eq!(s.interval, o.interval);
        assert_eq!(s.entries.len(), 2, "one synthetic entry per class");
        assert_eq!(s.entries[0].class, ClassId(0));
        assert_eq!(s.entries[0].bytes, 192, "bytes preserved");
        assert_eq!(s.entries[0].obj, ObjectId(0x8000_0000), "synthetic id");
        assert_eq!(s.entries[1].obj, ObjectId(0x8000_0002));
        assert_eq!(s.total_bytes(), o.total_bytes());
        assert!(s.wire_bytes() <= o.wire_bytes(), "a summary never grows");
        // Summarizing a summary is a fixpoint.
        assert_eq!(s.summarize(), s);
    }
}
