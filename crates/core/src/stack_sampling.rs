//! Adaptive stack sampling (Section III.B, Fig. 7–8).
//!
//! Periodic snapshots of a thread's Java frames discover **stack-invariant
//! references**: slots that keep holding the same object reference across samples.
//! Invariants are the likely entry points of the thread's sticky set (a linked list's
//! head, a tree's root, a hash table's entry array).
//!
//! All four of the paper's optimizations are implemented:
//!
//! 1. **Timer-based sampling** — [`StackSampler::maybe_sample`] only fires when the
//!    simulated clock passed the configured gap; execution is otherwise overhead-free.
//! 2. **Two-phase scanning** — the top-down phase walks from the top frame to the
//!    first frame whose `visited` flag is set (only that one is compared; everything
//!    below is known untouched since its last sample, because any return through it
//!    would have pushed fresh unvisited frames). The bottom-up phase then captures the
//!    unvisited frames above it and sets their flags.
//! 3. **Lazy extraction** — a frame's first visit stores its slots in raw form; the
//!    reference-extraction work is spent only if the frame survives to a second visit.
//!    Temporary top frames never pay extraction. (The immediate-extraction baseline of
//!    Table V is available via [`crate::config::StackSamplingConfig::lazy_extraction`].)
//! 4. **Comparison by probing** — the old (smaller) sample probes the new frame; slots
//!    that changed are removed, so repeatedly compared frames shrink toward their
//!    invariant core.
//!
//! A slot is reported as **invariant** once it has survived at least one comparison,
//! i.e. it held the same reference in two samples separated by the timer gap.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use jessy_gos::{CostModel, ObjectId};
use jessy_net::{ClockHandle, SimNanos};
use jessy_stack::{JavaStack, Slot};

use crate::config::StackSamplingConfig;

/// One surviving (slot, reference) of a frame's sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RefSlot {
    slot: usize,
    obj: ObjectId,
}

#[derive(Debug, Clone)]
enum SampleState {
    /// Captured in native form; content not yet extracted (lazy mode, first visit).
    Raw(Vec<Slot>),
    /// Extracted reference slots, shrunk by successive probings.
    Extracted(Vec<RefSlot>),
}

#[derive(Debug, Clone)]
struct FrameRecord {
    state: SampleState,
    depth: usize,
    /// Comparisons survived (0 = sampled once, never compared).
    comparisons: u32,
}

/// A stack-invariant reference discovered by the sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackInvariant {
    /// Frame depth from the bottom (larger = nearer the top).
    pub depth: usize,
    /// Slot index within the frame.
    pub slot: usize,
    /// The invariant object reference.
    pub obj: ObjectId,
    /// Number of comparisons the reference survived.
    pub persistence: u32,
}

/// Counters for Table V's stack-sampling columns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StackSamplerStats {
    /// Samples actually taken (timer fires).
    pub samples: u64,
    /// Frames captured raw (lazy fast path).
    pub raw_captures: u64,
    /// Frames whose content was extracted.
    pub extractions: u64,
    /// Slots extracted in total.
    pub slots_extracted: u64,
    /// Slots compared by probing.
    pub slots_probed: u64,
    /// Samples discarded because their frame was popped before a second visit.
    pub discarded_samples: u64,
}

/// Per-thread stack sampler (Fig. 8's `SAMPLE-STACK`).
#[derive(Debug)]
pub struct StackSampler {
    config: StackSamplingConfig,
    last_sample: Option<SimNanos>,
    samples: HashMap<u64, FrameRecord>,
    stats: StackSamplerStats,
}

impl StackSampler {
    /// Sampler with the given configuration.
    pub fn new(config: StackSamplingConfig) -> Self {
        StackSampler {
            config,
            last_sample: None,
            samples: HashMap::new(),
            stats: StackSamplerStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> StackSamplingConfig {
        self.config
    }

    /// Counters so far.
    pub fn stats(&self) -> StackSamplerStats {
        self.stats
    }

    /// Timer check: samples the stack iff `gap_ns` simulated nanoseconds elapsed since
    /// the previous sample. Returns whether a sample was taken.
    pub fn maybe_sample(
        &mut self,
        stack: &mut JavaStack,
        clock: &ClockHandle,
        costs: &CostModel,
    ) -> bool {
        let now = clock.now();
        match self.last_sample {
            Some(last) if now.saturating_sub(last) < self.config.gap_ns => false,
            _ => {
                self.last_sample = Some(now);
                self.sample(stack, clock, costs);
                true
            }
        }
    }

    /// Unconditionally take one sample (Fig. 8).
    pub fn sample(&mut self, stack: &mut JavaStack, clock: &ClockHandle, costs: &CostModel) {
        self.stats.samples += 1;
        clock.spend(costs.stack_sample_entry_ns);
        let depth = stack.depth();
        if depth == 0 {
            self.gc(stack);
            return;
        }

        // --- Top-down phase: find the first visited frame from the top.
        let mut first_visited: Option<usize> = None;
        for i in (0..depth).rev() {
            if stack.frame(i).visited() {
                first_visited = Some(i);
                break;
            }
        }

        // --- Process the first visited frame: convert raw sample, compare by probing.
        if let Some(fv) = first_visited {
            let incarnation = stack.frame(fv).incarnation();
            if let Some(record) = self.samples.get_mut(&incarnation) {
                if let SampleState::Raw(slots) = &record.state {
                    // CONVERT-RAW-SAMPLE: extract reference slots from the *old* image.
                    let extracted: Vec<RefSlot> = slots
                        .iter()
                        .enumerate()
                        .filter_map(|(i, s)| s.as_ref_obj().map(|obj| RefSlot { slot: i, obj }))
                        .collect();
                    clock.spend(costs.frame_extract_slot_ns * slots.len() as u64);
                    self.stats.extractions += 1;
                    self.stats.slots_extracted += slots.len() as u64;
                    record.state = SampleState::Extracted(extracted);
                }
                // COMPARE-BY-PROBING: old sample probes the new frame; drop mismatches.
                if let SampleState::Extracted(refs) = &mut record.state {
                    let frame = stack.frame(fv);
                    clock.spend(costs.frame_probe_slot_ns * refs.len() as u64);
                    self.stats.slots_probed += refs.len() as u64;
                    refs.retain(|r| {
                        r.slot < frame.n_slots()
                            && frame.slot(r.slot).as_ref_obj() == Some(r.obj)
                    });
                    record.comparisons += 1;
                    record.depth = fv;
                }
            } else {
                // Visited flag without a sample (sampler attached mid-run): re-capture.
                self.capture(stack, fv, clock, costs);
            }
        }

        // --- Bottom-up phase: capture every unvisited frame above, set visited flags.
        let start = first_visited.map_or(0, |fv| fv + 1);
        for i in start..depth {
            self.capture(stack, i, clock, costs);
        }

        self.gc(stack);
    }

    fn capture(&mut self, stack: &mut JavaStack, i: usize, clock: &ClockHandle, costs: &CostModel) {
        let frame = stack.frame_mut(i);
        frame.set_visited(true);
        let incarnation = frame.incarnation();
        let state = if self.config.lazy_extraction {
            clock.spend(costs.frame_raw_capture_ns);
            self.stats.raw_captures += 1;
            SampleState::Raw(frame.slots().to_vec())
        } else {
            // Immediate extraction (Table V baseline): pay per-slot cost up front.
            clock.spend(costs.frame_extract_slot_ns * frame.n_slots() as u64);
            self.stats.extractions += 1;
            self.stats.slots_extracted += frame.n_slots() as u64;
            SampleState::Extracted(
                frame
                    .slots()
                    .iter()
                    .enumerate()
                    .filter_map(|(j, s)| s.as_ref_obj().map(|obj| RefSlot { slot: j, obj }))
                    .collect(),
            )
        };
        self.samples.insert(
            incarnation,
            FrameRecord {
                state,
                depth: i,
                comparisons: 0,
            },
        );
    }

    /// Discard samples of popped frames ("if it is not visited for the second time, it
    /// will be discarded on the next stack sampling").
    fn gc(&mut self, stack: &JavaStack) {
        let live: std::collections::HashSet<u64> =
            stack.frames().map(|f| f.incarnation()).collect();
        let before = self.samples.len();
        self.samples.retain(|inc, _| live.contains(inc));
        self.stats.discarded_samples += (before - self.samples.len()) as u64;
    }

    /// The invariant references discovered so far, ordered **topmost-first** (the
    /// resolution heuristic of Section III.A.3: top invariants are more recent).
    pub fn invariants(&self) -> Vec<StackInvariant> {
        let mut out: Vec<StackInvariant> = self
            .samples
            .values()
            .filter(|r| r.comparisons >= 1)
            .flat_map(|r| {
                let refs: &[RefSlot] = match &r.state {
                    SampleState::Extracted(refs) => refs,
                    SampleState::Raw(_) => &[],
                };
                refs.iter()
                    .map(|rs| StackInvariant {
                        depth: r.depth,
                        slot: rs.slot,
                        obj: rs.obj,
                        persistence: r.comparisons,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by(|a, b| b.depth.cmp(&a.depth).then(a.slot.cmp(&b.slot)));
        out
    }

    /// Live per-frame samples (diagnostics).
    pub fn live_samples(&self) -> usize {
        self.samples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jessy_net::{ClockBoard, ThreadId};
    use jessy_stack::{MethodId, Slot};

    fn setup() -> (JavaStack, ClockHandle, CostModel) {
        (
            JavaStack::new(),
            ClockBoard::new(1).handle(ThreadId(0)),
            CostModel::pentium4_2ghz(),
        )
    }

    fn sampler() -> StackSampler {
        StackSampler::new(StackSamplingConfig {
            gap_ns: 1_000_000,
            lazy_extraction: true,
        })
    }

    #[test]
    fn invariant_surviving_two_samples_is_reported() {
        let (mut stack, clock, costs) = setup();
        let mut s = sampler();
        stack.push_raw(MethodId(0), 3);
        stack.set_local(0, Slot::Ref(ObjectId(7)));
        stack.set_local(1, Slot::Prim(1));

        s.sample(&mut stack, &clock, &costs);
        assert!(s.invariants().is_empty(), "one sample proves nothing");

        s.sample(&mut stack, &clock, &costs);
        let inv = s.invariants();
        assert_eq!(inv.len(), 1);
        assert_eq!(inv[0].obj, ObjectId(7));
        assert_eq!(inv[0].slot, 0);
        assert_eq!(inv[0].persistence, 1);
    }

    #[test]
    fn changed_slots_are_dropped_by_probing() {
        let (mut stack, clock, costs) = setup();
        let mut s = sampler();
        stack.push_raw(MethodId(0), 2);
        stack.set_local(0, Slot::Ref(ObjectId(1)));
        stack.set_local(1, Slot::Ref(ObjectId(2)));

        s.sample(&mut stack, &clock, &costs);
        stack.set_local(1, Slot::Ref(ObjectId(99))); // slot 1 varies
        s.sample(&mut stack, &clock, &costs);

        let inv = s.invariants();
        assert_eq!(inv.len(), 1, "only the stable slot survives");
        assert_eq!(inv[0].obj, ObjectId(1));

        // A later change kills a previously-invariant slot too.
        stack.set_local(0, Slot::Ref(ObjectId(50)));
        s.sample(&mut stack, &clock, &costs);
        assert!(s.invariants().is_empty());
    }

    #[test]
    fn temporary_frames_never_pay_extraction() {
        let (mut stack, clock, costs) = setup();
        let mut s = sampler();
        stack.push_raw(MethodId(0), 4); // long-lived bottom frame
        stack.set_local(0, Slot::Ref(ObjectId(1)));
        s.sample(&mut stack, &clock, &costs);

        // Churn temporary top frames between samples.
        for i in 0..10 {
            stack.push_raw(MethodId(1), 6);
            stack.set_local(0, Slot::Ref(ObjectId(100 + i)));
            s.sample(&mut stack, &clock, &costs);
            stack.pop();
        }
        // One final sample so the last temporary's record is garbage-collected too.
        s.sample(&mut stack, &clock, &costs);
        let stats = s.stats();
        // Only the bottom frame was ever extracted (once, lazily, on its 2nd visit).
        assert_eq!(stats.extractions, 1);
        assert_eq!(stats.raw_captures, 11, "bottom once + 10 temporaries");
        assert_eq!(stats.discarded_samples, 10);
        assert_eq!(s.invariants().len(), 1);
    }

    #[test]
    fn two_phase_scan_skips_frames_below_first_visited() {
        let (mut stack, clock, costs) = setup();
        let mut s = sampler();
        stack.push_raw(MethodId(0), 1); // A (bottom)
        stack.frame_mut(0).set_slot(0, Slot::Ref(ObjectId(1)));
        stack.push_raw(MethodId(1), 1); // B
        stack.frame_mut(1).set_slot(0, Slot::Ref(ObjectId(2)));
        s.sample(&mut stack, &clock, &costs); // both captured raw

        // B (top) is the first visited: only B is compared; A stays raw forever while
        // B remains above it.
        s.sample(&mut stack, &clock, &costs);
        s.sample(&mut stack, &clock, &costs);
        let inv = s.invariants();
        assert_eq!(inv.len(), 1, "A never compared while covered: {inv:?}");
        assert_eq!(inv[0].obj, ObjectId(2));

        // Pop B: A becomes first-visited and gets its comparison.
        stack.pop();
        s.sample(&mut stack, &clock, &costs);
        let objs: Vec<ObjectId> = s.invariants().iter().map(|i| i.obj).collect();
        assert_eq!(objs, vec![ObjectId(1)]);
    }

    #[test]
    fn repushed_frame_is_a_fresh_incarnation() {
        let (mut stack, clock, costs) = setup();
        let mut s = sampler();
        stack.push_raw(MethodId(0), 1);
        stack.set_local(0, Slot::Ref(ObjectId(1)));
        s.sample(&mut stack, &clock, &costs);
        s.sample(&mut stack, &clock, &costs);
        assert_eq!(s.invariants().len(), 1);

        // Pop and re-push the same shape with the same slot value: history must reset.
        stack.pop();
        stack.push_raw(MethodId(0), 1);
        stack.set_local(0, Slot::Ref(ObjectId(1)));
        s.sample(&mut stack, &clock, &costs);
        assert!(
            s.invariants().is_empty(),
            "new incarnation starts from scratch"
        );
    }

    #[test]
    fn invariants_are_ordered_topmost_first() {
        let (mut stack, clock, costs) = setup();
        let mut s = sampler();
        for d in 0..3 {
            stack.push_raw(MethodId(d), 1);
            stack.set_local(0, Slot::Ref(ObjectId(d)));
        }
        // Repeated samples: the top frame gets compared each time; pop it and deeper
        // ones get compared too.
        s.sample(&mut stack, &clock, &costs);
        s.sample(&mut stack, &clock, &costs);
        stack.pop();
        s.sample(&mut stack, &clock, &costs);
        stack.pop();
        s.sample(&mut stack, &clock, &costs);
        let inv = s.invariants();
        assert_eq!(inv.len(), 1, "popped frames' samples are discarded: {inv:?}");
        assert_eq!(inv[0].obj, ObjectId(0));

        // Rebuild a two-deep stack and make both invariant.
        stack.push_raw(MethodId(1), 1);
        stack.set_local(0, Slot::Ref(ObjectId(1)));
        s.sample(&mut stack, &clock, &costs);
        stack.pop(); // compare deep frame again? No — keep both on stack:
        stack.push_raw(MethodId(1), 1);
        stack.set_local(0, Slot::Ref(ObjectId(1)));
        s.sample(&mut stack, &clock, &costs);
        s.sample(&mut stack, &clock, &costs);
        let inv = s.invariants();
        assert!(inv.len() >= 2);
        assert!(inv[0].depth > inv[1].depth, "topmost first: {inv:?}");
    }

    #[test]
    fn timer_gates_samples() {
        let (mut stack, clock, _) = setup();
        let costs = CostModel::free(); // so sampling itself doesn't advance the timer
        let mut s = sampler(); // 1 ms gap
        stack.push_raw(MethodId(0), 1);
        assert!(s.maybe_sample(&mut stack, &clock, &costs), "first always fires");
        assert!(!s.maybe_sample(&mut stack, &clock, &costs));
        clock.spend(999_999);
        assert!(!s.maybe_sample(&mut stack, &clock, &costs));
        clock.spend(1);
        assert!(s.maybe_sample(&mut stack, &clock, &costs));
        assert_eq!(s.stats().samples, 2);
    }

    #[test]
    fn immediate_extraction_pays_up_front() {
        let (mut stack, clock, costs) = setup();
        let mut s = StackSampler::new(StackSamplingConfig {
            gap_ns: 0,
            lazy_extraction: false,
        });
        stack.push_raw(MethodId(0), 5);
        stack.set_local(0, Slot::Ref(ObjectId(3)));
        s.sample(&mut stack, &clock, &costs);
        let stats = s.stats();
        assert_eq!(stats.extractions, 1);
        assert_eq!(stats.slots_extracted, 5);
        assert_eq!(stats.raw_captures, 0);
        // Invariant still requires a second sample.
        assert!(s.invariants().is_empty());
        s.sample(&mut stack, &clock, &costs);
        assert_eq!(s.invariants().len(), 1);
    }

    #[test]
    fn empty_stack_is_handled() {
        let (mut stack, clock, costs) = setup();
        let mut s = sampler();
        s.sample(&mut stack, &clock, &costs);
        assert_eq!(s.stats().samples, 1);
        assert!(s.invariants().is_empty());
    }
}
