//! The structured event vocabulary of the journal.
//!
//! Events carry plain integers (`u16` node ids, `u32` thread/object/class ids)
//! and strings so the crate sits below every other substrate. Variant names are
//! the wire vocabulary: they become the JSON-lines `kind` key and the Chrome
//! `trace_event` name, so renaming one is a format change.

use serde::{Deserialize, Serialize};

/// One journal entry: *what* happened ([`EventKind`]) plus the canonical-order
/// key *(t_ns, source, seq)* described in the crate docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Simulated nanoseconds on the emitting thread's clock.
    pub t_ns: u64,
    /// Stable emitter id: application threads `0..n_threads`, master `n_threads`.
    pub source: u32,
    /// Per-source sequence number assigned by the sink (program order).
    pub seq: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl TraceEvent {
    /// The canonical total-order key (see the determinism argument in the crate
    /// docs): simulated time, then source id, then the source's program order.
    #[inline]
    pub fn order_key(&self) -> (u64, u32, u64) {
        (self.t_ns, self.source, self.seq)
    }
}

/// Everything the runtime journals, spanning all four layers.
///
/// Net events are emitted by the fabric, GOS events by the protocol engine's
/// slow paths (never the hit lane), profiler events at interval boundaries, and
/// runtime events by the worker threads and the master daemon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EventKind {
    // ---------------------------------------------------------------- net
    /// A message was accounted on the fabric (after fault filtering).
    MessageSent {
        /// Sending node.
        from: u16,
        /// Receiving node.
        to: u16,
        /// Message class name (`MsgClass` Display form).
        class: String,
        /// Wire bytes including the class header.
        bytes: u64,
    },
    /// The fault injector dropped a message.
    MessageDropped {
        /// Sending node.
        from: u16,
        /// Receiving node.
        to: u16,
        /// Message class name.
        class: String,
    },
    /// The fault injector duplicated a message (both copies accounted).
    MessageDuplicated {
        /// Sending node.
        from: u16,
        /// Receiving node.
        to: u16,
        /// Message class name.
        class: String,
    },
    /// The fault injector stalled/delayed a message beyond model latency.
    MessageDelayed {
        /// Sending node.
        from: u16,
        /// Receiving node.
        to: u16,
        /// Message class name.
        class: String,
        /// Extra simulated delay charged, beyond the latency model.
        extra_ns: u64,
    },
    /// A partition window severed this message's link (one-way traffic lost to
    /// the cut; synchronous traffic paid retransmit cycles instead).
    MessagePartitioned {
        /// Sending node.
        from: u16,
        /// Receiving node.
        to: u16,
        /// Message class name.
        class: String,
    },
    // ---------------------------------------------------------------- gos
    /// A real object fault (cold miss or invalidated copy refetched from home).
    ObjectFault {
        /// Faulting object id.
        obj: u32,
        /// Its class id.
        class: u32,
        /// Home node serving the fetch.
        home: u16,
        /// Node the faulting thread runs on.
        node: u16,
        /// Payload bytes fetched.
        bytes: u64,
    },
    /// A profiler-armed false-invalid trap fired (correlation fault).
    FalseInvalidTrap {
        /// Trapping object id.
        obj: u32,
        /// Its class id.
        class: u32,
        /// Node the thread runs on.
        node: u16,
    },
    /// An object's home was relocated.
    HomeMigration {
        /// Migrated object id.
        obj: u32,
        /// Old home node.
        from: u16,
        /// New home node.
        to: u16,
    },
    /// Write notices were applied at an acquire (version-based invalidation).
    NoticesApplied {
        /// Applying thread.
        thread: u32,
        /// Number of notices processed.
        count: u64,
    },
    // ---------------------------------------------------------------- core
    /// A thread opened a new profiling interval.
    IntervalOpened {
        /// The thread.
        thread: u32,
        /// Interval number (per-thread, monotonic).
        interval: u64,
    },
    /// A thread closed a profiling interval and produced an OAL.
    IntervalClosed {
        /// The thread.
        thread: u32,
        /// Interval number just closed.
        interval: u64,
        /// OAL entries recorded during the interval.
        entries: u64,
    },
    /// The adaptive controller changed a class's sampling rate.
    RateChanged {
        /// Coordinator round the change applied in.
        round: u64,
        /// Class name.
        class: String,
        /// New rate label (e.g. `"1/2X"`).
        new_rate: String,
        /// The relative TCM distance that justified the change.
        relative_distance: f64,
    },
    /// A class's TCM was declared converged by the controller.
    ClassConverged {
        /// Coordinator round.
        round: u64,
        /// Class name.
        class: String,
    },
    /// A converged class's map drifted past the drift threshold and the
    /// controller un-converged it (stepping it one rate finer). The class is
    /// live again; its eventual re-convergence emits a fresh `ClassConverged`,
    /// so the journal distance between the two bounds the re-convergence lag.
    ClassDrifted {
        /// Coordinator round the re-activation applied in.
        round: u64,
        /// Class name.
        class: String,
        /// The relative TCM distance that tripped the drift detector.
        relative_distance: f64,
        /// The finer rate the class re-activated at.
        new_rate: String,
    },
    // ---------------------------------------------------------------- runtime
    /// The coordinator closed a TCM round.
    RoundClosed {
        /// Round number.
        round: u64,
        /// OAL batches folded into the round.
        oals: u64,
        /// Fraction of expected OALs that arrived.
        coverage: f64,
        /// The round was forced closed by the deadline.
        deadline_hit: bool,
    },
    /// A pre-reduced TCM partial crossed one edge of the aggregation tree
    /// (tree mode only; the shuffle and every parent hop each emit one).
    TcmPartialShipped {
        /// Round number.
        round: u64,
        /// Sending node.
        from: u16,
        /// Receiving node (the parent, or node 0 = the master).
        to: u16,
        /// Sparse cells (or shuffled object records) carried.
        cells: u64,
        /// Modeled wire bytes.
        bytes: u64,
    },
    /// The controller skipped rate adaptation for a low-coverage round.
    RoundSkipped {
        /// Round number.
        round: u64,
        /// Observed coverage.
        coverage: f64,
        /// Configured floor it fell below.
        min_coverage: f64,
    },
    /// The coordinator persisted a profiler checkpoint.
    CheckpointTaken {
        /// Rounds closed at checkpoint time.
        round: u64,
        /// Coordinator epoch.
        epoch: u64,
    },
    /// The coordinator restored from its latest checkpoint after a crash.
    MasterRestored {
        /// The new (bumped) epoch.
        epoch: u64,
        /// OAL batches replayed from the post-checkpoint log.
        replayed: u64,
    },
    /// A crashed node suppressed an OAL send while down.
    CrashSuppressed {
        /// The down node.
        node: u16,
        /// The thread whose OAL was suppressed.
        thread: u32,
        /// The interval it covered.
        interval: u64,
    },
    /// A restarted node re-entered the cluster via the rejoin handshake.
    NodeRejoined {
        /// The rejoining node.
        node: u16,
        /// The thread driving the handshake.
        thread: u32,
        /// Coordinator epoch adopted on rejoin.
        epoch: u64,
    },
    /// A flapping node was quarantined out of the coverage denominator.
    NodeQuarantined {
        /// The quarantined node.
        node: u16,
        /// Crash count that tripped the threshold.
        crashes: u32,
    },
    /// A thread migrated between nodes.
    ThreadMigrated {
        /// The migrating thread.
        thread: u32,
        /// Origin node.
        from: u16,
        /// Destination node.
        to: u16,
        /// Sticky-set objects prefetched at the destination.
        prefetched: u64,
    },
    /// An OAL could not be posted to the master mailbox and its interval's
    /// samples are lost to the profile (the degradation path of
    /// `RunReport::oal_post_failures`).
    OalPostFailed {
        /// The thread whose OAL was lost.
        thread: u32,
        /// The interval it covered.
        interval: u64,
    },
    /// An OAL batch was deferred across an active partition window; it ships
    /// after the heal (or becomes an `OalPostFailed` loss if the partition
    /// never heals).
    OalDeferred {
        /// The thread whose OAL was deferred.
        thread: u32,
        /// The interval it covers.
        interval: u64,
        /// Virtual nanosecond at which the cut is known to heal (`u64::MAX`
        /// for a permanent partition).
        heal_ns: u64,
    },
    /// A pending OAL batch was shed (dropped, merged, or summarized) because
    /// the master's bounded mailbox was full. The interval named is the one
    /// whose identity was lost; its samples are prorated out of round coverage.
    OalShed {
        /// The thread that shed the batch.
        thread: u32,
        /// The interval whose batch identity was shed.
        interval: u64,
        /// The shed policy's stable label (`ShedPolicy::label`).
        policy: String,
    },
    /// The overhead-budget controller took one degradation-ladder rung because
    /// the round's measured profiling cost exceeded the budget.
    BudgetDegraded {
        /// The over-budget round.
        round: u64,
        /// The rung taken (`DegradeStep::label`).
        step: String,
        /// The measured cost as a fraction of charged compute.
        cost_fraction: f64,
    },
    /// A node's interval-watermark lag EWMA crossed the straggler threshold:
    /// its unreported intervals are prorated out of round coverage until it
    /// recovers (gray-failure tolerance; softer than `NodeQuarantined`).
    StragglerDemoted {
        /// The lagging node.
        node: u16,
        /// The round the demotion took effect in.
        round: u64,
        /// The lag EWMA (in intervals) that tripped the threshold.
        lag_ewma: f64,
    },
    /// A demoted straggler's lag EWMA recovered below half the threshold and
    /// the node rejoined the coverage denominator.
    StragglerRestored {
        /// The recovered node.
        node: u16,
        /// The round the restoration took effect in.
        round: u64,
    },
    /// The placement engine closed a planning epoch at a round boundary and
    /// posted migration directives.
    PlacementPlanned {
        /// The round whose close triggered the plan.
        round: u64,
        /// The master epoch the directives are stamped with.
        epoch: u64,
        /// Directives issued by this plan.
        directives: u64,
        /// Intra-node correlation fraction before the plan, under the planning view.
        intra_before: f64,
        /// Intra-node correlation fraction the plan targets.
        intra_after: f64,
    },
    /// A thread honoured a migration directive at its barrier safe point.
    MigrationApplied {
        /// The migrated thread.
        thread: u32,
        /// Origin node.
        from: u16,
        /// Destination node.
        to: u16,
        /// The master epoch the directive carried.
        epoch: u64,
        /// Context + prefetched sticky-set bytes moved.
        bytes: u64,
    },
    /// A migration directive carried a stale master epoch (planned before a
    /// crash/restore) and was dropped at the barrier instead of applied —
    /// the placement analogue of OAL epoch fencing.
    DirectiveFenced {
        /// The thread that fenced its directive.
        thread: u32,
        /// The epoch the directive was stamped with.
        directive_epoch: u64,
        /// The master epoch current at the barrier.
        current_epoch: u64,
    },
}

impl EventKind {
    /// The stable event name (the enum variant name): journal `kind` key and
    /// Chrome `trace_event` name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::MessageSent { .. } => "MessageSent",
            EventKind::MessageDropped { .. } => "MessageDropped",
            EventKind::MessageDuplicated { .. } => "MessageDuplicated",
            EventKind::MessageDelayed { .. } => "MessageDelayed",
            EventKind::MessagePartitioned { .. } => "MessagePartitioned",
            EventKind::ObjectFault { .. } => "ObjectFault",
            EventKind::FalseInvalidTrap { .. } => "FalseInvalidTrap",
            EventKind::HomeMigration { .. } => "HomeMigration",
            EventKind::NoticesApplied { .. } => "NoticesApplied",
            EventKind::IntervalOpened { .. } => "IntervalOpened",
            EventKind::IntervalClosed { .. } => "IntervalClosed",
            EventKind::RateChanged { .. } => "RateChanged",
            EventKind::ClassConverged { .. } => "ClassConverged",
            EventKind::ClassDrifted { .. } => "ClassDrifted",
            EventKind::RoundClosed { .. } => "RoundClosed",
            EventKind::TcmPartialShipped { .. } => "TcmPartialShipped",
            EventKind::RoundSkipped { .. } => "RoundSkipped",
            EventKind::CheckpointTaken { .. } => "CheckpointTaken",
            EventKind::MasterRestored { .. } => "MasterRestored",
            EventKind::CrashSuppressed { .. } => "CrashSuppressed",
            EventKind::NodeRejoined { .. } => "NodeRejoined",
            EventKind::NodeQuarantined { .. } => "NodeQuarantined",
            EventKind::ThreadMigrated { .. } => "ThreadMigrated",
            EventKind::OalPostFailed { .. } => "OalPostFailed",
            EventKind::OalDeferred { .. } => "OalDeferred",
            EventKind::OalShed { .. } => "OalShed",
            EventKind::BudgetDegraded { .. } => "BudgetDegraded",
            EventKind::StragglerDemoted { .. } => "StragglerDemoted",
            EventKind::StragglerRestored { .. } => "StragglerRestored",
            EventKind::PlacementPlanned { .. } => "PlacementPlanned",
            EventKind::MigrationApplied { .. } => "MigrationApplied",
            EventKind::DirectiveFenced { .. } => "DirectiveFenced",
        }
    }
}
