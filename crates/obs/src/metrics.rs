//! The unified metrics registry.
//!
//! The workspace grew four ad-hoc counter structs (`NetworkStats`,
//! `ProtocolCounters`, `ProfilerStatsSnapshot` and the `MasterOutput` scalars).
//! [`MetricsSnapshot`] flattens them behind one namespaced key space
//! (`"net.gos_bytes"`, `"proto.real_faults"`, `"profiler.intervals_closed"`,
//! `"master.rounds"`, …) with a uniform snapshot/diff/merge API, so reports,
//! benches and tests stop hand-rolling per-struct `since`/`merge` variants.
//!
//! Keys live in a `BTreeMap`, so iteration — and therefore serialization — is
//! always in sorted key order: a snapshot of a deterministic run serializes
//! bit-identically.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A point-in-time flattening of every counter the runtime exposes, keyed by
/// `"<layer>.<counter>"` names.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    values: BTreeMap<String, u64>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set `key` to `value` (inserting or overwriting).
    pub fn set(&mut self, key: impl Into<String>, value: u64) {
        self.values.insert(key.into(), value);
    }

    /// Add `value` onto `key` (inserting at `value` if absent).
    pub fn add(&mut self, key: impl Into<String>, value: u64) {
        *self.values.entry(key.into()).or_insert(0) += value;
    }

    /// The value at `key`, defaulting to 0 for unknown keys.
    pub fn get(&self, key: &str) -> u64 {
        self.values.get(key).copied().unwrap_or(0)
    }

    /// Number of registered keys.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no key is registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate `(key, value)` in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Counters accumulated since `earlier`: per-key saturating subtraction over
    /// the union of both key sets (a key absent from `earlier` counts from 0).
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::new();
        for (k, v) in &self.values {
            out.set(k.clone(), v.saturating_sub(earlier.get(k)));
        }
        for k in earlier.values.keys() {
            if !self.values.contains_key(k) {
                out.set(k.clone(), 0);
            }
        }
        out
    }

    /// Fold `other` into `self`, summing shared keys (aggregation across nodes
    /// or runs).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.values {
            self.add(k.clone(), *v);
        }
    }

    /// Sum of every value under a `"prefix."` namespace (e.g. total of all
    /// `"net."` counters).
    pub fn namespace_total(&self, prefix: &str) -> u64 {
        self.values
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_covers_the_union_of_keys() {
        let mut a = MetricsSnapshot::new();
        a.set("net.bytes", 100);
        a.set("proto.faults", 5);
        let mut b = MetricsSnapshot::new();
        b.set("net.bytes", 250);
        b.set("master.rounds", 3);
        let d = b.since(&a);
        assert_eq!(d.get("net.bytes"), 150);
        assert_eq!(d.get("master.rounds"), 3);
        assert_eq!(d.get("proto.faults"), 0, "keys that vanished clamp to zero");
    }

    #[test]
    fn merge_sums_and_namespace_total_scopes() {
        let mut a = MetricsSnapshot::new();
        a.set("net.bytes", 1);
        a.set("net.msgs", 2);
        let mut b = MetricsSnapshot::new();
        b.set("net.bytes", 10);
        b.set("proto.faults", 7);
        a.merge(&b);
        assert_eq!(a.get("net.bytes"), 11);
        assert_eq!(a.namespace_total("net."), 13);
        assert_eq!(a.namespace_total("proto."), 7);
    }

    #[test]
    fn serialization_is_key_sorted() {
        let mut a = MetricsSnapshot::new();
        a.set("z.last", 1);
        a.set("a.first", 2);
        let json = serde_json::to_string(&a).unwrap();
        assert!(
            json.find("a.first").unwrap() < json.find("z.last").unwrap(),
            "BTreeMap keys serialize in sorted order: {json}"
        );
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}
