//! Post-hoc journal mining — per-class waste and drift spans.
//!
//! The journal records every slow-path the GOS took; this module folds those
//! events into the two summaries the profiling loop is supposed to shrink:
//!
//! * **[`WasteReport`]** — per-class memory/communication waste, the paper's
//!   motivation for correlation-aware placement. Three kinds are mined from
//!   [`EventKind::ObjectFault`] and [`EventKind::FalseInvalidTrap`]:
//!   *replication* (the same object materialized on several nodes — each
//!   distinct node beyond the first is a replica copy), *duplication* (the
//!   same node refetching an object it already held — invalidation churn),
//!   and *false-invalid traps* (pure profiler overhead on correlation
//!   faults). Bytes are attributed from the fault payloads.
//! * **[`drift_spans`]** — the un-converge → re-converge windows of the
//!   adaptive controller. A [`EventKind::ClassDrifted`] opens a span; the
//!   next [`EventKind::ClassConverged`] for the same class closes it, and
//!   the round distance between the two is the re-convergence lag the
//!   phase-shift bench reports. An unclosed span (drift near run end) keeps
//!   `reconverged_round = None`.
//!
//! Everything here keys on the raw `u32` class ids the events carry; name
//! resolution belongs to callers that hold the class table.

use std::collections::{BTreeMap, HashMap, HashSet};

use serde::{Deserialize, Serialize};

use crate::event::{EventKind, TraceEvent};

/// Mined waste for one object class.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassWaste {
    /// Class id (as carried by the GOS events).
    pub class: u32,
    /// Total object faults attributed to the class.
    pub faults: u64,
    /// Total payload bytes fetched across those faults.
    pub fault_bytes: u64,
    /// Objects of the class materialized on more than one distinct node.
    pub replica_objects: u64,
    /// Fetches that created a replica copy (each distinct fetching node
    /// beyond an object's first).
    pub replica_fetches: u64,
    /// Refetches of an object by a node that had already fetched it —
    /// invalidation churn ("duplicate" waste).
    pub duplicate_fetches: u64,
    /// Payload bytes of those duplicate refetches.
    pub duplicate_bytes: u64,
    /// False-invalid (correlation-fault) traps charged to the class.
    pub false_invalid_traps: u64,
}

/// Per-class waste mined from a journal, plus run-wide totals.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WasteReport {
    /// One row per class that faulted or trapped, ascending class id.
    pub classes: Vec<ClassWaste>,
    /// Sum of `fault_bytes` over all classes.
    pub total_fault_bytes: u64,
    /// Sum of `duplicate_bytes` over all classes.
    pub total_duplicate_bytes: u64,
    /// Sum of `false_invalid_traps` over all classes.
    pub total_false_invalid_traps: u64,
}

impl WasteReport {
    /// The row for `class`, if it appears in the report.
    pub fn class(&self, class: u32) -> Option<&ClassWaste> {
        self.classes.iter().find(|c| c.class == class)
    }
}

/// Fold a journal into a [`WasteReport`]. Events other than `ObjectFault` and
/// `FalseInvalidTrap` are ignored; order does not matter except that "first
/// fetch vs. refetch" is judged in slice order (use the canonical journal
/// order for meaningful duplicate counts).
pub fn analyze_waste(events: &[TraceEvent]) -> WasteReport {
    let mut rows: BTreeMap<u32, ClassWaste> = BTreeMap::new();
    // (obj -> set of nodes that fetched it), for replica detection.
    let mut fetchers: HashMap<u32, HashSet<u16>> = HashMap::new();
    // (node, obj) pairs already seen, for duplicate-refetch detection.
    let mut seen: HashSet<(u16, u32)> = HashSet::new();
    for ev in events {
        match &ev.kind {
            EventKind::ObjectFault { obj, class, node, bytes, .. } => {
                let row = rows.entry(*class).or_insert_with(|| ClassWaste {
                    class: *class,
                    ..ClassWaste::default()
                });
                row.faults += 1;
                row.fault_bytes += bytes;
                let nodes = fetchers.entry(*obj).or_default();
                let first_for_node = nodes.insert(*node);
                if first_for_node && nodes.len() > 1 {
                    row.replica_fetches += 1;
                    if nodes.len() == 2 {
                        row.replica_objects += 1;
                    }
                }
                if !seen.insert((*node, *obj)) {
                    row.duplicate_fetches += 1;
                    row.duplicate_bytes += bytes;
                }
            }
            EventKind::FalseInvalidTrap { class, .. } => {
                rows.entry(*class)
                    .or_insert_with(|| ClassWaste { class: *class, ..ClassWaste::default() })
                    .false_invalid_traps += 1;
            }
            _ => {}
        }
    }
    let classes: Vec<ClassWaste> = rows.into_values().collect();
    WasteReport {
        total_fault_bytes: classes.iter().map(|c| c.fault_bytes).sum(),
        total_duplicate_bytes: classes.iter().map(|c| c.duplicate_bytes).sum(),
        total_false_invalid_traps: classes.iter().map(|c| c.false_invalid_traps).sum(),
        classes,
    }
}

/// One un-converge → re-converge window of the adaptive controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftSpan {
    /// The drifted class (by journal name).
    pub class: String,
    /// Round the `ClassDrifted` re-activation applied in.
    pub drift_round: u64,
    /// The distance that tripped the detector.
    pub relative_distance: f64,
    /// Round of the next `ClassConverged` for the class, if the run lasted
    /// long enough to re-converge.
    pub reconverged_round: Option<u64>,
}

impl DriftSpan {
    /// Re-convergence lag in rounds, if the span closed.
    pub fn lag(&self) -> Option<u64> {
        self.reconverged_round
            .map(|r| r.saturating_sub(self.drift_round))
    }
}

/// Mine the drift spans of a journal, in drift order. Events must be in
/// canonical journal order (they are, in any exported journal).
pub fn drift_spans(events: &[TraceEvent]) -> Vec<DriftSpan> {
    let mut spans: Vec<DriftSpan> = Vec::new();
    for ev in events {
        match &ev.kind {
            EventKind::ClassDrifted { round, class, relative_distance, .. } => {
                spans.push(DriftSpan {
                    class: class.clone(),
                    drift_round: *round,
                    relative_distance: *relative_distance,
                    reconverged_round: None,
                });
            }
            EventKind::ClassConverged { round, class } => {
                if let Some(open) = spans
                    .iter_mut()
                    .rev()
                    .find(|s| s.class == *class && s.reconverged_round.is_none())
                {
                    open.reconverged_round = Some(*round);
                }
            }
            _ => {}
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fault(seq: u64, obj: u32, class: u32, node: u16, bytes: u64) -> TraceEvent {
        TraceEvent {
            t_ns: seq,
            source: 0,
            seq,
            kind: EventKind::ObjectFault { obj, class, home: 0, node, bytes },
        }
    }

    fn trap(seq: u64, obj: u32, class: u32, node: u16) -> TraceEvent {
        TraceEvent {
            t_ns: seq,
            source: 0,
            seq,
            kind: EventKind::FalseInvalidTrap { obj, class, node },
        }
    }

    #[test]
    fn replicas_duplicates_and_traps_are_attributed_per_class() {
        let events = vec![
            fault(0, 10, 1, 0, 64), // obj 10 first fetch (node 0)
            fault(1, 10, 1, 1, 64), // replica copy on node 1
            fault(2, 10, 1, 1, 64), // node 1 refetch: duplicate
            fault(3, 11, 1, 2, 64), // obj 11, single node: no waste
            fault(4, 20, 2, 0, 512), // class 2, lone fault
            trap(5, 10, 1, 1),
            trap(6, 10, 1, 0),
        ];
        let report = analyze_waste(&events);
        assert_eq!(report.classes.len(), 2);
        let c1 = report.class(1).unwrap();
        assert_eq!(c1.faults, 4);
        assert_eq!(c1.fault_bytes, 256);
        assert_eq!(c1.replica_objects, 1);
        assert_eq!(c1.replica_fetches, 1);
        assert_eq!(c1.duplicate_fetches, 1);
        assert_eq!(c1.duplicate_bytes, 64);
        assert_eq!(c1.false_invalid_traps, 2);
        let c2 = report.class(2).unwrap();
        assert_eq!(c2.faults, 1);
        assert_eq!(c2.replica_objects, 0);
        assert_eq!(c2.duplicate_fetches, 0);
        assert_eq!(report.total_fault_bytes, 768);
        assert_eq!(report.total_duplicate_bytes, 64);
        assert_eq!(report.total_false_invalid_traps, 2);
    }

    #[test]
    fn three_node_replica_counts_one_object_two_replica_fetches() {
        let events = vec![
            fault(0, 5, 3, 0, 32),
            fault(1, 5, 3, 1, 32),
            fault(2, 5, 3, 2, 32),
        ];
        let report = analyze_waste(&events);
        let c = report.class(3).unwrap();
        assert_eq!(c.replica_objects, 1, "one object, however many copies");
        assert_eq!(c.replica_fetches, 2, "two copies beyond the first node");
        assert_eq!(c.duplicate_fetches, 0);
    }

    #[test]
    fn drift_spans_pair_drift_with_the_next_convergence() {
        let mk = |seq: u64, kind: EventKind| TraceEvent { t_ns: seq, source: 9, seq, kind };
        let events = vec![
            mk(0, EventKind::ClassConverged { round: 2, class: "Cell".into() }),
            mk(1, EventKind::ClassDrifted {
                round: 7,
                class: "Cell".into(),
                relative_distance: 0.8,
                new_rate: "1/2X".into(),
            }),
            mk(2, EventKind::ClassConverged { round: 11, class: "Cell".into() }),
            mk(3, EventKind::ClassDrifted {
                round: 20,
                class: "Cell".into(),
                relative_distance: 0.5,
                new_rate: "1/4X".into(),
            }),
        ];
        let spans = drift_spans(&events);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].lag(), Some(4));
        assert_eq!(spans[1].reconverged_round, None, "unclosed span survives");
        assert_eq!(spans[1].lag(), None);
    }

    #[test]
    fn empty_journal_yields_empty_report() {
        let report = analyze_waste(&[]);
        assert!(report.classes.is_empty());
        assert_eq!(report.total_fault_bytes, 0);
        assert!(drift_spans(&[]).is_empty());
    }
}
