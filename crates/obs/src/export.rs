//! Journal exporters: JSON-lines and Chrome `trace_event`.
//!
//! Both exporters take a slice already in canonical order (what
//! [`crate::JournalSink::sorted_events`] returns) and are pure functions of it,
//! so their output inherits the journal's bit-identity guarantee.

use serde::{Serialize, Value};

use crate::event::{EventKind, TraceEvent};

/// Render the journal as JSON-lines: one event object per line, trailing
/// newline. This is the canonical on-disk journal format — bit-identical for a
/// zero-fault, same-seed run on any host.
pub fn to_json_lines(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&serde_json::to_string(ev).expect("journal events always serialize"));
        out.push('\n');
    }
    out
}

/// Parse a JSON-lines journal back into events (tooling / round-trip tests).
pub fn from_json_lines(s: &str) -> Result<Vec<TraceEvent>, serde_json::Error> {
    s.lines().map(serde_json::from_str::<TraceEvent>).collect()
}

/// The trace-viewer category for an event (its originating layer).
fn category(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::MessageSent { .. }
        | EventKind::MessageDropped { .. }
        | EventKind::MessageDuplicated { .. }
        | EventKind::MessageDelayed { .. }
        | EventKind::MessagePartitioned { .. } => "net",
        EventKind::ObjectFault { .. }
        | EventKind::FalseInvalidTrap { .. }
        | EventKind::HomeMigration { .. }
        | EventKind::NoticesApplied { .. } => "gos",
        EventKind::IntervalOpened { .. }
        | EventKind::IntervalClosed { .. }
        | EventKind::RateChanged { .. }
        | EventKind::ClassConverged { .. }
        | EventKind::ClassDrifted { .. } => "core",
        EventKind::RoundClosed { .. }
        | EventKind::TcmPartialShipped { .. }
        | EventKind::RoundSkipped { .. }
        | EventKind::CheckpointTaken { .. }
        | EventKind::MasterRestored { .. }
        | EventKind::CrashSuppressed { .. }
        | EventKind::NodeRejoined { .. }
        | EventKind::NodeQuarantined { .. }
        | EventKind::ThreadMigrated { .. }
        | EventKind::OalPostFailed { .. }
        | EventKind::OalDeferred { .. }
        | EventKind::OalShed { .. }
        | EventKind::BudgetDegraded { .. }
        | EventKind::StragglerDemoted { .. }
        | EventKind::StragglerRestored { .. }
        | EventKind::PlacementPlanned { .. }
        | EventKind::MigrationApplied { .. }
        | EventKind::DirectiveFenced { .. } => "runtime",
    }
}

/// The event's field payload as a JSON object (the derived encoding is
/// `{"VariantName": {fields...}}`; this unwraps to the inner fields object).
fn args_of(kind: &EventKind) -> Value {
    match kind.serialize_value() {
        Value::Object(pairs) if pairs.len() == 1 => pairs.into_iter().next().unwrap().1,
        other => other,
    }
}

fn base_record(name: &str, cat: &str, ph: &str, ts_us: f64, tid: u32) -> Vec<(String, Value)> {
    vec![
        ("name".to_string(), Value::Str(name.to_string())),
        ("cat".to_string(), Value::Str(cat.to_string())),
        ("ph".to_string(), Value::Str(ph.to_string())),
        ("ts".to_string(), Value::Float(ts_us)),
        ("pid".to_string(), Value::UInt(0)),
        ("tid".to_string(), Value::UInt(tid as u64)),
    ]
}

/// Render the journal in Chrome's `trace_event` JSON format (loadable in
/// `chrome://tracing` / Perfetto). Interval open/close pairs become `"X"`
/// complete events with a duration; everything else becomes a thread-scoped
/// `"i"` instant. Timestamps are simulated microseconds; `tid` is the source id
/// (application threads `0..n`, the master daemon `n`).
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    // Open-interval start times, keyed by (source, interval).
    let mut open: Vec<((u32, u64), u64)> = Vec::new();
    let mut records: Vec<Value> = Vec::new();

    for ev in events {
        let ts_us = ev.t_ns as f64 / 1000.0;
        match &ev.kind {
            EventKind::IntervalOpened { thread, interval } => {
                open.push(((*thread, *interval), ev.t_ns));
            }
            EventKind::IntervalClosed { thread, interval, .. } => {
                let key = (*thread, *interval);
                let start = match open.iter().rposition(|(k, _)| *k == key) {
                    Some(i) => open.swap_remove(i).1,
                    // A close with no recorded open (e.g. the run's first
                    // interval opens before tracing starts): zero-length slice.
                    None => ev.t_ns,
                };
                let mut rec = base_record(
                    "interval",
                    category(&ev.kind),
                    "X",
                    start as f64 / 1000.0,
                    ev.source,
                );
                rec.push((
                    "dur".to_string(),
                    Value::Float((ev.t_ns - start) as f64 / 1000.0),
                ));
                rec.push(("args".to_string(), args_of(&ev.kind)));
                records.push(Value::Object(rec));
            }
            kind => {
                let mut rec = base_record(kind.name(), category(kind), "i", ts_us, ev.source);
                rec.push(("s".to_string(), Value::Str("t".to_string())));
                rec.push(("args".to_string(), args_of(kind)));
                records.push(Value::Object(rec));
            }
        }
    }

    // Intervals still open at export time render as zero-length instants so no
    // event is silently dropped.
    for ((thread, interval), start) in open {
        let mut rec = base_record("interval(open)", "core", "i", start as f64 / 1000.0, thread);
        rec.push(("s".to_string(), Value::Str("t".to_string())));
        rec.push((
            "args".to_string(),
            Value::Object(vec![
                ("thread".to_string(), Value::UInt(thread as u64)),
                ("interval".to_string(), Value::UInt(interval)),
            ]),
        ));
        records.push(Value::Object(rec));
    }

    let doc = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(records)),
        (
            "displayTimeUnit".to_string(),
            Value::Str("ms".to_string()),
        ),
    ]);
    serde_json::to_string(&doc).expect("chrome trace always serializes")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                t_ns: 1_000,
                source: 0,
                seq: 0,
                kind: EventKind::IntervalOpened { thread: 0, interval: 0 },
            },
            TraceEvent {
                t_ns: 2_500,
                source: 0,
                seq: 1,
                kind: EventKind::IntervalClosed { thread: 0, interval: 0, entries: 4 },
            },
            TraceEvent {
                t_ns: 3_000,
                source: 2,
                seq: 0,
                kind: EventKind::RoundClosed {
                    round: 0,
                    oals: 2,
                    coverage: 1.0,
                    deadline_hit: false,
                },
            },
        ]
    }

    #[test]
    fn json_lines_round_trips() {
        let events = sample();
        let lines = to_json_lines(&events);
        assert_eq!(lines.lines().count(), events.len());
        assert_eq!(from_json_lines(&lines).unwrap(), events);
    }

    #[test]
    fn chrome_trace_pairs_intervals_into_complete_events() {
        let doc = to_chrome_trace(&sample());
        let v: Value = serde_json::from_str(&doc).unwrap();
        let trace_events = Value::field(v.as_object().unwrap(), "traceEvents")
            .as_array()
            .unwrap();
        // Open+close collapse into one "X" record; the round stays an instant.
        assert_eq!(trace_events.len(), 2);
        let x = trace_events[0].as_object().unwrap();
        let get = |k: &str| Value::field(x, k).clone();
        assert_eq!(get("ph"), Value::Str("X".to_string()));
        assert_eq!(get("ts"), Value::Float(1.0));
        assert_eq!(get("dur"), Value::Float(1.5));
        let i = trace_events[1].as_object().unwrap();
        let get = |k: &str| Value::field(i, k).clone();
        assert_eq!(get("ph"), Value::Str("i".to_string()));
        assert_eq!(get("name"), Value::Str("RoundClosed".to_string()));
    }

    #[test]
    fn unmatched_opens_are_not_dropped() {
        let events = vec![TraceEvent {
            t_ns: 7_000,
            source: 1,
            seq: 0,
            kind: EventKind::IntervalOpened { thread: 1, interval: 9 },
        }];
        let doc = to_chrome_trace(&events);
        let v: Value = serde_json::from_str(&doc).unwrap();
        let trace_events = Value::field(v.as_object().unwrap(), "traceEvents")
            .as_array()
            .unwrap();
        assert_eq!(trace_events.len(), 1);
    }
}
