//! Sinks: where emitted events go.
//!
//! Instrumentation sites hold an `Option<Arc<dyn TraceSink>>` and emit only when
//! one is installed, so a disabled run's cost is a never-taken `None` branch on
//! slow paths and *nothing at all* on the access-check hit lane (which has no
//! emission site). [`NullSink`] exists for overhead measurement — tracing "on"
//! with every event discarded; [`JournalSink`] is the real collector.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::event::{EventKind, TraceEvent};

/// Receiver of journal events. Implementations must tolerate concurrent `emit`
/// calls from every simulated thread plus the master daemon.
pub trait TraceSink: Send + Sync {
    /// Record one event stamped with the emitter's simulated clock and stable
    /// source id. The sink assigns any ordering metadata it needs.
    fn emit(&self, t_ns: u64, source: u32, kind: EventKind);
}

/// A sink that discards everything (overhead measurement / defaulting).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn emit(&self, _t_ns: u64, _source: u32, _kind: EventKind) {}
}

#[derive(Default)]
struct JournalInner {
    events: Vec<TraceEvent>,
    /// Next sequence number per source id (program order per emitter).
    next_seq: HashMap<u32, u64>,
}

/// The buffering journal: collects events in arrival order, assigns per-source
/// sequence numbers under its lock, and exports them in the canonical
/// `(t_ns, source, seq)` total order (see the crate-level determinism argument).
#[derive(Default)]
pub struct JournalSink {
    inner: Mutex<JournalInner>,
}

impl JournalSink {
    /// A fresh, empty journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh journal behind an `Arc`, ready to hand to a cluster builder.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the journal in canonical order (the journal keeps its
    /// contents).
    pub fn sorted_events(&self) -> Vec<TraceEvent> {
        let mut events = self.inner.lock().events.clone();
        events.sort_by_key(TraceEvent::order_key);
        events
    }

    /// Drain the journal, returning its contents in canonical order and
    /// resetting the per-source sequence counters.
    pub fn take(&self) -> Vec<TraceEvent> {
        let mut inner = self.inner.lock();
        let mut events = std::mem::take(&mut inner.events);
        inner.next_seq.clear();
        drop(inner);
        events.sort_by_key(TraceEvent::order_key);
        events
    }
}

impl TraceSink for JournalSink {
    fn emit(&self, t_ns: u64, source: u32, kind: EventKind) {
        let mut inner = self.inner.lock();
        let seq = {
            let slot = inner.next_seq.entry(source).or_insert(0);
            let seq = *slot;
            *slot += 1;
            seq
        };
        inner.events.push(TraceEvent {
            t_ns,
            source,
            seq,
            kind,
        });
    }
}

impl std::fmt::Debug for JournalSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JournalSink")
            .field("events", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_source_sequences_are_independent_and_in_program_order() {
        let sink = JournalSink::new();
        sink.emit(10, 0, EventKind::IntervalOpened { thread: 0, interval: 0 });
        sink.emit(5, 1, EventKind::IntervalOpened { thread: 1, interval: 0 });
        sink.emit(20, 0, EventKind::IntervalClosed { thread: 0, interval: 0, entries: 3 });
        let events = sink.sorted_events();
        assert_eq!(events.len(), 3);
        // Canonical order: t_ns first, regardless of arrival order.
        assert_eq!(events[0].order_key(), (5, 1, 0));
        assert_eq!(events[1].order_key(), (10, 0, 0));
        assert_eq!(events[2].order_key(), (20, 0, 1));
    }

    #[test]
    fn canonical_order_is_arrival_order_independent() {
        let a = JournalSink::new();
        let b = JournalSink::new();
        // Same per-source streams, interleaved differently across sinks.
        a.emit(7, 0, EventKind::NoticesApplied { thread: 0, count: 1 });
        a.emit(7, 1, EventKind::NoticesApplied { thread: 1, count: 2 });
        b.emit(7, 1, EventKind::NoticesApplied { thread: 1, count: 2 });
        b.emit(7, 0, EventKind::NoticesApplied { thread: 0, count: 1 });
        assert_eq!(a.sorted_events(), b.sorted_events());
    }

    #[test]
    fn take_drains_and_resets_sequences() {
        let sink = JournalSink::new();
        sink.emit(1, 3, EventKind::NodeQuarantined { node: 3, crashes: 4 });
        assert_eq!(sink.take().len(), 1);
        assert!(sink.is_empty());
        sink.emit(2, 3, EventKind::NodeQuarantined { node: 3, crashes: 5 });
        assert_eq!(sink.take()[0].seq, 0, "sequence counters restart after take");
    }
}
