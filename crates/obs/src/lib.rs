//! # jessy-obs — deterministic observability for the simulated DJVM
//!
//! The runtime's self-observation layer: a structured event journal keyed by
//! **simulated time**, a [`TraceSink`] trait with a no-op default so disabled runs
//! cost nothing on the hot paths, exporters (JSON-lines and Chrome `trace_event`),
//! and a unified [`MetricsSnapshot`] registry consolidating the workspace's ad-hoc
//! counter structs behind one snapshot/diff API.
//!
//! ## Determinism argument
//!
//! Every event is stamped with the emitting thread's simulated clock (`t_ns`) and
//! the emitter's stable source id (`source` — application threads `0..n`, the
//! master daemon `n`). The journal assigns each source a private sequence number
//! under the sink lock, so a source's events carry its own program order. The
//! canonical journal order is the total order `(t_ns, source, seq)`:
//!
//! * within one source, `seq` *is* program order, which is deterministic
//!   whenever the simulated thread's execution (and its clock) is;
//! * across sources, simulated time plus the source id break every tie without
//!   consulting wall-clock arrival order.
//!
//! Real OS-thread interleaving only changes the order events *enter* the sink,
//! never the canonical order they are exported in — so a zero-fault, same-seed
//! run whose per-thread execution is race-free (sequential runs, read-shared
//! workloads) produces a bit-identical journal on any host. Workloads subject
//! to the runtime's one pre-existing scheduling freedom (the LRC
//! fetch-vs-flush race) journal deterministically up to that race: the journal
//! reveals it, it does not add nondeterminism of its own.
//!
//! Nothing in this crate knows about objects, nodes or profiling types; events
//! carry plain integers and strings so every other crate can depend on it without
//! cycles.

#![warn(missing_docs)]

pub mod analyze;
pub mod event;
pub mod export;
pub mod metrics;
pub mod sink;

pub use analyze::{analyze_waste, drift_spans, ClassWaste, DriftSpan, WasteReport};
pub use event::{EventKind, TraceEvent};
pub use export::{to_chrome_trace, to_json_lines};
pub use metrics::MetricsSnapshot;
pub use sink::{JournalSink, NullSink, TraceSink};
