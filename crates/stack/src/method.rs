//! Method descriptors — the stand-in for Java's reflection system.
//!
//! The paper's frame-content extraction (Fig. 8, line 21) finds a frame's method by
//! native PC and asks for its layout ("slots"). Here a [`MethodId`] directly keys the
//! registry and the layout is just the slot count; slot *types* are dynamic (a slot
//! holds whatever the program last stored, as on a real Java frame where the verifier's
//! static types are erased at runtime).

use parking_lot::RwLock;
use std::fmt;

/// Identifies a registered method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId(pub u32);

impl MethodId {
    /// Raw index into the registry.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for MethodId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct MethodInfo {
    name: String,
    n_slots: usize,
}

/// Registry of methods and their frame layouts.
#[derive(Debug, Default)]
pub struct MethodRegistry {
    methods: RwLock<Vec<MethodInfo>>,
}

impl MethodRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a method whose frames have `n_slots` slots (args + locals).
    pub fn register(&self, name: &str, n_slots: usize) -> MethodId {
        let mut methods = self.methods.write();
        methods.push(MethodInfo {
            name: name.to_string(),
            n_slots,
        });
        MethodId((methods.len() - 1) as u32)
    }

    /// The method's name.
    pub fn name(&self, id: MethodId) -> String {
        self.methods.read()[id.index()].name.clone()
    }

    /// The method's frame slot count (its "layout").
    pub fn n_slots(&self, id: MethodId) -> usize {
        self.methods.read()[id.index()].n_slots
    }

    /// Number of registered methods.
    pub fn len(&self) -> usize {
        self.methods.read().len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_query() {
        let reg = MethodRegistry::new();
        let main = reg.register("main", 4);
        let step = reg.register("simulateStep", 9);
        assert_eq!(reg.name(main), "main");
        assert_eq!(reg.n_slots(step), 9);
        assert_eq!(reg.len(), 2);
        assert_ne!(main, step);
    }

    #[test]
    fn zero_slot_methods_are_allowed() {
        let reg = MethodRegistry::new();
        let m = reg.register("noop", 0);
        assert_eq!(reg.n_slots(m), 0);
    }
}
