//! The per-thread Java stack.

use crate::frame::{Frame, Slot};
use crate::method::{MethodId, MethodRegistry};

/// A thread's Java stack: frames indexed 0 = bottom (`main`-like), `depth()-1` = top.
#[derive(Debug, Default)]
pub struct JavaStack {
    frames: Vec<Frame>,
    next_incarnation: u64,
}

impl JavaStack {
    /// Empty stack.
    pub fn new() -> Self {
        Self::default()
    }

    /// Push a frame for `method` (its prologue clears the visited flag — that is,
    /// fresh frames are born unvisited). Returns the frame's incarnation id.
    pub fn push(&mut self, method: MethodId, registry: &MethodRegistry) -> u64 {
        let inc = self.next_incarnation;
        self.next_incarnation += 1;
        self.frames
            .push(Frame::new(method, registry.n_slots(method), inc));
        inc
    }

    /// Push a frame with an explicit slot count (tests / synthetic stacks).
    pub fn push_raw(&mut self, method: MethodId, n_slots: usize) -> u64 {
        let inc = self.next_incarnation;
        self.next_incarnation += 1;
        self.frames.push(Frame::new(method, n_slots, inc));
        inc
    }

    /// Pop the top frame (method return).
    ///
    /// # Panics
    /// If the stack is empty.
    pub fn pop(&mut self) -> Frame {
        self.frames.pop().expect("pop on empty stack")
    }

    /// Current depth.
    #[inline]
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// True if no frames are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frame at `depth_from_bottom` (0 = bottom).
    #[inline]
    pub fn frame(&self, depth_from_bottom: usize) -> &Frame {
        &self.frames[depth_from_bottom]
    }

    /// Mutable frame at `depth_from_bottom`.
    #[inline]
    pub fn frame_mut(&mut self, depth_from_bottom: usize) -> &mut Frame {
        &mut self.frames[depth_from_bottom]
    }

    /// The top frame (current method), if any.
    #[inline]
    pub fn top(&self) -> Option<&Frame> {
        self.frames.last()
    }

    /// Mutable top frame.
    #[inline]
    pub fn top_mut(&mut self) -> Option<&mut Frame> {
        self.frames.last_mut()
    }

    /// Convenience: store into a slot of the top frame.
    pub fn set_local(&mut self, slot: usize, v: Slot) {
        self.top_mut().expect("no frame").set_slot(slot, v);
    }

    /// Total context bytes (the direct thread-migration payload of Section III).
    pub fn context_bytes(&self) -> usize {
        self.frames.iter().map(|f| f.context_bytes()).sum()
    }

    /// Iterate frames bottom-up.
    pub fn frames(&self) -> impl Iterator<Item = &Frame> {
        self.frames.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jessy_gos::ObjectId;

    fn registry() -> (MethodRegistry, MethodId, MethodId) {
        let reg = MethodRegistry::new();
        let main = reg.register("main", 4);
        let work = reg.register("work", 2);
        (reg, main, work)
    }

    #[test]
    fn push_pop_and_depth() {
        let (reg, main, work) = registry();
        let mut s = JavaStack::new();
        assert!(s.is_empty());
        s.push(main, &reg);
        s.push(work, &reg);
        assert_eq!(s.depth(), 2);
        assert_eq!(s.top().unwrap().method(), work);
        assert_eq!(s.frame(0).method(), main);
        let popped = s.pop();
        assert_eq!(popped.method(), work);
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn incarnations_are_unique_across_push_pop_cycles() {
        let (reg, main, work) = registry();
        let mut s = JavaStack::new();
        s.push(main, &reg);
        let a = s.push(work, &reg);
        // Mark visited, pop, push again at the same depth.
        s.top_mut().unwrap().set_visited(true);
        s.pop();
        let b = s.push(work, &reg);
        assert_ne!(a, b, "re-pushed frame is a new incarnation");
        assert!(
            !s.top().unwrap().visited(),
            "prologue must clear the visited flag"
        );
    }

    #[test]
    fn set_local_targets_top_frame() {
        let (reg, main, work) = registry();
        let mut s = JavaStack::new();
        s.push(main, &reg);
        s.set_local(0, Slot::Ref(ObjectId(1)));
        s.push(work, &reg);
        s.set_local(0, Slot::Ref(ObjectId(2)));
        assert_eq!(s.frame(0).slot(0).as_ref_obj(), Some(ObjectId(1)));
        assert_eq!(s.frame(1).slot(0).as_ref_obj(), Some(ObjectId(2)));
    }

    #[test]
    fn context_bytes_sum_frames() {
        let (reg, main, work) = registry();
        let mut s = JavaStack::new();
        s.push(main, &reg); // 4 slots
        s.push(work, &reg); // 2 slots
        assert_eq!(s.context_bytes(), (4 * 8 + 16) + (2 * 8 + 16));
    }

    #[test]
    #[should_panic(expected = "pop on empty stack")]
    fn pop_empty_panics() {
        JavaStack::new().pop();
    }
}
