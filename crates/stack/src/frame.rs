//! Frames and slots.

use jessy_gos::ObjectId;

use crate::method::MethodId;

/// One stack slot: what a Java frame word can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// A valid object reference (the GC-pointer check of Fig. 8 is implicit here).
    Ref(ObjectId),
    /// A primitive value (int/float/… — opaque to the profiler).
    Prim(u64),
    /// Uninitialized / dead slot.
    Empty,
}

impl Slot {
    /// The object reference, if this slot holds one.
    #[inline]
    pub fn as_ref_obj(&self) -> Option<ObjectId> {
        match self {
            Slot::Ref(o) => Some(*o),
            _ => None,
        }
    }
}

/// One Java frame: a method, its slots, the JIT-cleared visited flag, and a unique
/// incarnation id distinguishing this push from any other frame ever pushed.
#[derive(Debug, Clone)]
pub struct Frame {
    method: MethodId,
    incarnation: u64,
    visited: bool,
    slots: Vec<Slot>,
}

impl Frame {
    /// Build a fresh frame (all slots [`Slot::Empty`], visited flag cleared — the
    /// method-prologue behaviour the paper patches into the JIT).
    pub fn new(method: MethodId, n_slots: usize, incarnation: u64) -> Self {
        Frame {
            method,
            incarnation,
            visited: false,
            slots: vec![Slot::Empty; n_slots],
        }
    }

    /// The method this frame executes.
    #[inline]
    pub fn method(&self) -> MethodId {
        self.method
    }

    /// Unique id of this frame incarnation.
    #[inline]
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Has the stack sampler already visited this frame since it was pushed?
    #[inline]
    pub fn visited(&self) -> bool {
        self.visited
    }

    /// Set/clear the visited flag (sampler bookkeeping).
    #[inline]
    pub fn set_visited(&mut self, v: bool) {
        self.visited = v;
    }

    /// Number of slots.
    #[inline]
    pub fn n_slots(&self) -> usize {
        self.slots.len()
    }

    /// Read a slot.
    #[inline]
    pub fn slot(&self, i: usize) -> Slot {
        self.slots[i]
    }

    /// Write a slot (the program storing an arg/local).
    #[inline]
    pub fn set_slot(&mut self, i: usize, v: Slot) {
        self.slots[i] = v;
    }

    /// All slots (for raw sample capture).
    #[inline]
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Bytes this frame occupies in a migrated thread context (8 bytes per slot plus a
    /// 16-byte frame header) — the *direct* migration cost of Section III.
    #[inline]
    pub fn context_bytes(&self) -> usize {
        self.slots.len() * 8 + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_frame_is_unvisited_and_empty() {
        let f = Frame::new(MethodId(0), 3, 7);
        assert!(!f.visited());
        assert_eq!(f.n_slots(), 3);
        assert_eq!(f.incarnation(), 7);
        assert!(f.slots().iter().all(|s| *s == Slot::Empty));
        assert_eq!(f.context_bytes(), 3 * 8 + 16);
    }

    #[test]
    fn slot_accessors() {
        let mut f = Frame::new(MethodId(1), 2, 0);
        f.set_slot(0, Slot::Ref(ObjectId(9)));
        f.set_slot(1, Slot::Prim(42));
        assert_eq!(f.slot(0).as_ref_obj(), Some(ObjectId(9)));
        assert_eq!(f.slot(1).as_ref_obj(), None);
        assert_eq!(f.slot(1), Slot::Prim(42));
    }

    #[test]
    #[should_panic]
    fn out_of_range_slot_panics() {
        let f = Frame::new(MethodId(0), 1, 0);
        let _ = f.slot(5);
    }
}
