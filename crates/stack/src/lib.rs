//! # jessy-stack — simulated Java thread stacks
//!
//! Section III.B of the paper samples a thread's Java stack to discover
//! **stack-invariant references** — slots that keep pointing at the same object across
//! samples and therefore mark the entry points of the thread's sticky set. The real
//! system walks Kaffe's native x86 frames (`%EBP`/`%EIP`), consults the method's slot
//! layout and asks the GC whether a slot holds a valid object pointer. We reproduce the
//! same *information structure* directly:
//!
//! * a [`MethodRegistry`] plays the role of Java's reflection system (method → slot
//!   layout, `GET-METHOD-BY-PC` in the paper's Fig. 8);
//! * a [`Frame`] holds typed [`Slot`]s (reference / primitive / empty), so "is this a
//!   valid object pointer" is a constructor-enforced fact instead of a GC query;
//! * every frame carries the **visited flag** that the paper's hacked JIT clears in
//!   each method prologue ([`JavaStack::push`] clears it), enabling the two-phase scan;
//! * frames also carry a unique **incarnation id** so tests can prove that a
//!   pop-then-push at the same depth is treated as a fresh frame.
//!
//! The stack is owned by its thread; the sampler (crate `jessy-core`) runs *on* the
//! thread at timer boundaries, exactly like the paper's sampling-enabled phases.


#![warn(missing_docs)]
pub mod frame;
pub mod method;
pub mod stack;

pub use frame::{Frame, Slot};
pub use method::{MethodId, MethodRegistry};
pub use stack::JavaStack;
