//! # jessy-bench — the benchmark harness
//!
//! One `cargo bench` target per table and figure of the paper's evaluation section
//! (see `benches/`), plus Criterion micro-benchmarks of the profiling primitives and
//! quality ablations of the design choices called out in DESIGN.md.
//!
//! This library holds the shared harness: problem-size scaling, workload drivers at a
//! given sampling rate, the paper's N/A logic for rate columns, and plain-text table
//! rendering.
//!
//! Scale selection: the `JESSY_SCALE` environment variable (`paper` or `small`,
//! default `paper` for tables run via `cargo bench`). Scaled-down runs preserve every
//! structural property; absolute byte/time magnitudes shrink.


#![warn(missing_docs)]
pub mod harness;
pub mod table;

pub use harness::{
    bh_cfg, dominant_class, rate_is_na, rate_ladder, run_tracked, run_tracked_tcm, scale,
    sor_cfg, water_cfg, RateRun, Scale,
};
pub use table::TextTable;
