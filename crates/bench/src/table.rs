//! Plain-text table rendering for the regenerated tables.

/// A simple aligned text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of string slices.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        let owned: Vec<String> = cells.iter().map(|s| s.to_string()).collect();
        self.row(&owned)
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let n = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut out = String::new();
            for i in 0..n {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i] - cells[i].len();
                // Right-align numeric-looking cells, left-align text.
                let numeric = cells[i]
                    .chars()
                    .next()
                    .map(|c| c.is_ascii_digit() || c == '-' || c == '+')
                    .unwrap_or(false);
                if numeric && i > 0 {
                    out.push_str(&" ".repeat(pad));
                    out.push_str(&cells[i]);
                } else {
                    out.push_str(&cells[i]);
                    out.push_str(&" ".repeat(pad));
                }
            }
            out.trim_end().to_string()
        };
        let mut out = render_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

/// Format a milliseconds value like the paper's tables: `"53844"` or `"52636"`.
pub fn ms(v: f64) -> String {
    format!("{v:.0}")
}

/// Format a percentage delta like the paper: `"(1.12%)"`, `"(-0.67%)"`.
pub fn pct(v: f64) -> String {
    format!("({v:.2}%)")
}

/// Format a value-with-overhead cell: `"53844 (1.12%)"`.
pub fn ms_pct(v: f64, p: f64) -> String {
    format!("{} {}", ms(v), pct(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = TextTable::new(&["Benchmark", "Time"]);
        t.row_strs(&["SOR", "24250"]);
        t.row_strs(&["Barnes-Hut", "53250"]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Benchmark"));
        assert!(lines[2].starts_with("SOR"));
        // Numbers right-aligned in their column.
        assert!(lines[2].ends_with("24250"));
        assert!(lines[3].ends_with("53250"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        TextTable::new(&["a", "b"]).row_strs(&["only one"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(24250.4), "24250");
        assert_eq!(pct(-0.666), "(-0.67%)");
        assert_eq!(ms_pct(100.0, 1.0), "100 (1.00%)");
    }
}
