//! Shared benchmark harness.

use jessy_core::{ProfilerConfig, SamplingRate, Tcm};
use jessy_gos::prime::nearest_prime;
use jessy_gos::CostModel;
use jessy_net::LatencyModel;
use jessy_runtime::{Cluster, RunReport};
use jessy_workloads::{barnes_hut::BhConfig, sor::SorConfig, water::WaterConfig, WorkloadKind};

/// Problem-size scale, selected by the `JESSY_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Table I sizes (default for `cargo bench`).
    Paper,
    /// Scaled-down sizes for quick iterations (`JESSY_SCALE=small`).
    Small,
}

/// Read the scale from the environment (default: paper).
pub fn scale() -> Scale {
    match std::env::var("JESSY_SCALE").as_deref() {
        Ok("small") | Ok("SMALL") => Scale::Small,
        _ => Scale::Paper,
    }
}

/// SOR configuration at a scale.
pub fn sor_cfg(scale: Scale) -> SorConfig {
    match scale {
        Scale::Paper => SorConfig::paper(),
        Scale::Small => SorConfig {
            n: 256,
            m: 256,
            rounds: 5,
            omega: 1.25,
        },
    }
}

/// Barnes-Hut configuration at a scale.
pub fn bh_cfg(scale: Scale) -> BhConfig {
    match scale {
        Scale::Paper => BhConfig::paper(),
        Scale::Small => BhConfig {
            n_bodies: 512,
            rounds: 3,
            ..BhConfig::paper()
        },
    }
}

/// Water-Spatial configuration at a scale.
pub fn water_cfg(scale: Scale) -> WaterConfig {
    match scale {
        Scale::Paper => WaterConfig::paper(),
        Scale::Small => WaterConfig {
            n_molecules: 128,
            rounds: 3,
            ..WaterConfig::paper()
        },
    }
}

/// Run one workload at `scale` on a realistic cluster (Fast Ethernet, 2 GHz P4 costs).
///
/// When the `JESSY_TRACE` environment variable names a file, the run records a
/// deterministic event journal and exports it there after the run: Chrome
/// `trace_event` JSON for a `.json` path, JSON lines otherwise.
pub fn run_tracked(
    kind: WorkloadKind,
    scale: Scale,
    nodes: usize,
    threads: usize,
    profiler: ProfilerConfig,
) -> RunReport {
    let trace_path = std::env::var("JESSY_TRACE").ok().filter(|p| !p.is_empty());
    let sink = trace_path.as_ref().map(|_| jessy_obs::JournalSink::shared());
    let mut builder = Cluster::builder()
        .nodes(nodes)
        .threads(threads)
        .latency(LatencyModel::fast_ethernet())
        .costs(CostModel::pentium4_2ghz())
        .profiler(profiler);
    if let Some(sink) = &sink {
        builder = builder.trace(sink.clone());
    }
    let mut cluster = builder.build();
    let report = match kind {
        WorkloadKind::Sor => jessy_workloads::sor::run_on(&mut cluster, sor_cfg(scale)),
        WorkloadKind::BarnesHut => {
            jessy_workloads::barnes_hut::run_on(&mut cluster, bh_cfg(scale))
        }
        WorkloadKind::WaterSpatial => {
            jessy_workloads::water::run_on(&mut cluster, water_cfg(scale))
        }
        WorkloadKind::Lu => {
            let cfg = match scale {
                Scale::Paper => jessy_workloads::lu::LuConfig::paper(),
                Scale::Small => jessy_workloads::lu::LuConfig::small(),
            };
            jessy_workloads::lu::run_on(&mut cluster, cfg)
        }
        WorkloadKind::PhaseShift => {
            let cfg = match scale {
                Scale::Paper => jessy_workloads::phase_shift::PhaseShiftConfig::paper(),
                Scale::Small => jessy_workloads::phase_shift::PhaseShiftConfig::small(),
            };
            jessy_workloads::phase_shift::run_on(&mut cluster, cfg)
        }
        WorkloadKind::Sessions => {
            let cfg = match scale {
                Scale::Paper => jessy_workloads::sessions::SessionsConfig::paper(),
                Scale::Small => jessy_workloads::sessions::SessionsConfig::small(),
            };
            jessy_workloads::sessions::run_on(&mut cluster, cfg)
        }
    };
    if let (Some(path), Some(sink)) = (trace_path, sink) {
        let events = sink.sorted_events();
        let body = if path.ends_with(".json") {
            jessy_obs::to_chrome_trace(&events)
        } else {
            jessy_obs::to_json_lines(&events)
        };
        match std::fs::write(&path, body) {
            Ok(()) => eprintln!("JESSY_TRACE: wrote {} events to {path}", events.len()),
            Err(e) => eprintln!("JESSY_TRACE: cannot write {path}: {e}"),
        }
    }
    report
}

/// Like [`run_tracked`] but also returning the recovered TCM (requires tracking on).
pub fn run_tracked_tcm(
    kind: WorkloadKind,
    scale: Scale,
    nodes: usize,
    threads: usize,
    profiler: ProfilerConfig,
) -> (RunReport, Tcm) {
    let report = run_tracked(kind, scale, nodes, threads, profiler);
    let tcm = report
        .master
        .as_ref()
        .expect("profiling must be on")
        .tcm
        .clone();
    (report, tcm)
}

/// One point of a rate sweep.
#[derive(Debug, Clone)]
pub struct RateRun {
    /// Rate label ("4X", "full").
    pub label: String,
    /// The rate.
    pub rate: SamplingRate,
    /// The run's report.
    pub report: RunReport,
}

/// The coarse-to-fine rate ladder `maxX, maxX/2, …, 2X, 1X` used by Fig. 9 (the paper
/// sweeps 512X → 1X and halves "the maximum rate of each sampled class").
pub fn rate_ladder(max_n: u32) -> Vec<SamplingRate> {
    let mut rates = Vec::new();
    let mut n = max_n;
    while n >= 1 {
        rates.push(SamplingRate::NX(n));
        if n == 1 {
            break;
        }
        n /= 2;
    }
    rates
}

/// The dominant shared class of each workload: (unit bytes, typical element count).
/// SOR shares `double[]` rows of 2K elements; Barnes-Hut bodies; Water molecules.
pub fn dominant_class(kind: WorkloadKind) -> (usize, u32) {
    match kind {
        WorkloadKind::Sor => (8, 2048),
        WorkloadKind::BarnesHut => (64, 1),
        WorkloadKind::WaterSpatial => (512, 1),
        WorkloadKind::Lu => (8, 1024), // 32x32 blocks of 8-byte elements
        WorkloadKind::PhaseShift => (64, 1), // 64 B scalar cells
        WorkloadKind::Sessions => (64, 1),   // 64 B scalar catalog items
    }
}

/// The paper's "N/A" cells: a rate column does not apply when every object of the
/// workload's dominant class is sampled at that rate anyway — the behaviour is
/// indistinguishable from full sampling (SOR's ≥-page rows at any rate; Water's 512 B
/// molecules at 16X).
pub fn rate_is_na(kind: WorkloadKind, rate: SamplingRate) -> bool {
    let SamplingRate::NX(n) = rate else {
        return false; // "Full" is always a real column
    };
    let (unit, len) = dominant_class(kind);
    let nominal = SamplingRate::NX(n).nominal_gap(unit, 4096);
    let gap = nearest_prime(nominal);
    len as u64 >= gap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn na_cells_match_the_paper() {
        use SamplingRate::NX;
        // Table II/III: SOR is N/A at 1X, 4X and 16X.
        assert!(rate_is_na(WorkloadKind::Sor, NX(1)));
        assert!(rate_is_na(WorkloadKind::Sor, NX(4)));
        assert!(rate_is_na(WorkloadKind::Sor, NX(16)));
        // Barnes-Hut: every rate applies.
        assert!(!rate_is_na(WorkloadKind::BarnesHut, NX(1)));
        assert!(!rate_is_na(WorkloadKind::BarnesHut, NX(4)));
        assert!(!rate_is_na(WorkloadKind::BarnesHut, NX(16)));
        // Water-Spatial: 16X is N/A (512 B molecules: gap 4096/(512·16) < 1).
        assert!(!rate_is_na(WorkloadKind::WaterSpatial, NX(1)));
        assert!(!rate_is_na(WorkloadKind::WaterSpatial, NX(4)));
        assert!(rate_is_na(WorkloadKind::WaterSpatial, NX(16)));
        // Full is never N/A.
        assert!(!rate_is_na(WorkloadKind::Sor, SamplingRate::Full));
    }

    #[test]
    fn rate_ladder_halves_down_to_1x() {
        let ladder = rate_ladder(512);
        assert_eq!(ladder.len(), 10);
        assert_eq!(ladder[0], SamplingRate::NX(512));
        assert_eq!(ladder[9], SamplingRate::NX(1));
    }

    #[test]
    fn scale_defaults_to_paper() {
        // (environment not set in tests)
        if std::env::var("JESSY_SCALE").is_err() {
            assert_eq!(scale(), Scale::Paper);
        }
    }
}
