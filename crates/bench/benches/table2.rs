//! TABLE II — CPU overhead of OAL collection.
//!
//! Methodology (Section IV.A.1, O1): a single thread per application, OAL transfer
//! over the network disabled, so the measured execution-time increase isolates the
//! CPU cost of generating OALs (state checks, correlation faults, log appends,
//! interval arming) at sampling rates 1X, 4X, 16X and full. Cells the rate ladder
//! cannot distinguish from full sampling are N/A exactly as in the paper (SOR's rows
//! exceed the page size; see `rate_is_na`).

use jessy_bench::{rate_is_na, run_tracked, scale, TextTable};
use jessy_core::{ProfilerConfig, SamplingRate};
use jessy_workloads::WorkloadKind;

fn main() {
    let scale = scale();
    println!("TABLE II. OVERHEAD OF OAL COLLECTION  (scale: {scale:?})");
    println!("(single thread, OAL transfer disabled; simulated execution time, ms)\n");

    let rates = [
        SamplingRate::NX(1),
        SamplingRate::NX(4),
        SamplingRate::NX(16),
        SamplingRate::Full,
    ];
    let mut t = TextTable::new(&["Benchmark", "No Tracking", "1X", "4X", "16X", "Full"]);

    for kind in WorkloadKind::ALL {
        let base = run_tracked(kind, scale, 1, 1, ProfilerConfig::disabled());
        let base_ms = base.sim_exec_ms();
        let mut cells = vec![kind.name().to_string(), format!("{base_ms:.0}")];
        for rate in rates {
            if rate_is_na(kind, rate) {
                cells.push("N/A".to_string());
                continue;
            }
            let mut config = ProfilerConfig::tracking_at(rate);
            config.send_oals = false; // collect only (O1)
            let run = run_tracked(kind, scale, 1, 1, config);
            cells.push(format!(
                "{:.0} ({:+.2}%)",
                run.sim_exec_ms(),
                run.overhead_pct(&base)
            ));
        }
        t.row(&cells);
    }
    println!("{}", t.render());
    println!("paper (8-node testbed, wall clock): SOR 24250 → 24360 (0.45%) at full;");
    println!("Barnes-Hut 53250 → 53844 (1.12%) at full; Water-Spatial 29461 → 29717 (0.87%).");
    println!("expected shape: overhead below ~2% everywhere, growing with rate and");
    println!("with sharing fineness (Barnes-Hut > Water-Spatial).");
}
