//! X9 — closing the loop: continuous profile-driven migration, mid-run.
//!
//! Three lanes per workload (SOR, Barnes-Hut, Water-Spatial), 8 threads on 4 nodes:
//!
//! * **block (ideal)** — the natural owner-aligned static placement;
//! * **scattered** — a deliberately bad static placement (round-robin);
//! * **migrated** — starts scattered, profiles itself, and lets the continuous
//!   placement engine (`RebalanceConfig::every_rounds`) move threads *mid-run*.
//!
//! The migrated lane should recover most of the remote-fetch volume the scattered
//! placement loses versus block: the drop shows up in `ObjFetch` messages and in
//! GOS fabric bytes (object traffic + the migrations' own context/prefetch cost —
//! migrations are charged against their savings, not hidden).
//!
//! A fourth lane plans N=1024 threads **without any dense TCM**: rounds feed a
//! top-k head plus a count-min sketch, the planner runs on the combined
//! [`SketchedTopKView`], and the plan is scored against the dense ground truth it
//! never saw. This is the memory-scaling story: O(k + sketch) planner state versus
//! the O(N²/2) dense triangle.

use std::sync::Arc;

use serde::Serialize;

use jessy_bench::{bh_cfg, scale, sor_cfg, water_cfg, Scale, TextTable};
use jessy_core::{
    ProfilerConfig, SamplingRate, SketchTcm, SketchedTopKView, SparseTcm, Tcm,
    TopKPairs,
};
use jessy_gos::CostModel;
use jessy_net::{LatencyModel, MsgClass, NodeId, ThreadId};
use jessy_runtime::{Cluster, LoadBalancer, RebalanceConfig, RunReport};
use jessy_workloads::{barnes_hut, sor, water};

const N_THREADS: usize = 8;
const N_NODES: usize = 4;

#[derive(Clone, Copy)]
enum Kind {
    Sor,
    BarnesHut,
    Water,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Sor => "SOR",
            Kind::BarnesHut => "Barnes-Hut",
            Kind::Water => "Water-Spatial",
        }
    }
}

/// Lane workload sizes: run long enough that a mid-run migration (the engine
/// converges after ~3 profiled rounds) has a steady state in which to pay back
/// its one-time home-relocation traffic. SOR's payback is the slowest — fixing a
/// misplaced thread relocates its whole row block once, while scattered waste
/// accrues per round — so its lane uses a 1024² grid over 20 rounds, past the
/// crossover (a 2048² grid would need ~30 rounds to amortize the ~33 MB of row
/// moves and triples the bench's wall clock for the same story).
fn lane_sor(s: Scale) -> sor::SorConfig {
    let mut cfg = sor_cfg(s);
    match s {
        Scale::Paper => {
            cfg.n = 1024;
            cfg.m = 1024;
            cfg.rounds = 20;
        }
        Scale::Small => cfg.rounds = 10,
    }
    cfg
}

fn lane_bh(s: Scale) -> barnes_hut::BhConfig {
    let mut cfg = bh_cfg(s);
    cfg.rounds = match s {
        Scale::Paper => 10,
        Scale::Small => 6,
    };
    cfg
}

fn lane_water(s: Scale) -> water::WaterConfig {
    let mut cfg = water_cfg(s);
    cfg.rounds = match s {
        Scale::Paper => 10,
        Scale::Small => 6,
    };
    cfg
}

/// One lane: the workload under `placement`, optionally self-optimizing mid-run.
fn run_lane(kind: Kind, placement: Vec<NodeId>, rebalance: Option<RebalanceConfig>) -> RunReport {
    let profiler = if rebalance.is_some() {
        let mut p = ProfilerConfig::tracking_at(SamplingRate::NX(1));
        p.intervals_per_round = 1;
        // Sticky-set resolution (the migrants' carried working sets) needs the
        // footprint estimator for its per-class budget and the stack sampler
        // for its invariant roots.
        p.footprint = Some(jessy_core::FootprintConfig {
            mode: jessy_core::FootprintMode::Nonstop,
            min_gap: 1,
        });
        p.stack = Some(jessy_core::StackSamplingConfig {
            gap_ns: 1000,
            lazy_extraction: true,
        });
        p
    } else {
        ProfilerConfig::disabled()
    };
    let mut builder = Cluster::builder()
        .nodes(N_NODES)
        .threads(N_THREADS)
        .placement(placement)
        .latency(LatencyModel::fast_ethernet())
        .costs(CostModel::pentium4_2ghz())
        .profiler(profiler);
    if let Some(rb) = rebalance {
        builder = builder.rebalance(rb);
    }
    let mut cluster = builder.build();
    match kind {
        Kind::Sor => {
            let cfg = lane_sor(scale());
            let handles = Arc::new(cluster.init(|ctx| sor::setup(ctx, &cfg, N_THREADS, N_NODES)));
            cluster.run(move |jt| sor::thread_body(jt, &cfg, &handles));
        }
        Kind::BarnesHut => {
            let cfg = lane_bh(scale());
            let handles =
                Arc::new(cluster.init(|ctx| barnes_hut::setup(ctx, &cfg, N_THREADS, N_NODES)));
            cluster.run(move |jt| barnes_hut::thread_body(jt, &cfg, &handles));
        }
        Kind::Water => {
            let cfg = lane_water(scale());
            let handles =
                Arc::new(cluster.init(|ctx| water::setup(ctx, &cfg, N_THREADS, N_NODES)));
            cluster.run(move |jt| water::thread_body(jt, &cfg, &handles));
        }
    }
    cluster.report()
}

/// Continuous rebalancing tuned for a run of a few dozen TCM rounds: plan early
/// (the profile stabilizes after a couple of rounds), re-plan sparingly, and hold
/// movers down long enough that the engine converges instead of thrashing. The
/// profitability horizon is finite so the sticky-cost veto can reject moves whose
/// one-time transfer outweighs their remaining-run benefit.
fn eager_rebalance() -> RebalanceConfig {
    RebalanceConfig {
        after_rounds: 1,
        every_rounds: Some(2),
        cooldown_rounds: 64,
        with_prefetch: true,
        min_gain_bytes: 64.0,
        gain_horizon_rounds: 64.0,
        migration_budget_bytes: None,
        migrate_homes: true,
    }
}

/// Object + migration traffic on the fabric, in bytes. Profiling (OAL/TCM) traffic
/// is excluded so the tracking lane isn't charged for its own instrumentation when
/// comparing *placement* quality; migration context/prefetch bytes are included so
/// the migrated lane pays for its moves.
fn fabric_bytes(r: &RunReport) -> u64 {
    r.net.gos_bytes() + r.net.migration_bytes()
}

#[derive(Serialize)]
struct WorkloadRow {
    workload: &'static str,
    lane: &'static str,
    exec_ms: f64,
    objfetch_msgs: u64,
    fabric_kb: f64,
    migrations: u64,
    plans: u64,
}

#[derive(Serialize)]
struct WorkloadSummary {
    workload: &'static str,
    /// Fraction of the scattered→block ObjFetch gap the migrated lane recovered.
    recovered_objfetch: f64,
    recovered_fabric: f64,
}

#[derive(Serialize)]
struct HeadlessPlanReport {
    n_threads: usize,
    n_nodes: usize,
    topk_k: usize,
    sketch_bytes: usize,
    dense_bytes: usize,
    intra_sketched_plan: f64,
    intra_dense_plan: f64,
    intra_static_block: f64,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    mode: &'static str,
    rows: Vec<WorkloadRow>,
    summaries: Vec<WorkloadSummary>,
    headless: HeadlessPlanReport,
}

fn gap_recovered(block: f64, scattered: f64, migrated: f64) -> f64 {
    let gap = scattered - block;
    if gap <= 0.0 {
        return 1.0;
    }
    ((scattered - migrated) / gap).clamp(-1.0, 1.0)
}

/// The N=1024 lane: plan purely from the top-k + sketch pair, score on the dense
/// truth the planner never materialized.
fn headless_plan() -> HeadlessPlanReport {
    const N: usize = 1024;
    const NODES: usize = 16;
    const CLIQUE: usize = 8;
    const K: usize = 4096;
    let mut topk = TopKPairs::new(N, K);
    let mut sketch = SketchTcm::new(N, 1 << 13, 4);
    let mut truth = Tcm::new(N);
    for round in 0..3u32 {
        // Head-heavy structure: 128 cliques of 8 with heavy intra-clique mass,
        // plus a thin ring of noise pairs that must not mislead the plan.
        let mut pairs: Vec<(ThreadId, ThreadId, f64)> = Vec::new();
        for c in 0..(N / CLIQUE) {
            let base = (c * CLIQUE) as u32;
            for i in 0..CLIQUE as u32 {
                for j in (i + 1)..CLIQUE as u32 {
                    pairs.push((ThreadId(base + i), ThreadId(base + j), 1e4 + f64::from(round)));
                }
            }
        }
        for i in 0..N as u32 {
            let j = (i + 97) % N as u32;
            let (a, b) = if i < j { (i, j) } else { (j, i) };
            pairs.push((ThreadId(a), ThreadId(b), 0.5));
        }
        let round_tcm = SparseTcm::from_pairs(N, &pairs);
        topk.observe_round(&round_tcm, |_| 0.0);
        sketch.fold_round(&round_tcm);
        truth.merge_sparse(&round_tcm);
    }

    let lb = LoadBalancer::new();
    let view = SketchedTopKView::new(&sketch, &topk);
    let sketched_plan = lb.plan(&view, NODES);
    let dense_plan = lb.plan(&truth, NODES);
    // The natural block placement collocates whole cliques: the reference ideal.
    let block: Vec<NodeId> = (0..N).map(|t| NodeId((t / (N / NODES)) as u16)).collect();
    HeadlessPlanReport {
        n_threads: N,
        n_nodes: NODES,
        topk_k: K,
        sketch_bytes: sketch.memory_bytes(),
        dense_bytes: N * (N - 1) / 2 * 8,
        intra_sketched_plan: lb.intra_fraction(&truth, &sketched_plan.placement),
        intra_dense_plan: lb.intra_fraction(&truth, &dense_plan.placement),
        intra_static_block: lb.intra_fraction(&truth, &block),
    }
}

fn main() {
    let smoke = matches!(scale(), Scale::Small);
    println!("X9. CONTINUOUS PROFILE-DRIVEN MIGRATION  (8 threads on 4 nodes, mid-run)\n");

    let block: Vec<NodeId> = (0..N_THREADS).map(|t| NodeId((t / 2) as u16)).collect();
    let scattered: Vec<NodeId> = (0..N_THREADS).map(|t| NodeId((t % 4) as u16)).collect();

    let mut table = TextTable::new(&[
        "Workload",
        "Lane",
        "Exec (ms)",
        "ObjFetch msgs",
        "Fabric KB",
        "Migrations",
        "Plans",
    ]);
    let mut rows: Vec<WorkloadRow> = Vec::new();
    let mut summaries: Vec<WorkloadSummary> = Vec::new();

    for kind in [Kind::Sor, Kind::BarnesHut, Kind::Water] {
        let lanes = [
            ("block (ideal)", run_lane(kind, block.clone(), None)),
            ("scattered", run_lane(kind, scattered.clone(), None)),
            (
                "migrated mid-run",
                run_lane(kind, scattered.clone(), Some(eager_rebalance())),
            ),
        ];
        for (lane, report) in &lanes {
            let (migrations, plans) = report
                .master
                .as_ref()
                .map(|m| (m.placement.applied_migrations, m.placement.plans))
                .unwrap_or((0, 0));
            let row = WorkloadRow {
                workload: kind.label(),
                lane,
                exec_ms: report.sim_exec_ms(),
                objfetch_msgs: report.net.class(MsgClass::ObjFetch).messages,
                fabric_kb: fabric_bytes(report) as f64 / 1024.0,
                migrations,
                plans,
            };
            table.row(&[
                row.workload.to_string(),
                row.lane.to_string(),
                format!("{:.0}", row.exec_ms),
                row.objfetch_msgs.to_string(),
                format!("{:.0}", row.fabric_kb),
                row.migrations.to_string(),
                row.plans.to_string(),
            ]);
            rows.push(row);
        }
        let [b, s, m] = &lanes;
        summaries.push(WorkloadSummary {
            workload: kind.label(),
            recovered_objfetch: gap_recovered(
                b.1.net.class(MsgClass::ObjFetch).messages as f64,
                s.1.net.class(MsgClass::ObjFetch).messages as f64,
                m.1.net.class(MsgClass::ObjFetch).messages as f64,
            ),
            recovered_fabric: gap_recovered(
                fabric_bytes(&b.1) as f64,
                fabric_bytes(&s.1) as f64,
                fabric_bytes(&m.1) as f64,
            ),
        });
    }
    println!("{}", table.render());
    for s in &summaries {
        println!(
            "{:<14} recovered {:>5.1}% of the ObjFetch gap, {:>5.1}% of the fabric-byte gap",
            s.workload,
            s.recovered_objfetch * 100.0,
            s.recovered_fabric * 100.0
        );
    }

    // Acceptance: mid-run migration beats staying scattered, in aggregate, on both
    // remote-fetch messages and fabric bytes (migration costs included).
    let sum = |lane: &str, f: &dyn Fn(&WorkloadRow) -> f64| -> f64 {
        rows.iter().filter(|r| r.lane == lane).map(f).sum()
    };
    let fetch_scattered = sum("scattered", &|r| r.objfetch_msgs as f64);
    let fetch_migrated = sum("migrated mid-run", &|r| r.objfetch_msgs as f64);
    let fabric_scattered = sum("scattered", &|r| r.fabric_kb);
    let fabric_migrated = sum("migrated mid-run", &|r| r.fabric_kb);
    assert!(
        fetch_migrated < fetch_scattered,
        "mid-run migration must cut remote fetches: {fetch_migrated} vs {fetch_scattered}"
    );
    assert!(
        fabric_migrated < fabric_scattered,
        "mid-run migration must cut fabric bytes: {fabric_migrated} vs {fabric_scattered}"
    );
    let migrated_runs: u64 = rows
        .iter()
        .filter(|r| r.lane == "migrated mid-run")
        .map(|r| r.migrations)
        .sum();
    assert!(migrated_runs > 0, "the migrated lanes must actually migrate");

    println!();
    let headless = headless_plan();
    println!(
        "N=1024 headless lane: plan from top-k({}) + {} KB sketch (dense triangle = {} KB, never built)",
        headless.topk_k,
        headless.sketch_bytes / 1024,
        headless.dense_bytes / 1024,
    );
    println!(
        "  intra-node mass — sketched plan {:.1}%, dense-view plan {:.1}%, static block {:.1}%",
        headless.intra_sketched_plan * 100.0,
        headless.intra_dense_plan * 100.0,
        headless.intra_static_block * 100.0,
    );
    assert!(
        headless.intra_sketched_plan >= 0.9 * headless.intra_dense_plan,
        "the sketched view must plan within 10% of the dense view: {} vs {}",
        headless.intra_sketched_plan,
        headless.intra_dense_plan
    );

    if smoke {
        println!("\nsmoke mode: skipping BENCH_placement.json (checked-in file is the full run)");
        return;
    }
    let doc = Report {
        bench: "placement",
        mode: "full",
        rows,
        summaries,
        headless,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_placement.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap() + "\n")
        .expect("write BENCH_placement.json");
    println!("\nwrote {path}");
}
