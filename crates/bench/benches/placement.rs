//! X1 — profile-driven thread placement (the paper's stated end-use; Section V).
//!
//! SOR under three placements: (a) the natural block placement, (b) a deliberately
//! scattered placement, and (c) the placement the [`jessy_runtime::LoadBalancer`]
//! plans from the TCM profiled during run (b). Collocating the threads that share
//! boundary rows turns their remote faults into home-node accesses, which shows up
//! directly in the object-fetch volume and the simulated execution time.

use std::sync::Arc;

use jessy_bench::{scale, sor_cfg, TextTable};
use jessy_core::{ProfilerConfig, SamplingRate};
use jessy_gos::CostModel;
use jessy_net::{LatencyModel, MsgClass, NodeId};
use jessy_runtime::{Cluster, LoadBalancer, RunReport};
use jessy_workloads::sor;

fn run_with_placement(placement: Vec<NodeId>, track: bool) -> RunReport {
    let cfg = sor_cfg(scale());
    let n_threads = placement.len();
    let profiler = if track {
        ProfilerConfig::tracking_at(SamplingRate::NX(1))
    } else {
        ProfilerConfig::disabled()
    };
    let mut cluster = Cluster::builder()
        .nodes(4)
        .threads(n_threads)
        .placement(placement)
        .latency(LatencyModel::fast_ethernet())
        .costs(CostModel::pentium4_2ghz())
        .profiler(profiler)
        .build();
    // NOTE: row homes follow the *block* owner mapping regardless of placement, as in
    // a real DJVM where data was allocated before any rebalancing.
    let handles = Arc::new(cluster.init(|ctx| sor::setup(ctx, &cfg, n_threads, 4)));
    cluster.run(move |jt| sor::thread_body(jt, &cfg, &handles));
    cluster.report()
}

fn main() {
    let n_threads = 8usize;
    println!("X1. PROFILE-DRIVEN THREAD PLACEMENT  (SOR, 8 threads on 4 nodes)\n");

    let block: Vec<NodeId> = (0..n_threads).map(|t| NodeId((t / 2) as u16)).collect();
    let scattered: Vec<NodeId> = (0..n_threads).map(|t| NodeId((t % 4) as u16)).collect();

    // Profile under the scattered placement, then plan.
    let profiled = run_with_placement(scattered.clone(), true);
    let tcm = profiled.master.as_ref().unwrap().tcm.clone();
    let lb = LoadBalancer::new();
    let plan = lb.plan(&tcm, 4);

    let runs = [
        ("block (ideal)", run_with_placement(block.clone(), false), block),
        ("scattered", run_with_placement(scattered.clone(), false), scattered),
        ("planned from profile", run_with_placement(plan.placement.clone(), false), plan.placement.clone()),
    ];

    let mut t = TextTable::new(&[
        "Placement",
        "Exec time (ms)",
        "Obj-fetch msgs",
        "Fetched KB",
        "Intra-node correlation",
    ]);
    for (label, report, placement) in &runs {
        t.row(&[
            label.to_string(),
            format!("{:.0}", report.sim_exec_ms()),
            report.net.class(MsgClass::ObjFetch).messages.to_string(),
            format!(
                "{:.0}",
                report.net.class(MsgClass::ObjData).bytes as f64 / 1024.0
            ),
            format!("{:.1}%", lb.intra_fraction(&tcm, placement) * 100.0),
        ]);
    }
    println!("{}", t.render());
    println!("expected shape: planned ≈ block << scattered in fetch volume; the");
    println!("balancer recovers most of the locality the scattered placement lost.");
}
