//! X4 — object-access fast-path throughput (the mutator hot loop).
//!
//! Measures steady-state accesses/sec through the single-writer arena
//! (`Gos` + `ThreadSpace`: packed entry word, frozen object table, side
//! slabs) against the retained seed layout (`gos::heap::reference`:
//! per-access `RwLock` read + `Arc` clone + `Mutex` lock, plus a
//! `ClassInfo` clone per access). Three scenarios per object count:
//!
//! - `home_hit`   — objects homed at the accessing node (HOME state).
//! - `cache_hit`  — remote objects already faulted in (VALID state).
//! - `armed_trap` — the profiler rhythm: arm every object's false-invalid
//!   trap, then access (trap fires, logs, disarms), once per pass.
//!
//! Modes:
//! - default (`cargo bench --bench access_path`): full sweep
//!   M∈{4096,65536,262144}, writes `BENCH_access_path.json` at the repo
//!   root and asserts the ≥3× accesses/sec acceptance bar on the unarmed
//!   path (min of home_hit and cache_hit) at M=4096.
//! - `JESSY_SCALE=small`: smoke sweep (seconds, CI-friendly), prints the
//!   table, does not touch the checked-in JSON.
//!
//! The acceptance cell is the cache-resident working set (M=4096): it
//! isolates the per-access software overhead the arena removed (lock/clone
//! traffic, map lookups, `ClassInfo` clones). The larger cells report the
//! DRAM-bound regime, where random-access misses dominate both layouts and
//! the ratio compresses toward memory latency. Each cell is the min of
//! three interleaved repetitions (noise control).

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use jessy_bench::TextTable;
use jessy_gos::heap::reference::ReferenceGos;
use jessy_gos::{CostModel, Gos, GosConfig, ObjectId, ThreadSpace};
use jessy_net::{ClockBoard, LatencyModel, NodeId, ThreadId};
use jessy_obs::{NullSink, TraceSink};
use serde::Serialize;

/// Deterministic splitmix64 (no rand dependency in benches).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Access order: a mix()-driven shuffle of `0..m` so the timed loop does not
/// walk the arena in allocation order.
fn shuffled(m: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..m).collect();
    for i in (1..m).rev() {
        let j = (mix(i as u64) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

/// The emitted `BENCH_access_path.json` document.
#[derive(Serialize)]
struct Report {
    bench: &'static str,
    mode: &'static str,
    results: Vec<CellReport>,
    acceptance: Acceptance,
    trace_overhead: TraceOverhead,
}

/// Observability-tax measurement: the same unarmed cache-hit sweep on an engine
/// with no trace sink vs one with a [`NullSink`] installed.
#[derive(Serialize)]
struct TraceOverhead {
    objects: usize,
    passes: usize,
    off_ns: u64,
    null_sink_ns: u64,
    /// `null_sink_ns / off_ns - 1` (negative means within noise).
    overhead_frac: f64,
    required_max: f64,
    pass: bool,
}

#[derive(Serialize)]
struct CellReport {
    scenario: &'static str,
    objects: usize,
    passes: usize,
    seed_ns: u64,
    new_ns: u64,
    speedup: f64,
    new_macc_per_s: f64,
    seed_macc_per_s: f64,
}

#[derive(Serialize)]
struct Acceptance {
    scenario: &'static str,
    objects: usize,
    required_speedup: f64,
    measured_speedup: f64,
    pass: bool,
}

/// Per-(scenario, M) measurement at steady state.
struct Cell {
    scenario: &'static str,
    m: usize,
    passes: usize,
    seed_ns: u128,
    new_ns: u128,
}

impl Cell {
    /// Accesses/sec speedup over the seed layout (the acceptance metric).
    fn speedup(&self) -> f64 {
        self.seed_ns as f64 / self.new_ns.max(1) as f64
    }
    /// Accesses retired per second, in millions.
    fn macc_s(&self, ns: u128) -> f64 {
        (self.m * self.passes) as f64 / (ns.max(1) as f64 / 1e9) / 1e6
    }
}

struct Engines {
    gos: Gos,
    seed: ReferenceGos,
    space: ThreadSpace,
    clock_board: std::sync::Arc<ClockBoard>,
    /// Objects homed at the accessing node (ids identical on both engines).
    home: Vec<ObjectId>,
    /// Remote objects pre-faulted into thread 0's cache on both engines.
    cached: Vec<ObjectId>,
}

/// Build both engines with identical populations: `m` objects homed at the
/// accessing node 0 and `m` homed at node 1, the latter pre-faulted into
/// thread 0's cache so their steady state is VALID. `sink` optionally installs
/// a trace sink on the arena engine (the tracing-overhead lane).
fn build(m: usize, sink: Option<Arc<dyn TraceSink>>) -> Engines {
    let mut gos = Gos::new(GosConfig {
        n_nodes: 2,
        n_threads: 1,
        latency: LatencyModel::free(),
        costs: CostModel::free(),
        prefetch_depth: 0,
        consistency: jessy_gos::protocol::ConsistencyModel::GlobalHlrc,
        faults: None,
    });
    if let Some(sink) = sink {
        gos.set_trace_sink(sink);
    }
    let seed = ReferenceGos::new(2, 1);
    let clock_board = ClockBoard::new(1);
    let clock = clock_board.handle(ThreadId(0));
    let class = gos.classes().register_scalar("X", 2);
    let class_r = seed.classes().register_scalar("X", 2);
    assert_eq!(class, class_r);

    let mut space = ThreadSpace::new(ThreadId(0));
    let mut home = Vec::with_capacity(m);
    let mut cached = Vec::with_capacity(m);
    for i in 0..2 * m {
        let node = NodeId((i / m) as u16);
        let init = [mix(i as u64) as f64, 0.0];
        let id = gos.alloc_scalar(node, class, &clock, Some(&init)).id;
        let id_r = seed.alloc_scalar(node, class_r, Some(&init)).id;
        assert_eq!(id, id_r);
        if i < m {
            home.push(id);
        } else {
            cached.push(id);
        }
    }
    gos.freeze_object_table();

    // Fault everything in once so timed passes only see hits.
    for &o in home.iter().chain(&cached) {
        gos.read(&mut space, NodeId(0), o, &clock, |_| {});
        seed.read(ThreadId(0), NodeId(0), o, |_| {});
    }
    Engines {
        gos,
        seed,
        space,
        clock_board,
        home,
        cached,
    }
}

/// Time `passes` full sweeps over `order`-shuffled `objs` on both engines
/// (one warmup pass each), checking that both sum the same payloads.
fn measure(scenario: &'static str, m: usize, passes: usize) -> Cell {
    let Engines {
        gos,
        seed,
        mut space,
        clock_board,
        home,
        cached,
    } = build(m, None);
    let clock = clock_board.handle(ThreadId(0));
    let objs: &[ObjectId] = match scenario {
        "home_hit" | "armed_trap" => &home,
        "cache_hit" => &cached,
        _ => unreachable!(),
    };
    let order = shuffled(objs.len());
    let armed = scenario == "armed_trap";

    let mut run_new = |timed: bool| -> u128 {
        let mut sum = 0.0f64;
        let t0 = Instant::now();
        for _ in 0..if timed { passes } else { 1 } {
            if armed {
                black_box(space.arm_traps(objs.iter().copied()));
            }
            for &i in &order {
                let (v, _) = gos.read(&mut space, NodeId(0), objs[i], &clock, |d| d[0]);
                sum += v;
            }
        }
        black_box(sum);
        t0.elapsed().as_nanos()
    };
    let run_seed = |timed: bool| -> u128 {
        let mut sum = 0.0f64;
        let t0 = Instant::now();
        for _ in 0..if timed { passes } else { 1 } {
            if armed {
                black_box(seed.set_false_invalid(ThreadId(0), objs.iter().copied()));
            }
            for &i in &order {
                let (v, _) = seed.read(ThreadId(0), NodeId(0), objs[i], |d| d[0]);
                sum += v;
            }
        }
        black_box(sum);
        t0.elapsed().as_nanos()
    };
    // One warmup each, then three interleaved timed repetitions; keep the min
    // (robust against noisy-neighbor interference on shared hosts).
    run_new(false);
    run_seed(false);
    let (mut new_ns, mut seed_ns) = (u128::MAX, u128::MAX);
    for _ in 0..3 {
        new_ns = new_ns.min(run_new(true));
        seed_ns = seed_ns.min(run_seed(true));
    }

    // Payload sanity: both engines must serve identical values.
    for &o in objs.iter().take(64) {
        let (a, _) = gos.read(&mut space, NodeId(0), o, &clock, |d| d[0]);
        let (b, _) = seed.read(ThreadId(0), NodeId(0), o, |d| d[0]);
        assert_eq!(a.to_bits(), b.to_bits(), "engines diverged on {o}");
    }

    Cell {
        scenario,
        m,
        passes,
        seed_ns,
        new_ns,
    }
}

/// The observability acceptance lane: time the unarmed cache-hit sweep on an
/// engine with no trace sink against an identical engine with a [`NullSink`]
/// installed. The hit lane has no emission site, so the only possible cost is
/// the sink presence itself; the gate requires it stays ≤ `required_max`.
fn measure_trace_overhead(m: usize, passes: usize) -> TraceOverhead {
    let mut off = build(m, None);
    let mut on = build(m, Some(Arc::new(NullSink)));
    let order = shuffled(m);
    let sweep = |e: &mut Engines, timed: bool| -> u128 {
        let clock = e.clock_board.handle(ThreadId(0));
        let mut sum = 0.0f64;
        let t0 = Instant::now();
        for _ in 0..if timed { passes } else { 1 } {
            for &i in &order {
                let (v, _) = e.gos.read(&mut e.space, NodeId(0), e.cached[i], &clock, |d| d[0]);
                sum += v;
            }
        }
        black_box(sum);
        t0.elapsed().as_nanos()
    };
    // Warmup each, then interleaved repetitions keeping the min (same noise
    // control as the main cells; five reps because a ≤2% gate is tighter than
    // the ≥3x speedup bar).
    sweep(&mut off, false);
    sweep(&mut on, false);
    let (mut off_ns, mut null_ns) = (u128::MAX, u128::MAX);
    for _ in 0..5 {
        off_ns = off_ns.min(sweep(&mut off, true));
        null_ns = null_ns.min(sweep(&mut on, true));
    }
    let overhead_frac = null_ns as f64 / off_ns.max(1) as f64 - 1.0;
    TraceOverhead {
        objects: m,
        passes,
        off_ns: off_ns as u64,
        null_sink_ns: null_ns as u64,
        overhead_frac,
        required_max: 0.02,
        pass: overhead_frac <= 0.02,
    }
}

fn main() {
    let smoke = matches!(
        std::env::var("JESSY_SCALE").as_deref(),
        Ok("small") | Ok("SMALL")
    );
    println!("X4. OBJECT-ACCESS FAST PATH (single-writer arena vs seed layout)\n");

    // (m, timed passes): fewer passes at larger M keeps the full sweep tractable.
    let sizes: Vec<(usize, usize)> = if smoke {
        vec![(4_096, 5)]
    } else {
        vec![(4_096, 400), (65_536, 60), (262_144, 20)]
    };

    let mut table = TextTable::new(&[
        "scenario",
        "objects",
        "seed (ns/acc)",
        "arena (ns/acc)",
        "speedup",
        "arena Macc/s",
        "seed Macc/s",
    ]);
    let mut cells = Vec::new();
    for &(m, passes) in &sizes {
        for scenario in ["home_hit", "cache_hit", "armed_trap"] {
            let c = measure(scenario, m, passes);
            let per = |ns: u128| ns as f64 / (c.m * c.passes) as f64;
            table.row(&[
                c.scenario.to_string(),
                c.m.to_string(),
                format!("{:.1}", per(c.seed_ns)),
                format!("{:.1}", per(c.new_ns)),
                format!("{:.2}x", c.speedup()),
                format!("{:.1}", c.macc_s(c.new_ns)),
                format!("{:.1}", c.macc_s(c.seed_ns)),
            ]);
            cells.push(c);
        }
    }
    println!("{}", table.render());
    println!("speedup = seed ns/access / arena ns/access at steady state (warmup pass");
    println!("excluded). armed_trap times the profiler rhythm: arm + fire, once per pass.");

    // Observability tax: the unarmed cache-hit lane with a NullSink installed
    // must stay within 2% of the sink-free engine.
    let (ov_m, ov_passes) = *sizes.first().unwrap();
    let overhead = measure_trace_overhead(ov_m, ov_passes);
    println!(
        "\ntracing-off overhead (cache_hit, M={}): no-sink {:.1} ns/acc, NullSink {:.1} ns/acc \
         ({:+.2}% — gate ≤ {:.0}% in full mode)",
        overhead.objects,
        overhead.off_ns as f64 / (ov_m * ov_passes) as f64,
        overhead.null_sink_ns as f64 / (ov_m * ov_passes) as f64,
        overhead.overhead_frac * 100.0,
        overhead.required_max * 100.0,
    );

    if smoke {
        println!("\nsmoke mode: skipping BENCH_access_path.json (checked-in file is the full run)");
        return;
    }

    // Acceptance at the cache-resident working set: the software fast path,
    // not DRAM latency, is what the single-writer arena changed.
    let accept_m = sizes.first().unwrap().0;
    let unarmed_min = cells
        .iter()
        .filter(|c| c.m == accept_m && c.scenario != "armed_trap")
        .map(Cell::speedup)
        .fold(f64::INFINITY, f64::min);
    let doc = Report {
        bench: "access_path",
        mode: "full",
        results: cells
            .iter()
            .map(|c| CellReport {
                scenario: c.scenario,
                objects: c.m,
                passes: c.passes,
                seed_ns: c.seed_ns as u64,
                new_ns: c.new_ns as u64,
                speedup: c.speedup(),
                new_macc_per_s: c.macc_s(c.new_ns),
                seed_macc_per_s: c.macc_s(c.seed_ns),
            })
            .collect(),
        acceptance: Acceptance {
            scenario: "unarmed (min of home_hit, cache_hit)",
            objects: accept_m,
            required_speedup: 3.0,
            measured_speedup: unarmed_min,
            pass: unarmed_min >= 3.0,
        },
        trace_overhead: overhead,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_access_path.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap() + "\n")
        .expect("write BENCH_access_path.json");
    println!("\nwrote {path}");
    assert!(
        unarmed_min >= 3.0,
        "acceptance: ≥3x accesses/sec over the seed layout on the unarmed path at M={accept_m} (measured {unarmed_min:.2}x)"
    );
    assert!(
        doc.trace_overhead.pass,
        "acceptance: tracing-off overhead ≤2% on the unarmed cache-hit lane (measured {:+.2}%)",
        doc.trace_overhead.overhead_frac * 100.0
    );
}
