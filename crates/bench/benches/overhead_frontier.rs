//! X8. Overhead frontier — budgeted profiling cost vs map accuracy, plus the
//! overload lanes (shed spike, slow node).
//!
//! The graceful-degradation work trades profile fidelity for bounded cost. This
//! bench measures the trade three ways:
//!
//! * **Frontier lane** — the identical neighbour-sharing workload run unbudgeted
//!   and then under tightening `overhead_budget`s. The headline invariant: a 2%
//!   budget must *hold* (steady-state measured cost ≤ 2% of charged compute)
//!   while losing at most 10% relative TCM accuracy against the unbudgeted map.
//! * **Spike lane** — a 10× burst of interval closes against a bounded mailbox,
//!   once per shed policy. Every run completes and every shed is attributable
//!   (the policy counters equal the shed ledger, which depresses adjusted
//!   coverage).
//! * **Slow-node lane** — a node runs 8× slow for the first stretch of the run.
//!   With straggler detection the node is demoted (coverage prorated, rounds
//!   keep closing) and restored after it recovers; without detection the
//!   deadline path alone still converges. Neither wedges.

use std::sync::Arc;

use jessy_bench::TextTable;
use jessy_core::{accuracy_abs, ProfilerConfig, SamplingRate, ShedPolicy};
use jessy_gos::{CostModel, LockId, ObjectId};
use jessy_net::{FaultPlan, LatencyModel, NodeId, SlowWindow};
use jessy_runtime::{Cluster, MasterOutput, RunReport};

const NODES: usize = 2;
const THREADS: usize = 4;

fn small() -> bool {
    matches!(std::env::var("JESSY_SCALE").as_deref(), Ok("small"))
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

// ------------------------------------------------------------- frontier lane

/// One frontier run: every thread sweeps the same 40 shared objects in the
/// same order at `Full` initial sampling, so the true map is a uniform
/// all-pairs band and the steady profiling cost sits around 5% of charged
/// compute — over every budget in the sweep, so the ladder has real work to
/// do. (Identical access order keeps coarsened per-thread samples coincident:
/// what the budget costs is density, not band structure.)
fn frontier_run(budget: Option<f64>, barriers: usize) -> MasterOutput {
    frontier_run_at(SamplingRate::Full, budget, barriers)
}

fn frontier_run_at(rate: SamplingRate, budget: Option<f64>, barriers: usize) -> MasterOutput {
    let mut config = ProfilerConfig::tracking_at(rate);
    config.adaptive_threshold = Some(0.5);
    config.intervals_per_round = 1;
    config.round_deadline_intervals = Some(3);
    let mut builder = Cluster::builder()
        .nodes(NODES)
        .threads(THREADS)
        .latency(LatencyModel::fast_ethernet())
        .costs(CostModel::pentium4_2ghz())
        .profiler(config);
    if let Some(b) = budget {
        builder = builder.overhead_budget(b);
    }
    let mut cluster = builder.build();
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("S", 8);
        (0..40)
            .map(|k| ctx.alloc_scalar_at(NodeId((k % NODES) as u16), class).id)
            .collect::<Vec<ObjectId>>()
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        for _ in 0..barriers {
            for k in 0..40 {
                jt.read(objs[k], |_| {});
            }
            jt.compute(8_000);
            jt.barrier();
        }
    });
    cluster.master_output().expect("master ran").clone()
}

/// Steady-state cost: the mean measured fraction over the back half of the
/// round history, after the ladder has settled.
fn steady_cost(m: &MasterOutput) -> f64 {
    let frac = &m.round_cost_fraction;
    mean(&frac[frac.len() / 2..])
}

fn frontier_lane(barriers: usize) {
    println!("frontier: budgeted cost vs relative TCM accuracy (same workload)\n");
    let baseline = frontier_run(None, barriers);
    let mut t = TextTable::new(&[
        "budget",
        "over rounds",
        "degrades",
        "start cost",
        "steady cost",
        "mean cover",
        "rel acc",
    ]);
    let base_steady = steady_cost(&baseline);
    assert!(
        base_steady > 0.04,
        "the frontier workload must run well over the 2% headline budget, got {base_steady}"
    );
    t.row(&[
        "none".to_string(),
        baseline.budget_over_rounds.to_string(),
        baseline.budget_degrades.to_string(),
        format!("{:.4}", baseline.round_cost_fraction[0]),
        format!("{:.4}", base_steady),
        format!("{:.3}", mean(&baseline.round_coverage)),
        "1.0000".to_string(),
    ]);
    for &b in &[0.10, 0.05, 0.02] {
        let m = frontier_run(Some(b), barriers);
        let steady = steady_cost(&m);
        let acc = accuracy_abs(&m.tcm, &baseline.tcm);
        t.row(&[
            format!("{:.0}%", b * 100.0),
            m.budget_over_rounds.to_string(),
            m.budget_degrades.to_string(),
            format!("{:.4}", m.round_cost_fraction[0]),
            format!("{:.4}", steady),
            format!("{:.3}", mean(&m.round_coverage)),
            format!("{:.4}", acc),
        ]);
        if m.round_cost_fraction[0] > b {
            assert!(
                m.budget_degrades >= 1,
                "a workload starting over a {b} budget must degrade"
            );
        }
        assert!(
            steady <= b,
            "the {b} budget must hold at steady state, measured {steady}"
        );
        if (b - 0.02).abs() < 1e-9 {
            assert!(
                acc >= 0.9,
                "the 2% budget may lose at most 10% relative accuracy, got {acc}"
            );
        }
    }
    println!("{}", t.render());
    println!("the unbudgeted run never degrades (the cost fraction is recorded either");
    println!("way); each budget walks the coarsen→merge→summary ladder only far enough");
    println!("to fit, so tighter budgets cost accuracy monotonically.\n");
}

// ---------------------------------------------------------------- spike lane

/// The spike workload: steady barrier rounds bracketing a burst of uncontended
/// `lock`/`unlock` critical sections — every boundary closes an interval and
/// posts its OAL without yielding the cooperative token, so the 4-slot mailbox
/// must shed under whichever policy is configured.
fn spike_run(policy: ShedPolicy, burst: usize) -> (RunReport, MasterOutput) {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::NX(1));
    config.intervals_per_round = 1;
    config.round_deadline_intervals = Some(3);
    let mut cluster = Cluster::builder()
        .nodes(NODES)
        .threads(THREADS)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(config)
        .oal_mailbox_capacity(4)
        .shed_policy(policy)
        .build();
    let (objs, locks) = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("S", 8);
        let objs = (0..THREADS)
            .map(|k| ctx.alloc_scalar_at(NodeId((k % NODES) as u16), class).id)
            .collect::<Vec<ObjectId>>();
        let locks = (0..THREADS).map(|_| ctx.register_lock()).collect::<Vec<LockId>>();
        (objs, locks)
    });
    let (objs, locks) = (Arc::new(objs), Arc::new(locks));
    cluster.run(move |jt| {
        let t = jt.thread_id().index();
        for _ in 0..5 {
            jt.read(objs[t], |_| {});
            jt.barrier();
        }
        for _ in 0..burst {
            jt.lock(locks[t]);
            jt.unlock(locks[t]);
        }
        for _ in 0..5 {
            jt.read(objs[t], |_| {});
            jt.barrier();
        }
    });
    let report = cluster.report();
    let master = cluster.master_output().expect("master ran").clone();
    (report, master)
}

fn spike_lane(burst: usize) {
    println!("spike: 10x interval-close burst vs a 4-slot mailbox, per shed policy\n");
    let mut t = TextTable::new(&["policy", "sheds", "dropped", "merged", "summarized", "rounds", "min adj cover"]);
    for policy in [ShedPolicy::DropOldestRound, ShedPolicy::MergeBatches, ShedPolicy::SummaryOnly] {
        let (report, master) = spike_run(policy, burst);
        let sheds = report.sheds_dropped + report.sheds_merged + report.sheds_summarized;
        assert!(sheds > 0, "the burst must shed under {policy:?}");
        assert_eq!(
            sheds,
            report.shed_oals.len() as u64,
            "every shed is attributable to its (thread, interval)"
        );
        let adjusted = report.adjusted_round_coverage(1);
        let min_adj = adjusted.iter().copied().fold(1.0f64, f64::min);
        assert!(min_adj < 1.0, "sheds must depress adjusted coverage");
        t.row(&[
            format!("{policy:?}"),
            sheds.to_string(),
            report.sheds_dropped.to_string(),
            report.sheds_merged.to_string(),
            report.sheds_summarized.to_string(),
            master.rounds.to_string(),
            format!("{min_adj:.3}"),
        ]);
    }
    println!("{}", t.render());
    println!("backpressure never blocks the application: the burst completes under every");
    println!("policy, and the shed ledger accounts for exactly what coverage lost.\n");
}

// ------------------------------------------------------------ slow-node lane

/// The slow-node workload: per-thread critical sections (two interval closes
/// per iteration), with node 1 running 8× slow until `until_ns`, then healthy.
fn slow_run(detect: bool, iters: usize, until_ns: u64) -> (RunReport, MasterOutput) {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::NX(1));
    config.intervals_per_round = 1;
    config.round_deadline_intervals = Some(4);
    let mut builder = Cluster::builder()
        .nodes(NODES)
        .threads(THREADS)
        .latency(LatencyModel::free())
        .costs(CostModel::pentium4_2ghz())
        .profiler(config)
        .faults(FaultPlan {
            slow: vec![SlowWindow {
                node: NodeId(1),
                from_ns: 0,
                until_ns: Some(until_ns),
                factor: 8.0,
            }],
            ..FaultPlan::default()
        });
    if detect {
        builder = builder.straggler_lag(1.2);
    }
    let mut cluster = builder.build();
    let (objs, locks) = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("S", 8);
        let objs = (0..THREADS)
            .map(|k| ctx.alloc_scalar_at(NodeId((k % NODES) as u16), class).id)
            .collect::<Vec<ObjectId>>();
        let locks = (0..THREADS).map(|_| ctx.register_lock()).collect::<Vec<LockId>>();
        (objs, locks)
    });
    let (objs, locks) = (Arc::new(objs), Arc::new(locks));
    cluster.run(move |jt| {
        let t = jt.thread_id().index();
        for _ in 0..iters {
            jt.lock(locks[t]);
            jt.read(objs[t], |_| {});
            jt.compute(50);
            jt.unlock(locks[t]);
        }
    });
    let report = cluster.report();
    let master = cluster.master_output().expect("master ran").clone();
    (report, master)
}

fn slow_lane(iters: usize, until_ns: u64) {
    println!("slow node: node 1 at 8x service time for the first stretch of the run\n");
    let mut t = TextTable::new(&["detection", "stragglers", "rounds", "deadline", "mean cover"]);
    for detect in [false, true] {
        let (report, master) = slow_run(detect, iters, until_ns);
        assert!(master.rounds > 0, "the slow-node run must converge");
        assert_eq!(report.oal_post_failures, 0, "slowness loses nothing");
        if detect {
            assert!(master.stragglers >= 1, "the slow node must be demoted");
        } else {
            assert_eq!(master.stragglers, 0);
        }
        t.row(&[
            if detect { "ewma demote" } else { "deadline only" }.to_string(),
            master.stragglers.to_string(),
            master.rounds.to_string(),
            master.deadline_rounds.to_string(),
            format!("{:.3}", mean(&master.round_coverage)),
        ]);
    }
    println!("{}", t.render());
    println!("both lanes converge; demotion prorates the straggler out of the coverage");
    println!("denominator while it lags (its late intervals still reach the map) and");
    println!("restores it once its progress deficit decays below half the threshold.");
}

fn main() {
    println!("X8. OVERHEAD FRONTIER (budgeted profiling, sheds, gray failure)\n");
    let (barriers, burst, iters) = if small() { (300, 30, 60) } else { (600, 60, 120) };
    frontier_lane(barriers);
    spike_lane(burst);
    slow_lane(iters, 30_000);
}
