//! X10. Phase adaptation — drift re-activation vs the frozen-forever baseline.
//!
//! The phase-shift workload converges its `Cell` class during the stable
//! phase A, then flips its sharing graph: new pairings, small moving hot
//! windows, skewed intensities. A controller that freezes converged classes
//! forever keeps sampling phase B at the coarse phase-A gap and reports a
//! flickering, wrong map; drift re-activation un-converges the class on the
//! post-flip `E_ABS` spike and walks the rate finer until the map settles
//! again.
//!
//! Four lanes, identical workload stream (window placement depends only on
//! workload inputs, never on rates or timing):
//!
//! * `reference` — full sampling, no adaptation: the ground-truth map.
//! * `frozen`    — adaptive controller, drift detection **off** (the pre-fix
//!   behavior): converges in phase A and never reacts to the flip.
//! * `drift`     — the same controller with drift detection on.
//! * `no-flip identity` — a flip-free run with drift on vs off: zero
//!   re-activations and a bit-identical TCM, the "drift is free when nothing
//!   drifts" regression gate.
//!
//! Modes: default writes `BENCH_phase_adapt.json` at the repo root and
//! asserts the acceptance gates (drift accuracy ≥ 0.95, frozen demonstrably
//! lower, bounded re-convergence lag). `JESSY_SCALE=small` runs a smoke sweep
//! and does not touch the checked-in JSON.

use jessy_bench::TextTable;
use jessy_core::{accuracy_abs, ProfilerConfig, SamplingRate};
use jessy_gos::CostModel;
use jessy_net::LatencyModel;
use jessy_runtime::{Cluster, RunReport};
use jessy_workloads::phase_shift::{self, PhaseShiftConfig};
use serde::Serialize;

const NODES: usize = 4;
const THREADS: usize = 8;

fn small() -> bool {
    matches!(
        std::env::var("JESSY_SCALE").as_deref(),
        Ok("small") | Ok("SMALL")
    )
}

/// Controller configuration of one lane.
#[derive(Clone, Copy, PartialEq)]
enum Lane {
    /// Full sampling, no adaptation: ground truth.
    Reference,
    /// Adaptive, drift detection off (the frozen-forever baseline).
    Frozen,
    /// Adaptive with drift re-activation.
    Drift,
}

fn profiler_for(lane: Lane) -> ProfilerConfig {
    let mut config = match lane {
        Lane::Reference => ProfilerConfig::tracking_at(SamplingRate::Full),
        _ => ProfilerConfig::tracking_at(SamplingRate::NX(1)),
    };
    config.intervals_per_round = 1;
    if lane != Lane::Reference {
        config.adaptive_threshold = Some(0.1);
    }
    if lane == Lane::Drift {
        config.drift_threshold = Some(0.3);
        config.drift_hysteresis_rounds = 2;
        config.drift_max_reactivations = 8;
    }
    config
}

/// One deterministic run of the phase-shift workload under `lane`'s profiler.
fn run(lane: Lane, cfg: PhaseShiftConfig) -> RunReport {
    let mut cluster = Cluster::builder()
        .nodes(NODES)
        .threads(THREADS)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(profiler_for(lane))
        .build();
    phase_shift::run_on(&mut cluster, cfg)
}

#[derive(Serialize)]
struct LaneReport {
    lane: &'static str,
    accuracy_abs: f64,
    reconvergence_lag: u64,
    drift_reactivations: u64,
    rate_changes: u64,
    converged_classes: u64,
}

#[derive(Serialize)]
struct Identity {
    reactivations: u64,
    tcm_identical: bool,
    pass: bool,
}

#[derive(Serialize)]
struct Acceptance {
    required_drift_accuracy: f64,
    measured_drift_accuracy: f64,
    measured_frozen_accuracy: f64,
    max_lag_rounds: u64,
    measured_lag_rounds: u64,
    pass: bool,
}

#[derive(Serialize)]
struct Report {
    bench: &'static str,
    mode: &'static str,
    n_cells: usize,
    hot: usize,
    flip_round: usize,
    rounds: usize,
    lanes: Vec<LaneReport>,
    identity: Identity,
    acceptance: Acceptance,
}

fn main() {
    let smoke = small();
    println!("X10. PHASE ADAPTATION (drift re-activation vs frozen baseline)\n");
    let cfg = if smoke {
        PhaseShiftConfig::small()
    } else {
        PhaseShiftConfig::paper()
    };
    // Post-flip lag must fit well inside phase B, with slack for the ladder
    // to walk several rungs after the hysteresis window.
    let max_lag = (cfg.rounds - cfg.flip_round) as u64 - 2;

    let reference = run(Lane::Reference, cfg);
    let truth = &reference.master.as_ref().expect("master ran").tcm;

    let mut t = TextTable::new(&[
        "lane",
        "rel acc",
        "lag (rounds)",
        "reactivations",
        "rate changes",
        "converged",
    ]);
    let mut lanes = Vec::new();
    let mut measured = std::collections::HashMap::new();
    for (lane, name) in [(Lane::Frozen, "frozen"), (Lane::Drift, "drift")] {
        let report = run(lane, cfg);
        let m = report.master.as_ref().expect("master ran");
        let acc = accuracy_abs(&m.tcm, truth);
        let lag = phase_shift::reconvergence_lag(&report, cfg.flip_round);
        t.row(&[
            name.to_string(),
            format!("{acc:.4}"),
            lag.to_string(),
            m.drift_reactivations.to_string(),
            (m.rate_changes.len() as u64).to_string(),
            m.converged_classes.to_string(),
        ]);
        lanes.push(LaneReport {
            lane: name,
            accuracy_abs: acc,
            reconvergence_lag: lag,
            drift_reactivations: m.drift_reactivations,
            rate_changes: m.rate_changes.len() as u64,
            converged_classes: m.converged_classes,
        });
        measured.insert(name, (acc, lag, m.drift_reactivations));
    }
    println!("{}", t.render());
    println!("rel acc = 1 - E_ABS against the full-sampling reference of the identical");
    println!("workload stream; lag = post-flip rounds with the Cell class un-converged.\n");

    let (frozen_acc, frozen_lag, frozen_re) = measured["frozen"];
    let (drift_acc, drift_lag, drift_re) = measured["drift"];

    // Behavioral invariants that hold at every scale.
    assert_eq!(frozen_re, 0, "the frozen lane must never re-activate");
    assert_eq!(
        frozen_lag, 0,
        "frozen-forever never un-converges after the flip (lag 0 = blind, not fast)"
    );
    assert!(drift_re >= 1, "the flip must trip the drift detector");
    assert!(
        drift_lag >= 1 && drift_lag <= max_lag,
        "re-convergence lag must be positive and bounded, got {drift_lag} (max {max_lag})"
    );

    // No-flip identity: drift detection must be inert when nothing drifts.
    let calm = PhaseShiftConfig {
        flip_round: cfg.rounds,
        ..cfg
    };
    let with_drift = run(Lane::Drift, calm);
    let without = run(Lane::Frozen, calm);
    let (dm, fm) = (
        with_drift.master.as_ref().expect("master ran"),
        without.master.as_ref().expect("master ran"),
    );
    let identity = Identity {
        reactivations: dm.drift_reactivations,
        tcm_identical: dm.tcm.raw() == fm.tcm.raw(),
        pass: dm.drift_reactivations == 0 && dm.tcm.raw() == fm.tcm.raw(),
    };
    assert!(
        identity.pass,
        "a flip-free run with drift on must be bit-identical to drift off \
         (reactivations {}, identical {})",
        identity.reactivations, identity.tcm_identical
    );
    println!(
        "no-flip identity: {} reactivations, TCM identical to drift-off: {}\n",
        identity.reactivations, identity.tcm_identical
    );

    if smoke {
        println!("smoke mode: skipping BENCH_phase_adapt.json (checked-in file is the full run)");
        return;
    }

    let acceptance = Acceptance {
        required_drift_accuracy: 0.95,
        measured_drift_accuracy: drift_acc,
        measured_frozen_accuracy: frozen_acc,
        max_lag_rounds: max_lag,
        measured_lag_rounds: drift_lag,
        pass: drift_acc >= 0.95 && frozen_acc < drift_acc && drift_lag <= max_lag,
    };
    let doc = Report {
        bench: "phase_adapt",
        mode: "full",
        n_cells: cfg.n_cells,
        hot: cfg.hot,
        flip_round: cfg.flip_round,
        rounds: cfg.rounds,
        lanes,
        identity,
        acceptance,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_phase_adapt.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap() + "\n")
        .expect("write BENCH_phase_adapt.json");
    println!("wrote {path}");
    assert!(
        drift_acc >= 0.95,
        "acceptance: post-flip accuracy must recover to >= 0.95 with drift detection, got {drift_acc:.4}"
    );
    assert!(
        frozen_acc < drift_acc,
        "acceptance: the frozen baseline must be demonstrably less accurate \
         (frozen {frozen_acc:.4} vs drift {drift_acc:.4})"
    );
}
