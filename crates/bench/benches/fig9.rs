//! FIG. 9 — accuracy of correlation tracking vs sampling rate.
//!
//! Methodology (Section IV.A.2): 16 threads per application; start from the coarsest
//! rate and halve the gap every step (512X → … → 1X on our 8-byte-word heap; the
//! paper's 1024X with 4-byte words is the same full-sampling bound). For each rate
//! the cumulative TCM is compared against
//!
//! * the **full-sampling** map → *absolute* accuracy, and
//! * the **next finer rate's** map → *relative* accuracy,
//!
//! under both distance metrics (`E_ABS`, `E_EUC`). The paper's findings to reproduce:
//! ABS accuracy is higher and more stable than EUC; relative tracks absolute; almost
//! every rate stays ≥ 95% accurate.

use jessy_bench::{rate_ladder, run_tracked_tcm, scale, TextTable};
use jessy_core::{accuracy_abs, accuracy_euc, ProfilerConfig, SamplingRate, Tcm};
use jessy_workloads::WorkloadKind;

/// When `JESSY_CSV_DIR` is set, dump each workload's accuracy series (and the
/// full-sampling TCM) there as CSV for external plotting.
fn csv_dir() -> Option<std::path::PathBuf> {
    std::env::var("JESSY_CSV_DIR").ok().map(Into::into)
}

fn main() {
    let scale = scale();
    println!("FIG. 9. ACCURACY OF CORRELATION TRACKING WITH ADAPTIVE OBJECT SAMPLING");
    println!("(16 threads on 8 nodes; accuracy = 1 - E; scale: {scale:?})\n");

    for kind in WorkloadKind::ALL {
        println!("== ({}) ==", kind.name());
        let ladder = rate_ladder(512);
        let mut tcms: Vec<(String, Tcm)> = Vec::new();
        for rate in &ladder {
            let (_, tcm) =
                run_tracked_tcm(kind, scale, 8, 16, ProfilerConfig::tracking_at(*rate));
            tcms.push((rate.label(), tcm));
        }
        let (_, full) = run_tracked_tcm(
            kind,
            scale,
            8,
            16,
            ProfilerConfig::tracking_at(SamplingRate::Full),
        );

        let mut t = TextTable::new(&[
            "Rate",
            "Absolute/ABS",
            "Relative/ABS",
            "Absolute/EUC",
            "Relative/EUC",
        ]);
        let mut abs_accs = Vec::new();
        for (i, (label, tcm)) in tcms.iter().enumerate() {
            // Relative reference: the next finer rate (the last one refines to full).
            let finer = if i + 1 < tcms.len() {
                &tcms[i + 1].1
            } else {
                &full
            };
            let a_abs = accuracy_abs(tcm, &full);
            abs_accs.push(a_abs);
            t.row(&[
                label.clone(),
                format!("{:.1}%", a_abs * 100.0),
                format!("{:.1}%", accuracy_abs(tcm, finer) * 100.0),
                format!("{:.1}%", accuracy_euc(tcm, &full) * 100.0),
                format!("{:.1}%", accuracy_euc(tcm, finer) * 100.0),
            ]);
        }
        println!("{}", t.render());
        if let Some(dir) = csv_dir() {
            let _ = std::fs::create_dir_all(&dir);
            let mut csv = String::from("rate,absolute_abs\n");
            for ((label, _), acc) in tcms.iter().zip(&abs_accs) {
                csv.push_str(&format!("{label},{acc}\n"));
            }
            let base = dir.join(format!("fig9_{}", kind.name().to_lowercase().replace('-', "_")));
            let _ = std::fs::write(base.with_extension("csv"), csv);
            let _ = std::fs::write(base.with_extension("tcm.csv"), full.to_csv());
            println!("(CSV written under {})", dir.display());
        }
        let min = abs_accs.iter().cloned().fold(1.0f64, f64::min);
        let avg = abs_accs.iter().sum::<f64>() / abs_accs.len() as f64;
        println!(
            "absolute/ABS: min {:.1}%, mean {:.1}%  (paper: almost all rates >= 95%)\n",
            min * 100.0,
            avg * 100.0
        );
    }
}
