//! TABLE V — overhead of sticky-set footprint profiling.
//!
//! Methodology (Section IV.B.1): single-threaded runs isolate each cost component:
//!
//! * **C1, stack sampling** — gaps of 4 ms and 16 ms, immediate vs lazy frame
//!   extraction (correlation tracking and object sampling off);
//! * **C2, sticky-set footprinting** — repeated object sampling, nonstop vs
//!   100 ms-timer cadence, at 4X vs full sampling (stack sampling off);
//! * **sticky-set resolution** — invoked once per closed interval (the paper measures
//!   it eagerly at the end of each HLRC interval), reported as the extra time over the
//!   footprinting run it rides on.

use std::sync::Arc;

use parking_lot::Mutex;

use jessy_bench::{bh_cfg, scale, sor_cfg, water_cfg, Scale, TextTable};
use jessy_core::{
    FootprintConfig, FootprintMode, ProfilerConfig, SamplingRate, StackSamplingConfig,
};
use jessy_gos::CostModel;
use jessy_net::LatencyModel;
use jessy_runtime::{Cluster, RunReport};
use jessy_workloads::{barnes_hut, sor, water, WorkloadKind};

/// Run single-threaded with the given profiler config; optionally resolve the sticky
/// set after every simulated interval's worth of work (the resolution column).
fn run1(kind: WorkloadKind, scale: Scale, config: ProfilerConfig, resolve: bool) -> RunReport {
    let mut cluster = Cluster::builder()
        .nodes(1)
        .threads(1)
        .latency(LatencyModel::fast_ethernet())
        .costs(CostModel::pentium4_2ghz())
        .profiler(config)
        .build();
    let resolved: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    match kind {
        WorkloadKind::Sor => {
            let cfg = sor_cfg(scale);
            let h = Arc::new(cluster.init(|ctx| sor::setup(ctx, &cfg, 1, 1)));
            let r = Arc::clone(&resolved);
            cluster.run(move |jt| {
                sor::thread_body(jt, &cfg, &h);
                if resolve {
                    let intervals = jt.profiler().interval();
                    for _ in 0..intervals {
                        jt.profiler().resolve_sticky(jt.gos(), jt.clock());
                    }
                    *r.lock() = intervals;
                }
            });
        }
        WorkloadKind::BarnesHut => {
            let cfg = bh_cfg(scale);
            let h = Arc::new(cluster.init(|ctx| barnes_hut::setup(ctx, &cfg, 1, 1)));
            let r = Arc::clone(&resolved);
            cluster.run(move |jt| {
                barnes_hut::thread_body(jt, &cfg, &h);
                if resolve {
                    let intervals = jt.profiler().interval();
                    for _ in 0..intervals {
                        jt.profiler().resolve_sticky(jt.gos(), jt.clock());
                    }
                    *r.lock() = intervals;
                }
            });
        }
        WorkloadKind::WaterSpatial => {
            let cfg = water_cfg(scale);
            let h = Arc::new(cluster.init(|ctx| water::setup(ctx, &cfg, 1, 1)));
            let r = Arc::clone(&resolved);
            cluster.run(move |jt| {
                water::thread_body(jt, &cfg, &h);
                if resolve {
                    let intervals = jt.profiler().interval();
                    for _ in 0..intervals {
                        jt.profiler().resolve_sticky(jt.gos(), jt.clock());
                    }
                    *r.lock() = intervals;
                }
            });
        }
        WorkloadKind::Lu => unreachable!("Table V covers the paper's three workloads"),
    }
    cluster.report()
}

fn stack_config(gap_ms: u64, lazy: bool) -> ProfilerConfig {
    let mut c = ProfilerConfig::disabled();
    c.stack = Some(StackSamplingConfig {
        gap_ns: gap_ms * 1_000_000,
        lazy_extraction: lazy,
    });
    c
}

fn footprint_config(mode: FootprintMode, rate: SamplingRate) -> ProfilerConfig {
    let mut c = ProfilerConfig::disabled();
    c.initial_rate = rate;
    c.footprint = Some(FootprintConfig { mode, min_gap: 1 });
    c
}

fn main() {
    let scale = scale();
    println!("TABLE V. OVERHEAD OF STICKY-SET FOOTPRINT PROFILING  (scale: {scale:?})");
    println!("(single thread; simulated execution time, ms; overhead vs baseline)\n");

    let cell = |run: &RunReport, base: &RunReport| -> String {
        format!("{:.0} ({:+.2}%)", run.sim_exec_ms(), run.overhead_pct(base))
    };

    let mut t = TextTable::new(&[
        "Benchmark",
        "Baseline",
        "Stack imm 4ms",
        "Stack imm 16ms",
        "Stack lazy 4ms",
        "Stack lazy 16ms",
        "FP nonstop 4X",
        "FP nonstop full",
        "FP timer 4X",
        "FP timer full",
        "+Resolution",
    ]);

    for kind in WorkloadKind::ALL {
        let base = run1(kind, scale, ProfilerConfig::disabled(), false);
        let timer = FootprintMode::Timer(100_000_000);
        let fp_timer_4x = run1(
            kind,
            scale,
            footprint_config(timer, SamplingRate::NX(4)),
            false,
        );
        // Resolution rides on the timer/4X footprinting run plus 16 ms lazy stack
        // sampling (the configuration the paper settles on).
        let mut res_cfg = footprint_config(timer, SamplingRate::NX(4));
        res_cfg.stack = Some(StackSamplingConfig {
            gap_ns: 16_000_000,
            lazy_extraction: true,
        });
        let with_res = run1(kind, scale, res_cfg, true);

        t.row(&[
            kind.name().to_string(),
            format!("{:.0}", base.sim_exec_ms()),
            cell(&run1(kind, scale, stack_config(4, false), false), &base),
            cell(&run1(kind, scale, stack_config(16, false), false), &base),
            cell(&run1(kind, scale, stack_config(4, true), false), &base),
            cell(&run1(kind, scale, stack_config(16, true), false), &base),
            cell(
                &run1(
                    kind,
                    scale,
                    footprint_config(FootprintMode::Nonstop, SamplingRate::NX(4)),
                    false,
                ),
                &base,
            ),
            cell(
                &run1(
                    kind,
                    scale,
                    footprint_config(FootprintMode::Nonstop, SamplingRate::Full),
                    false,
                ),
                &base,
            ),
            cell(&fp_timer_4x, &base),
            cell(
                &run1(
                    kind,
                    scale,
                    footprint_config(timer, SamplingRate::Full),
                    false,
                ),
                &base,
            ),
            format!("{:+.2}%", with_res.overhead_pct(&fp_timer_4x)),
        ]);
    }
    println!("{}", t.render());
    println!("paper shape: stack sampling negligible (<1.5%, lazy beating immediate);");
    println!("nonstop footprinting the costly one (up to ~9%), tamed by the 100 ms");
    println!("timer and the 4X rate (to ~0-5%); resolution a few percent and only paid");
    println!("at migration time in production (here invoked once per interval).");
}
