//! Chaos sweep — TCM robustness under lossy OAL delivery.
//!
//! The correlation rounds of Section II.B assume the coordinator eventually sees
//! every per-interval OAL. This bench measures what a *lossy* fabric does to the
//! recovered map: a seeded `FaultPlan` drops a growing fraction of OAL batches, the
//! master closes rounds by deadline with partial coverage, and the adaptive
//! controller skips steering below the coverage floor. The headline column is the
//! relative accuracy (`1 − E_ABS`) of each lossy map against the zero-fault run of
//! the identical workload — the paper's own metric for "how wrong is this profile".

use std::sync::Arc;

use jessy_bench::TextTable;
use jessy_core::{accuracy_abs, ProfilerConfig, SamplingRate, Tcm};
use jessy_gos::{CostModel, ObjectId};
use jessy_net::{FaultPlan, LatencyModel, NodeId};
use jessy_runtime::{Cluster, MasterOutput};

const THREADS: usize = 8;
const NODES: usize = 4;
const BARRIERS: usize = 60;

/// One full cluster run at the given OAL drop rate; `None` disables fault injection
/// entirely (the baseline build path, not just a zero plan).
fn run(oal_drop: Option<f64>) -> (MasterOutput, jessy_net::FaultStats) {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::Full);
    config.intervals_per_round = 2;
    config.adaptive_threshold = Some(0.05);
    config.round_deadline_intervals = Some(4);
    config.min_round_coverage = 0.9;
    let mut builder = Cluster::builder()
        .nodes(NODES)
        .threads(THREADS)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(config);
    if let Some(p) = oal_drop {
        builder = builder.faults(FaultPlan {
            oal_drop: p,
            ..FaultPlan::default()
        });
    }
    let mut cluster = builder.build();
    // Neighbour-sharing workload: thread t shares object t with thread t+1, so the
    // true map is a banded matrix the lossy runs get compared against.
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("S", 8);
        (0..THREADS)
            .map(|k| ctx.alloc_scalar_at(NodeId((k % NODES) as u16), class).id)
            .collect::<Vec<ObjectId>>()
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        let t = jt.thread_id().index();
        for _ in 0..BARRIERS {
            jt.read(objs[t], |_| {});
            jt.read(objs[(t + 1) % THREADS], |_| {});
            jt.barrier();
        }
    });
    let master = cluster.master_output().expect("master ran").clone();
    let faults = cluster.report().net.faults;
    (master, faults)
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn main() {
    println!("X4. CHAOS SWEEP (TCM accuracy vs OAL drop rate)\n");
    let (baseline, _) = run(None);
    let truth: &Tcm = &baseline.tcm;
    let mut t = TextTable::new(&[
        "oal drop",
        "dropped",
        "rounds",
        "deadline",
        "mean cover",
        "late",
        "skipped",
        "rel acc",
    ]);
    for &p in &[0.0, 0.05, 0.10, 0.20, 0.40] {
        let (m, faults) = run(Some(p));
        t.row(&[
            format!("{:.0}%", p * 100.0),
            faults.dropped.to_string(),
            m.rounds.to_string(),
            m.deadline_rounds.to_string(),
            format!("{:.3}", mean(&m.round_coverage)),
            m.late_oals.to_string(),
            m.skipped_rate_changes.len().to_string(),
            format!("{:.4}", accuracy_abs(&m.tcm, truth)),
        ]);
    }
    println!("{}", t.render());
    println!("every run completes (deadline rounds close around the losses); accuracy");
    println!("degrades smoothly with the drop rate because each surviving OAL still");
    println!("lands in the cumulative map, and low-coverage rounds stop steering the");
    println!("sampling rates instead of steering them on a partial view.");
}
