//! X2 — distributed TCM deduction (Section V: "it is desirable to have distributed
//! algorithms for deducing correlation maps in a more scalable way").
//!
//! Measures the centralized `O(M·N²)` construction against the object-sharded
//! reduction for growing object populations, with reducers on real OS threads, and
//! verifies the sharded result is bit-identical.

use std::time::Instant;

use jessy_bench::TextTable;
use jessy_core::distributed::{split_oal_into, ShardedTcmReducer, SplitScratch};
use jessy_core::oal::{Oal, OalEntry};
use jessy_core::TcmBuilder;
use jessy_gos::ClassId;
use jessy_gos::ObjectId;
use jessy_net::ThreadId;

/// Synthesize OALs: `m` objects, `n` threads, each object shared by `k` threads.
fn synth(m: usize, n: usize, k: usize) -> Vec<Oal> {
    (0..n as u32)
        .map(|t| Oal {
            thread: ThreadId(t),
            interval: 0,
            entries: (0..m)
                .filter(|o| (0..k).any(|j| ((o + j) % n) as u32 == t))
                .map(|o| OalEntry {
                    obj: ObjectId(o as u32),
                    class: ClassId(0),
                    bytes: 64,
                })
                .collect(),
        })
        .collect()
}

fn central_ns(oals: &[Oal], n: usize) -> (u128, jessy_core::Tcm) {
    let t0 = Instant::now();
    let mut b = TcmBuilder::new(n);
    for o in oals {
        b.ingest(o);
    }
    b.close_round();
    (t0.elapsed().as_nanos(), b.tcm().clone())
}

fn sharded_ns(oals: &[Oal], n: usize, shards: usize) -> (u128, jessy_core::Tcm) {
    // Pre-split (the split happens at the worker nodes in the real scheme); one
    // scratch is reused across every OAL instead of allocating per call.
    let mut scratch = SplitScratch::new();
    let mut per_shard: Vec<Vec<Oal>> = vec![Vec::new(); shards];
    for o in oals {
        for (s, slice) in split_oal_into(o, shards, &mut scratch) {
            per_shard[s].push(slice.to_owned());
        }
    }
    let t0 = Instant::now();
    let handles: Vec<_> = per_shard
        .into_iter()
        .map(|slices| {
            std::thread::spawn(move || {
                let mut b = TcmBuilder::new(n);
                for s in &slices {
                    b.ingest(s);
                }
                b.close_round();
                b
            })
        })
        .collect();
    let builders: Vec<TcmBuilder> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let reducer = ShardedTcmReducer::from_shards(builders, n);
    let tcm = reducer.reduce();
    (t0.elapsed().as_nanos(), tcm)
}

fn main() {
    println!("X2. DISTRIBUTED TCM DEDUCTION (object-sharded reduction)\n");
    let n = 32; // threads
    let k = 6; // sharers per object
    let mut t = TextTable::new(&[
        "objects",
        "central (ms)",
        "4 reducers (ms)",
        "8 reducers (ms)",
        "speedup@8",
        "identical",
    ]);
    for m in [10_000usize, 50_000, 200_000] {
        let oals = synth(m, n, k);
        let (c_ns, c_tcm) = central_ns(&oals, n);
        let (s4_ns, s4_tcm) = sharded_ns(&oals, n, 4);
        let (s8_ns, s8_tcm) = sharded_ns(&oals, n, 8);
        let identical = s4_tcm.raw() == c_tcm.raw() && s8_tcm.raw() == c_tcm.raw();
        t.row(&[
            m.to_string(),
            format!("{:.1}", c_ns as f64 / 1e6),
            format!("{:.1}", s4_ns as f64 / 1e6),
            format!("{:.1}", s8_ns as f64 / 1e6),
            format!("{:.1}x", c_ns as f64 / s8_ns as f64),
            identical.to_string(),
        ]);
        assert!(identical, "sharded reduction must be exact");
    }
    println!("{}", t.render());
    println!("the per-object decomposition is exact (matrix addition of shard maps), so");
    println!("the coordinator bottleneck of Table III parallelizes without accuracy loss.");
}
