//! TABLE I — application benchmark characteristics.
//!
//! The paper's Table I is descriptive; we regenerate it with *measured* columns
//! alongside: objects allocated, measured dominant object size, accesses, and
//! intervals per run, from a short profiled run of each workload.

use jessy_bench::{run_tracked, scale, Scale, TextTable};
use jessy_core::{ProfilerConfig, SamplingRate};
use jessy_workloads::{WorkloadKind, WorkloadPreset};

fn main() {
    let scale = scale();
    let preset = match scale {
        Scale::Paper => WorkloadPreset::Paper,
        Scale::Small => WorkloadPreset::Small,
    };
    println!("TABLE I. APPLICATION BENCHMARK CHARACTERISTICS  (scale: {scale:?})\n");

    let mut t = TextTable::new(&[
        "Benchmark",
        "Data set",
        "Rounds",
        "Granularity",
        "Object size (paper)",
        "objects",
        "accesses",
        "intervals",
    ]);
    for kind in WorkloadKind::ALL {
        let report = run_tracked(
            kind,
            scale,
            8,
            8,
            ProfilerConfig::tracking_at(SamplingRate::NX(1)),
        );
        let objects = report
            .master
            .as_ref()
            .map(|m| m.objects_organized)
            .unwrap_or(0);
        t.row(&[
            kind.name().to_string(),
            kind.data_set(preset),
            kind.rounds(preset).to_string(),
            kind.granularity().to_string(),
            kind.object_size().to_string(),
            objects.to_string(),
            report.proto.accesses.to_string(),
            report.profiler.intervals_closed.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("(\"objects\" = distinct shared objects the correlation analyzer organized)");
}
