//! FIG. 1 — false-sharing effect on correlation-tracking preciseness.
//!
//! Barnes-Hut with 32 threads simulating two galaxies in contiguous chunks (the
//! paper's setup: 32 threads, 4K bodies). The **inherent** map comes from
//! ground-truth object-grain tracking ("log inserted at every object access"); the
//! **induced** map replays the identical access stream at 4 KB page granularity.

use std::sync::Arc;

use jessy_bench::{bh_cfg, scale, Scale};
use jessy_core::{accuracy_abs, ProfilerConfig, Tcm};
use jessy_gos::CostModel;
use jessy_net::{LatencyModel, ThreadId};
use jessy_pagedsm::{InducedTcmBuilder, PageFaultModel, PageLayout};
use jessy_runtime::Cluster;
use jessy_workloads::barnes_hut;

fn main() {
    let scale = scale();
    let n_threads = 32;
    let cfg = match scale {
        Scale::Paper => bh_cfg(scale), // 4K bodies, the paper's Fig. 1 size
        Scale::Small => barnes_hut::BhConfig {
            n_bodies: 1024,
            rounds: 3,
            ..bh_cfg(scale)
        },
    };
    println!("FIG. 1. FALSE SHARING EFFECT ON CORRELATION TRACKING PRECISENESS");
    println!(
        "(Barnes-Hut, {} threads, {} bodies, two galaxies; scale: {scale:?})\n",
        n_threads, cfg.n_bodies
    );

    let mut config = ProfilerConfig::ground_truth();
    config.record_oals = true;
    let mut cluster = Cluster::builder()
        .nodes(8)
        .threads(n_threads)
        .latency(LatencyModel::fast_ethernet())
        .costs(CostModel::pentium4_2ghz())
        .profiler(config)
        .build();
    let handles = Arc::new(cluster.init(|ctx| barnes_hut::setup(ctx, &cfg, n_threads, 8)));
    cluster.run(move |jt| barnes_hut::thread_body(jt, &cfg, &handles));

    let master = cluster.master_output().unwrap();
    let inherent = &master.tcm;
    let layout = PageLayout::from_gos(&cluster.shared().gos);
    let mut builder = InducedTcmBuilder::new(n_threads);
    for oal in &master.oal_log {
        builder.ingest(oal, &layout);
    }
    let induced = builder.build();

    println!("(a) inherent pattern (object-grain):");
    print!("{}", inherent.ascii_heatmap());
    println!("\n(b) induced pattern (page-grain, 4 KB):");
    print!("{}", induced.ascii_heatmap());

    let contrast = |tcm: &Tcm| {
        let half = n_threads / 2;
        let (mut intra, mut cross) = (1e-12, 1e-12);
        for i in 1..n_threads {
            for j in (i + 1)..n_threads {
                let v = tcm.at(ThreadId(i as u32), ThreadId(j as u32));
                if (i < half) == (j < half) {
                    intra += v;
                } else {
                    cross += v;
                }
            }
        }
        intra / cross
    };
    println!("\nintra/cross-galaxy contrast: inherent {:.1}x, induced {:.1}x", contrast(inherent), contrast(&induced));
    let mut induced_norm = induced.clone();
    if induced.total() > 0.0 {
        induced_norm.scale(inherent.total() / induced.total());
    }
    println!(
        "normalized agreement between the maps (ABS accuracy): {:.1}%  (low = clues lost)",
        accuracy_abs(&induced_norm, inherent) * 100.0
    );

    // The cost side of the comparison (Section V: D-CVM's page faults vs our checks).
    let model = PageFaultModel::pentium4_2ghz();
    let proto = cluster.report().proto;
    println!(
        "\npage-grain tracking cost: {} protection faults x {} ns = {:.1} ms",
        builder.page_touches(),
        model.fault_ns,
        model.tracking_ns(builder.page_touches()) as f64 / 1e6
    );
    println!(
        "object-grain tracking cost: {} service entries x ~400 ns = {:.1} ms",
        proto.false_invalid_faults + proto.real_faults,
        (proto.false_invalid_faults + proto.real_faults) as f64 * 400.0 / 1e6
    );
}
