//! TABLE III — correlation tracking overheads with OAL transfer.
//!
//! Methodology (Section IV.A.1, O2/O3): eight nodes running one thread each; for each
//! sampling rate, measure (a) the execution time with collect+send enabled, (b) the
//! OAL message volume against the base GOS protocol volume, and (c) the real CPU time
//! the central coordinator spent building the TCM.

use jessy_bench::{rate_is_na, run_tracked, scale, TextTable};
use jessy_core::{ProfilerConfig, SamplingRate};
use jessy_workloads::WorkloadKind;

fn main() {
    let scale = scale();
    println!("TABLE III. CORRELATION TRACKING OVERHEADS  (scale: {scale:?})");
    println!("(8 nodes x 1 thread; collect + send OALs)\n");

    let rates = [
        ("1X", SamplingRate::NX(1)),
        ("4X", SamplingRate::NX(4)),
        ("16X", SamplingRate::NX(16)),
        ("Full", SamplingRate::Full),
    ];

    for kind in WorkloadKind::ALL {
        let base = run_tracked(kind, scale, 8, 8, ProfilerConfig::disabled());
        println!(
            "== {} ==  (no tracking: {:.0} ms, GOS volume {:.0} KB)",
            kind.name(),
            base.sim_exec_ms(),
            base.gos_kb()
        );
        let mut t = TextTable::new(&[
            "Rate",
            "Exec time (ms)",
            "Overhead",
            "OAL vol (KB)",
            "OAL/GOS",
            "TCM time (ms)",
        ]);
        for (label, rate) in rates {
            if rate_is_na(kind, rate) {
                t.row_strs(&[label, "N/A", "N/A", "N/A", "N/A", "N/A"]);
                continue;
            }
            let run = run_tracked(kind, scale, 8, 8, ProfilerConfig::tracking_at(rate));
            let master = run.master.as_ref().expect("tracking on");
            t.row(&[
                label.to_string(),
                format!("{:.0}", run.sim_exec_ms()),
                format!("{:+.2}%", run.overhead_pct(&base)),
                format!("{:.0}", run.oal_kb()),
                format!("{:.2}%", run.net.oal_over_gos() * 100.0),
                format!("{:.1}", master.tcm_build_real_ns as f64 / 1e6),
            ]);
        }
        println!("{}", t.render());
    }
    println!("paper shape: OAL volume 2-4% of GOS below 16X, 8-22% at full sampling");
    println!("(SOR worst: large arrays make full-sampling OALs disproportionately big);");
    println!("exec-time increase noticeable but tolerable below full sampling; TCM");
    println!("computing time the heaviest component, motivating adaptive rate tuning.");
}
