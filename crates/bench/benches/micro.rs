//! Criterion micro-benchmarks of the profiling primitives.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use jessy_core::sampling::GapTable;
use jessy_core::oal::{Oal, OalEntry};
use jessy_core::stack_sampling::StackSampler;
use jessy_core::{SamplingRate, StackSamplingConfig, TcmBuilder};
use jessy_gos::prime::nearest_prime;
use jessy_gos::twin::Diff;
use jessy_gos::{ClassId, CostModel, Gos, GosConfig, ObjectId};
use jessy_net::{ClockBoard, LatencyModel, NodeId, ThreadId};
use jessy_stack::{JavaStack, MethodId, Slot};

fn bench_sampling_decision(c: &mut Criterion) {
    let gaps = GapTable::new(4096);
    gaps.register_class(ClassId(0), 64, SamplingRate::NX(1));
    c.bench_function("sampling/decide_sampled", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            black_box(gaps.decide_sampled(ClassId(0), black_box(seq), 1))
        })
    });
    c.bench_function("sampling/scaled_bytes_array", |b| {
        let mut seq = 0u64;
        b.iter(|| {
            seq += 97;
            black_box(gaps.scaled_bytes(ClassId(0), black_box(seq), 2048))
        })
    });
}

fn bench_nearest_prime(c: &mut Criterion) {
    c.bench_function("sampling/nearest_prime_2^16", |b| {
        b.iter(|| black_box(nearest_prime(black_box(65536))))
    });
}

fn bench_tcm_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcm/build_round");
    for &(m, n) in &[(1_000usize, 16usize), (10_000, 16), (10_000, 64)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("M{m}_N{n}")),
            &(m, n),
            |b, &(m, n)| {
                // Each object shared by 2 threads.
                let oals: Vec<Oal> = (0..n as u32)
                    .map(|t| Oal {
                        thread: ThreadId(t),
                        interval: 0,
                        entries: (0..m)
                            .filter(|o| (o % n) as u32 == t || ((o + 1) % n) as u32 == t)
                            .map(|o| OalEntry {
                                obj: ObjectId(o as u32),
                                class: ClassId(0),
                                bytes: 64,
                            })
                            .collect(),
                    })
                    .collect();
                b.iter(|| {
                    let mut builder = TcmBuilder::new(n);
                    for oal in &oals {
                        builder.ingest(oal);
                    }
                    black_box(builder.close_round().objects)
                })
            },
        );
    }
    group.finish();
}

fn bench_stack_sampling(c: &mut Criterion) {
    let costs = CostModel::free();
    let mut group = c.benchmark_group("stack/sample");
    for lazy in [true, false] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if lazy { "lazy" } else { "immediate" }),
            &lazy,
            |b, &lazy| {
                let board = ClockBoard::new(1);
                let clock = board.handle(ThreadId(0));
                let mut stack = JavaStack::new();
                for d in 0..16 {
                    stack.push_raw(MethodId(d), 8);
                    stack.set_local(0, Slot::Ref(ObjectId(d)));
                }
                let mut sampler = StackSampler::new(StackSamplingConfig {
                    gap_ns: 0,
                    lazy_extraction: lazy,
                });
                b.iter(|| {
                    // Churn one temporary frame per sample, like a running program.
                    stack.push_raw(MethodId(99), 8);
                    sampler.sample(&mut stack, &clock, &costs);
                    stack.pop();
                })
            },
        );
    }
    group.finish();
}

fn bench_twin_diff(c: &mut Criterion) {
    let twin: Vec<f64> = (0..2048).map(|i| i as f64).collect();
    let mut current = twin.clone();
    for i in (0..2048).step_by(37) {
        current[i] += 1.0;
    }
    c.bench_function("gos/diff_2048_words_sparse", |b| {
        b.iter(|| black_box(Diff::compute(black_box(&twin), black_box(&current))))
    });
    let diff = Diff::compute(&twin, &current);
    c.bench_function("gos/diff_apply", |b| {
        let mut target = twin.clone();
        b.iter(|| {
            diff.apply(&mut target);
            black_box(target[0])
        })
    });
}

fn bench_pcct_vs_invariants(c: &mut Criterion) {
    // The related-work contrast: Whaley-style PCCT sampling (method ids only) vs
    // sticky-set invariant mining (frame content extraction + probing).
    use jessy_core::pcct::PcctSampler;
    let costs = CostModel::free();
    let mut group = c.benchmark_group("stack/pcct_vs_invariants");
    group.bench_function("pcct_sample", |b| {
        let board = ClockBoard::new(1);
        let clock = board.handle(ThreadId(0));
        let mut stack = JavaStack::new();
        for d in 0..16 {
            stack.push_raw(MethodId(d), 8);
        }
        let mut sampler = PcctSampler::new(0);
        b.iter(|| {
            sampler.sample(&stack, &clock, &costs);
            black_box(sampler.pcct().samples())
        })
    });
    group.bench_function("invariant_sample", |b| {
        let board = ClockBoard::new(1);
        let clock = board.handle(ThreadId(0));
        let mut stack = JavaStack::new();
        for d in 0..16 {
            stack.push_raw(MethodId(d), 8);
            stack.set_local(0, Slot::Ref(ObjectId(d)));
        }
        let mut sampler = StackSampler::new(StackSamplingConfig {
            gap_ns: 0,
            lazy_extraction: true,
        });
        b.iter(|| {
            stack.push_raw(MethodId(99), 8);
            sampler.sample(&mut stack, &clock, &costs);
            stack.pop();
            black_box(sampler.live_samples())
        })
    });
    group.finish();
}

fn bench_access_path(c: &mut Criterion) {
    let gos = Gos::new(GosConfig {
        n_nodes: 2,
        n_threads: 1,
        latency: LatencyModel::free(),
        costs: CostModel::free(),
        prefetch_depth: 0,
        consistency: jessy_gos::protocol::ConsistencyModel::GlobalHlrc,
    });
    let board = ClockBoard::new(1);
    let clock = board.handle(ThreadId(0));
    let class = gos.classes().register_scalar("X", 8);
    let obj = gos.alloc_scalar(NodeId(0), class, &clock, None);
    gos.read(NodeId(0), obj.id, &clock, |_| {});
    c.bench_function("gos/access_check_hit", |b| {
        b.iter(|| {
            let (v, _) = gos.read(NodeId(0), obj.id, &clock, |d| d[0]);
            black_box(v)
        })
    });
}

criterion_group!(
    benches,
    bench_sampling_decision,
    bench_nearest_prime,
    bench_tcm_build,
    bench_stack_sampling,
    bench_pcct_vs_invariants,
    bench_twin_diff,
    bench_access_path
);
criterion_main!(benches);
