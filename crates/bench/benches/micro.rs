//! Micro-benchmarks of the profiling primitives.
//!
//! Criterion-free (the workspace builds offline): each benchmark is timed with a
//! simple calibrated loop and reported as ns/iter. Pass a substring argument to run
//! a subset, e.g. `cargo bench --bench micro -- tcm`.

use std::hint::black_box;
use std::time::Instant;

use jessy_core::oal::{Oal, OalEntry};
use jessy_core::sampling::GapTable;
use jessy_core::stack_sampling::StackSampler;
use jessy_core::{SamplingRate, StackSamplingConfig, TcmBuilder};
use jessy_gos::prime::nearest_prime;
use jessy_gos::twin::Diff;
use jessy_gos::{ClassId, CostModel, Gos, GosConfig, ObjectId};
use jessy_net::{ClockBoard, LatencyModel, NodeId, ThreadId};
use jessy_stack::{JavaStack, MethodId, Slot};

/// Time `f` with enough iterations to fill ~50 ms and print ns/iter.
fn bench(filter: &str, name: &str, mut f: impl FnMut()) {
    if !name.contains(filter) {
        return;
    }
    // Calibrate the iteration count.
    let mut iters = 8u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = t0.elapsed();
        if elapsed.as_millis() >= 50 || iters >= 1 << 30 {
            let ns = elapsed.as_nanos() as f64 / iters as f64;
            println!("{name:<40} {ns:>12.1} ns/iter   ({iters} iters)");
            return;
        }
        iters *= 4;
    }
}

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    let filter = filter.as_str();

    {
        let gaps = GapTable::new(4096);
        gaps.register_class(ClassId(0), 64, SamplingRate::NX(1));
        let mut seq = 0u64;
        bench(filter, "sampling/decide_sampled", || {
            seq += 1;
            black_box(gaps.decide_sampled(ClassId(0), black_box(seq), 1));
        });
        let mut seq = 0u64;
        bench(filter, "sampling/scaled_bytes_array", || {
            seq += 97;
            black_box(gaps.scaled_bytes(ClassId(0), black_box(seq), 2048));
        });
    }

    bench(filter, "sampling/nearest_prime_2^16", || {
        black_box(nearest_prime(black_box(65536)));
    });

    for &(m, n) in &[(1_000usize, 16usize), (10_000, 16), (10_000, 64)] {
        // Each object shared by 2 threads.
        let oals: Vec<Oal> = (0..n as u32)
            .map(|t| Oal {
                thread: ThreadId(t),
                interval: 0,
                entries: (0..m)
                    .filter(|o| (o % n) as u32 == t || ((o + 1) % n) as u32 == t)
                    .map(|o| OalEntry {
                        obj: ObjectId(o as u32),
                        class: ClassId(0),
                        bytes: 64,
                    })
                    .collect(),
            })
            .collect();
        bench(filter, &format!("tcm/build_round/M{m}_N{n}"), || {
            let mut builder = TcmBuilder::new(n);
            for oal in &oals {
                builder.ingest(oal);
            }
            black_box(builder.close_round().objects);
        });
    }

    {
        // The aggregation tree's hot merge: two ~half-overlapping sparse maps
        // united through a retained scratch (allocation-free at steady state).
        use jessy_core::{MergeScratch, SparseTcm};
        let n = 512;
        let gen = |base: usize| {
            let pairs: Vec<_> = (0..4096)
                .map(|i| {
                    let k = base + i;
                    let a = k % 500;
                    let b = a + 1 + (k / 500) % (n - 1 - a);
                    (ThreadId(a as u32), ThreadId(b as u32), 1.0)
                })
                .collect();
            SparseTcm::from_pairs(n, &pairs)
        };
        let right = gen(2048);
        let mut acc = gen(0);
        let mut scratch = MergeScratch::new();
        // Warm to the union cell set so the timed merges never reallocate.
        acc.merge_with(&right, &mut scratch);
        bench(filter, "tcm/sparse_merge_with_4k_cells", || {
            acc.merge_with(&right, &mut scratch);
            black_box(acc.len());
        });
    }

    for lazy in [true, false] {
        let board = ClockBoard::new(1);
        let clock = board.handle(ThreadId(0));
        let mut stack = JavaStack::new();
        for d in 0..16 {
            stack.push_raw(MethodId(d), 8);
            stack.set_local(0, Slot::Ref(ObjectId(d)));
        }
        let mut sampler = StackSampler::new(StackSamplingConfig {
            gap_ns: 0,
            lazy_extraction: lazy,
        });
        let label = if lazy { "lazy" } else { "immediate" };
        bench(filter, &format!("stack/sample/{label}"), || {
            // Churn one temporary frame per sample, like a running program.
            stack.push_raw(MethodId(99), 8);
            sampler.sample(&mut stack, &clock, &CostModel::free());
            stack.pop();
        });
    }

    {
        // The related-work contrast: Whaley-style PCCT sampling (method ids only) vs
        // sticky-set invariant mining (frame content extraction + probing).
        use jessy_core::pcct::PcctSampler;
        let costs = CostModel::free();
        let board = ClockBoard::new(1);
        let clock = board.handle(ThreadId(0));
        let mut stack = JavaStack::new();
        for d in 0..16 {
            stack.push_raw(MethodId(d), 8);
        }
        let mut sampler = PcctSampler::new(0);
        bench(filter, "stack/pcct_sample", || {
            sampler.sample(&stack, &clock, &costs);
            black_box(sampler.pcct().samples());
        });

        let mut stack = JavaStack::new();
        for d in 0..16 {
            stack.push_raw(MethodId(d), 8);
            stack.set_local(0, Slot::Ref(ObjectId(d)));
        }
        let mut sampler = StackSampler::new(StackSamplingConfig {
            gap_ns: 0,
            lazy_extraction: true,
        });
        bench(filter, "stack/invariant_sample", || {
            stack.push_raw(MethodId(99), 8);
            sampler.sample(&mut stack, &clock, &costs);
            stack.pop();
            black_box(sampler.live_samples());
        });
    }

    {
        let twin: Vec<f64> = (0..2048).map(|i| i as f64).collect();
        let mut current = twin.clone();
        for i in (0..2048).step_by(37) {
            current[i] += 1.0;
        }
        bench(filter, "gos/diff_2048_words_sparse", || {
            black_box(Diff::compute(black_box(&twin), black_box(&current)));
        });
        let diff = Diff::compute(&twin, &current);
        let mut target = twin.clone();
        bench(filter, "gos/diff_apply", || {
            diff.apply(&mut target);
            black_box(target[0]);
        });
    }

    {
        let gos = Gos::new(GosConfig {
            n_nodes: 2,
            n_threads: 1,
            latency: LatencyModel::free(),
            costs: CostModel::free(),
            prefetch_depth: 0,
            consistency: jessy_gos::protocol::ConsistencyModel::GlobalHlrc,
            faults: None,
        });
        let board = ClockBoard::new(1);
        let clock = board.handle(ThreadId(0));
        let class = gos.classes().register_scalar("X", 8);
        let obj = gos.alloc_scalar(NodeId(0), class, &clock, None);
        let mut space = jessy_gos::ThreadSpace::new(ThreadId(0));
        gos.read(&mut space, NodeId(0), obj.id, &clock, |_| {});
        bench(filter, "gos/access_check_hit", || {
            let (v, _) = gos.read(&mut space, NodeId(0), obj.id, &clock, |d| d[0]);
            black_box(v);
        });
    }
}
