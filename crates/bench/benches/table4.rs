//! TABLE IV — accuracy of the sticky-set footprint.
//!
//! Methodology (Section IV.B.2): 8 threads per application; profile each thread's
//! per-class sticky-set footprint via object sampling at 4X and at full sampling, and
//! report the average footprint, the average absolute difference, and the accuracy
//! `1 - |diff| / full`. Footprints are gap-scaled, so the two rates are directly
//! comparable (even full sampling is itself an estimate — the paper makes the same
//! caveat).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use jessy_bench::{bh_cfg, scale, sor_cfg, water_cfg, Scale, TextTable};
use jessy_core::{FootprintConfig, FootprintMode, ProfilerConfig, SamplingRate};
use jessy_gos::{ClassId, CostModel};
use jessy_net::LatencyModel;
use jessy_runtime::Cluster;
use jessy_workloads::{barnes_hut, sor, water, WorkloadKind};

/// Run one workload with footprinting on; returns per-class average footprints
/// (averaged over threads), keyed by class name.
fn footprints(kind: WorkloadKind, scale: Scale, rate: SamplingRate) -> HashMap<String, f64> {
    let mut config = ProfilerConfig::disabled();
    config.initial_rate = rate;
    config.footprint = Some(FootprintConfig {
        mode: FootprintMode::Nonstop,
        min_gap: 1,
    });
    let n_threads = 8;
    let mut cluster = Cluster::builder()
        .nodes(8)
        .threads(n_threads)
        .latency(LatencyModel::fast_ethernet())
        .costs(CostModel::pentium4_2ghz())
        .profiler(config)
        .build();

    let out: Arc<Mutex<Vec<HashMap<ClassId, f64>>>> = Arc::new(Mutex::new(Vec::new()));
    match kind {
        WorkloadKind::Sor => {
            let cfg = sor_cfg(scale);
            let h = Arc::new(cluster.init(|ctx| sor::setup(ctx, &cfg, n_threads, 8)));
            let out = Arc::clone(&out);
            cluster.run(move |jt| {
                sor::thread_body(jt, &cfg, &h);
                out.lock().push(jt.profiler().average_footprint());
            });
        }
        WorkloadKind::BarnesHut => {
            let cfg = bh_cfg(scale);
            let h = Arc::new(cluster.init(|ctx| barnes_hut::setup(ctx, &cfg, n_threads, 8)));
            let out = Arc::clone(&out);
            cluster.run(move |jt| {
                barnes_hut::thread_body(jt, &cfg, &h);
                out.lock().push(jt.profiler().average_footprint());
            });
        }
        WorkloadKind::WaterSpatial => {
            let cfg = water_cfg(scale);
            let h = Arc::new(cluster.init(|ctx| water::setup(ctx, &cfg, n_threads, 8)));
            let out = Arc::clone(&out);
            cluster.run(move |jt| {
                water::thread_body(jt, &cfg, &h);
                out.lock().push(jt.profiler().average_footprint());
            });
        }
        WorkloadKind::Lu => unreachable!("Table IV covers the paper's three workloads"),
    }

    // Average over threads, translate class ids to names.
    let per_thread = out.lock();
    let mut sums: HashMap<ClassId, (f64, usize)> = HashMap::new();
    for fp in per_thread.iter() {
        for (class, bytes) in fp {
            let e = sums.entry(*class).or_insert((0.0, 0));
            e.0 += bytes;
            e.1 += 1;
        }
    }
    let classes = cluster.shared().gos.classes();
    sums.into_iter()
        .map(|(class, (sum, _))| (classes.info(class).name, sum / per_thread.len() as f64))
        .collect()
}

fn main() {
    let scale = scale();
    println!("TABLE IV. ACCURACY OF STICKY-SET FOOTPRINT  (scale: {scale:?})");
    println!("(8 threads; footprint via repeated object sampling at 4X vs full)\n");

    let mut t = TextTable::new(&[
        "Benchmark",
        "Class",
        "Avg SS footprint @ full (bytes)",
        "Avg diff @ 4X (bytes)",
        "Accuracy",
    ]);
    for kind in WorkloadKind::ALL {
        let full = footprints(kind, scale, SamplingRate::Full);
        let at4x = footprints(kind, scale, SamplingRate::NX(4));
        let mut names: Vec<&String> = full.keys().collect();
        names.sort();
        for name in names {
            let f = full[name];
            if f < 1.0 {
                continue; // class never sticky
            }
            let a = at4x.get(name).copied().unwrap_or(0.0);
            let diff = (f - a).abs();
            let acc = (1.0 - diff / f).max(0.0);
            t.row(&[
                kind.name().to_string(),
                name.clone(),
                format!("{f:.0}"),
                format!("{diff:.0}"),
                format!("{:.2}%", acc * 100.0),
            ]);
        }
    }
    println!("{}", t.render());
    println!("paper: SOR double[] 2018016 B, 100.00%; Barnes-Hut Body 229376 B 99.71%,");
    println!("Body[] 93.42%, Leaf 99.86%, Vect3 92.76%; Water double[] 43032 B 98.82%.");
    println!("expected shape: SOR near-perfect (rows effectively always sampled);");
    println!("fine-grained classes consistently above ~90%.");
}
