//! X3 — TCM round-close reduction throughput (the coordinator hot loop).
//!
//! Sweeps thread count N × object population M and measures steady-state
//! round-close throughput of the seed's scalar builder (`tcm::reference`,
//! per-object `Vec<ThreadId>` + dense N×N maps rebuilt every round) against the
//! bitset/triangular pipeline (`TcmBuilder`: per-object thread bitsets, packed
//! upper-triangular accrual, sparse per-class maps, capacity retained across
//! rounds), plus the sharded reducer for context. Every variant must be
//! bit-identical to the scalar reference.
//!
//! Three lanes:
//! - **X3** — the seed comparison: scalar reference vs bitset/triangular
//!   builder vs sharded reducer at N∈{16,64,256}, every variant bit-identical.
//! - **X3b** — production scale: master-side round-close cost of the flat
//!   coordinator (all per-thread OALs ingested and closed at the master) vs the
//!   fabric aggregation tree (master merges ≤fanout subtree partials and folds
//!   the root) at N∈{1024,4096}. The scalar oracle is skipped here — its dense
//!   per-round maps make it intractable at these sizes; bit-identity is checked
//!   against the bitset builder instead.
//! - **X3c** — sketch backend accuracy: relative error of the count-min
//!   estimates over the exact top-k pair weights, swept across sketch widths.
//!
//! Modes:
//! - default (`cargo bench --bench tcm_reduce`): full sweeps, writes
//!   `BENCH_tcm_reduce.json` at the repo root and asserts the acceptance bars
//!   (≥3× close speedup at N=256/M=10⁶, ≥5× master round-close speedup for the
//!   tree at N=4096, ≤1% top-k relative error at the default sketch width).
//! - `JESSY_SCALE=small`: smoke sweep (seconds, CI-friendly) — prints the
//!   tables, checks exactness including the N=1024 tree lane and the
//!   sketch-equals-dense-at-generous-width property, does not touch the
//!   checked-in JSON.

use std::time::Instant;

use jessy_bench::TextTable;
use serde::Serialize;
use jessy_core::distributed::{ShardedTcmReducer, TreeTcmReducer};
use jessy_core::oal::{Oal, OalEntry};
use jessy_core::tcm::reference::ScalarTcmBuilder;
use jessy_core::{SketchTcm, TcmBuilder};
use jessy_gos::{ClassId, ObjectId};
use jessy_net::ThreadId;

/// Deterministic splitmix64 (no rand dependency in benches).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

const CLASSES: u64 = 4;

/// Synthesize one round's OAL stream: `m` objects over `n` threads, one OAL per
/// thread. Sharer degrees are mixed — most objects are shared by 2–12 threads,
/// ~6% are "hot" (32–47 sharers) — so the pair loop sees both short and long
/// bitset runs. `n` must be a power of two (odd strides enumerate distinct
/// threads mod n).
fn synth(n: usize, m: usize) -> Vec<Oal> {
    assert!(n.is_power_of_two(), "sweep uses power-of-two thread counts");
    let mut entries: Vec<Vec<OalEntry>> = vec![Vec::new(); n];
    for o in 0..m {
        let h = mix(o as u64);
        let deg = if h % 100 < 6 {
            32 + (h >> 8) as usize % 16
        } else {
            2 + (h >> 8) as usize % 11
        }
        .min(n);
        let start = (h >> 24) as usize % n;
        let stride = (((h >> 40) as usize % n) | 1) % n.max(1);
        let entry = OalEntry {
            obj: ObjectId(o as u32),
            class: ClassId((h % CLASSES) as u16),
            bytes: 64 + (h >> 16) % 4096,
        };
        for i in 0..deg {
            let t = (start + i * stride) % n;
            entries[t].push(entry);
        }
    }
    entries
        .into_iter()
        .enumerate()
        .map(|(t, es)| Oal {
            thread: ThreadId(t as u32),
            interval: 0,
            entries: es,
        })
        .collect()
}

/// Production-shaped sharing for the tree lane: each object is shared by a
/// contiguous window of threads (neighbour exchange, SOR-style), with ~6% "hot"
/// wide windows. Pair cells concentrate on small thread offsets, so a round's
/// sparse footprint is O(N·window) rather than O(N²) — the regime the
/// aggregation tree is built for. Single-class on purpose: the per-class
/// machinery is exercised by X3, and dense per-class scratch at N=4096 costs
/// 67 MB per class in *both* lanes without changing the comparison.
fn synth_windowed(n: usize, m: usize) -> Vec<Oal> {
    let mut entries: Vec<Vec<OalEntry>> = vec![Vec::new(); n];
    for o in 0..m {
        let h = mix(0x57AB_1E00 ^ o as u64);
        let deg = if h % 100 < 6 {
            16 + (h >> 8) as usize % 8
        } else {
            2 + (h >> 8) as usize % 7
        }
        .min(n);
        let start = (h >> 24) as usize % n;
        let entry = OalEntry {
            obj: ObjectId(o as u32),
            class: ClassId(0),
            bytes: 64 + (h >> 16) % 4096,
        };
        for i in 0..deg {
            entries[(start + i) % n].push(entry);
        }
    }
    entries
        .into_iter()
        .enumerate()
        .map(|(t, es)| Oal {
            thread: ThreadId(t as u32),
            interval: 0,
            entries: es,
        })
        .collect()
}

/// Skewed sharing for the sketch-accuracy lane: 20% of the organized volume
/// concentrates on 16 designated hot thread pairs (the head of the pair
/// distribution, which the placement engine steers by and [`TopKPairs`]
/// tracks), the rest is a uniform degree-2 long tail across the whole map —
/// the collision mass a count-min sketch must absorb.
///
/// [`TopKPairs`]: jessy_core::TopKPairs
fn synth_hotpairs(n: usize, m: usize) -> Vec<Oal> {
    assert!(n >= 64);
    let mut entries: Vec<Vec<OalEntry>> = vec![Vec::new(); n];
    for o in 0..m {
        let h = mix(0x0DDC_0FFE ^ o as u64);
        let entry = OalEntry {
            obj: ObjectId(o as u32),
            class: ClassId((h % CLASSES) as u16),
            bytes: 64 + (h >> 16) % 4096,
        };
        let (a, b) = if h % 10 < 2 {
            let p = ((h >> 8) % 16) as usize;
            (2 * p, 2 * p + 1)
        } else {
            let a = (h >> 24) as usize % n;
            let off = 1 + (h >> 40) as usize % (n - 1);
            (a, (a + off) % n)
        };
        entries[a].push(entry);
        entries[b].push(entry);
    }
    entries
        .into_iter()
        .enumerate()
        .map(|(t, es)| Oal {
            thread: ThreadId(t as u32),
            interval: 0,
            entries: es,
        })
        .collect()
}

/// The emitted `BENCH_tcm_reduce.json` document.
#[derive(Serialize)]
struct Report {
    bench: &'static str,
    mode: &'static str,
    shards: usize,
    results: Vec<CellReport>,
    tree: Vec<TreeCellReport>,
    sketch: Vec<SketchCellReport>,
    acceptance: Acceptance,
    tree_acceptance: TreeAcceptance,
    sketch_acceptance: SketchAcceptance,
}

#[derive(Serialize)]
struct CellReport {
    threads: usize,
    objects: usize,
    rounds: usize,
    entries_per_round: usize,
    scalar_ingest_ns: u64,
    scalar_close_ns: u64,
    bitset_ingest_ns: u64,
    bitset_close_ns: u64,
    sharded_close_ns: u64,
    close_speedup: f64,
    bitset_close_mobj_per_s: f64,
    scalar_close_mobj_per_s: f64,
    identical: bool,
}

#[derive(Serialize)]
struct Acceptance {
    threads: usize,
    objects: usize,
    required_close_speedup: f64,
    measured_close_speedup: f64,
    pass: bool,
}

#[derive(Serialize)]
struct TreeCellReport {
    threads: usize,
    objects: usize,
    rounds: usize,
    nodes: usize,
    fanout: usize,
    entries_per_round: usize,
    flat_master_ns: u64,
    tree_master_ns: u64,
    master_speedup: f64,
    oal_wire_bytes_per_round: u64,
    master_ingress_bytes_per_round: u64,
    partial_bytes_per_round: u64,
    shuffle_bytes_per_round: u64,
    master_partials: u64,
    identical: bool,
}

#[derive(Serialize)]
struct TreeAcceptance {
    threads: usize,
    objects: usize,
    nodes: usize,
    fanout: usize,
    required_master_speedup: f64,
    measured_master_speedup: f64,
    pass: bool,
}

#[derive(Serialize)]
struct SketchCellReport {
    threads: usize,
    objects: usize,
    rounds: usize,
    width: usize,
    depth: usize,
    memory_bytes: usize,
    top_k: usize,
    max_rel_err: f64,
    mean_rel_err: f64,
}

#[derive(Serialize)]
struct SketchAcceptance {
    width: usize,
    depth: usize,
    top_k: usize,
    required_max_rel_err: f64,
    measured_max_rel_err: f64,
    pass: bool,
}

/// Per-(N, M) measurement at steady state.
struct Cell {
    n: usize,
    m: usize,
    rounds: usize,
    entries: usize,
    scalar_ingest_ns: u128,
    scalar_close_ns: u128,
    bitset_ingest_ns: u128,
    bitset_close_ns: u128,
    sharded_close_ns: u128,
    identical: bool,
}

impl Cell {
    /// Round-close speedup over the seed scalar builder (the acceptance metric).
    fn close_speedup(&self) -> f64 {
        self.scalar_close_ns as f64 / self.bitset_close_ns.max(1) as f64
    }
    /// Objects retired per second of close time, in millions.
    fn close_mobj_s(&self, close_ns: u128) -> f64 {
        (self.m * self.rounds) as f64 / (close_ns.max(1) as f64 / 1e9) / 1e6
    }
}

/// Run `rounds` steady-state rounds (after one warmup round) through `ingest`
/// and `close`, timing each phase separately.
fn steady_state<B>(
    oals: &mut [Oal],
    rounds: usize,
    b: &mut B,
    ingest: impl Fn(&mut B, &Oal),
    close: impl Fn(&mut B),
) -> (u128, u128) {
    // Warmup: populates builder capacity so timed rounds see the steady state.
    for o in oals.iter() {
        ingest(b, o);
    }
    close(b);
    let (mut ingest_ns, mut close_ns) = (0u128, 0u128);
    for r in 1..=rounds {
        for o in oals.iter_mut() {
            o.interval = r as u64;
        }
        let t0 = Instant::now();
        for o in oals.iter() {
            ingest(b, o);
        }
        ingest_ns += t0.elapsed().as_nanos();
        let t1 = Instant::now();
        close(b);
        close_ns += t1.elapsed().as_nanos();
    }
    (ingest_ns, close_ns)
}

fn measure(n: usize, m: usize, rounds: usize, shards: usize) -> Cell {
    let mut oals = synth(n, m);
    let entries = oals.iter().map(|o| o.entries.len()).sum::<usize>();

    let mut scalar = ScalarTcmBuilder::new(n);
    let (scalar_ingest_ns, scalar_close_ns) = steady_state(
        &mut oals,
        rounds,
        &mut scalar,
        |b, o| b.ingest(o),
        |b| {
            std::hint::black_box(b.close_round());
        },
    );

    let mut bitset = TcmBuilder::new(n);
    let (bitset_ingest_ns, bitset_close_ns) = steady_state(
        &mut oals,
        rounds,
        &mut bitset,
        |b, o| b.ingest(o),
        |b| {
            std::hint::black_box(b.close_round());
        },
    );

    let mut sharded = ShardedTcmReducer::new(shards, n);
    let (_, sharded_close_ns) = steady_state(
        &mut oals,
        rounds,
        &mut sharded,
        |b, o| b.ingest(o),
        |b| {
            std::hint::black_box(b.close_round());
        },
    );

    // Bit-identity of the cumulative maps: scalar reference vs bitset vs sharded.
    let reduced = sharded.reduce();
    let mut identical = true;
    for i in 0..n as u32 {
        for j in 0..n as u32 {
            let (a, b) = (ThreadId(i), ThreadId(j));
            identical &= scalar.tcm().at(a, b).to_bits() == bitset.tcm().at(a, b).to_bits();
            identical &= bitset.tcm().at(a, b).to_bits() == reduced.at(a, b).to_bits();
        }
    }

    Cell {
        n,
        m,
        rounds,
        entries,
        scalar_ingest_ns,
        scalar_close_ns,
        bitset_ingest_ns,
        bitset_close_ns,
        sharded_close_ns,
        identical,
    }
}

/// Per-(N, nodes, fanout) production-scale measurement.
struct TreeCell {
    n: usize,
    m: usize,
    rounds: usize,
    nodes: usize,
    fanout: usize,
    entries: usize,
    /// Flat coordinator: ingest of every per-thread OAL + round close, on the master.
    flat_master_ns: u128,
    /// Tree: merge of the ≤fanout subtree roots + cumulative fold, on the master.
    tree_master_ns: u128,
    /// What the flat path ships to the master, per round.
    oal_wire_bytes: u64,
    /// Everything converging on node 0's link in tree mode, per round (its
    /// shuffle-in share + subtree-child partials + root-hop partials).
    ingress_bytes: u64,
    /// Partial-TCM tree hops, per round (modeled, all edges).
    partial_bytes: u64,
    /// Leaf→owner shuffle hops, per round (modeled).
    shuffle_bytes: u64,
    master_partials: u64,
    identical: bool,
}

impl TreeCell {
    fn master_speedup(&self) -> f64 {
        self.flat_master_ns as f64 / self.tree_master_ns.max(1) as f64
    }
}

/// Measure the master-side round-close cost at production scale: flat
/// coordinator (every OAL crosses the fabric and the master both ingests and
/// closes) vs aggregation tree (leaves pre-reduce, owners accrue and subtrees
/// merge on worker nodes — untimed here; the master's share is merging the
/// subtree roots and folding the result into the cumulative maps).
fn measure_tree(n: usize, m: usize, rounds: usize, nodes: usize, fanout: usize) -> TreeCell {
    assert_eq!(n % nodes, 0, "threads place evenly across nodes");
    let tpn = n / nodes;
    let mut oals = synth_windowed(n, m);
    let entries = oals.iter().map(|o| o.entries.len()).sum::<usize>();
    let oal_wire_bytes = oals.iter().map(|o| o.wire_bytes() as u64).sum::<u64>();

    let mut flat = TcmBuilder::new(n);
    let (flat_ingest_ns, flat_close_ns) = steady_state(
        &mut oals,
        rounds,
        &mut flat,
        |b, o| b.ingest(o),
        |b| {
            std::hint::black_box(b.close_round());
        },
    );

    let mut tree = TreeTcmReducer::new(n, nodes, fanout);
    let ingest_all = |tree: &mut TreeTcmReducer, oals: &[Oal]| {
        for o in oals {
            tree.ingest(o.thread.index() / tpn, o);
        }
    };
    // Warmup round (mirrors `steady_state`): populates arena and scratch capacity.
    ingest_all(&mut tree, &oals);
    let (_, parts) = tree.close_round_subtrees();
    let warm_root = tree.merge_subtrees(parts);
    tree.fold_partial(&warm_root);

    let mut tree_master_ns = 0u128;
    let (mut ingress_bytes, mut partial_bytes, mut shuffle_bytes, mut master_partials) =
        (0u64, 0u64, 0u64, 0u64);
    for _ in 0..rounds {
        ingest_all(&mut tree, &oals);
        let (stats, parts) = tree.close_round_subtrees();
        ingress_bytes += stats
            .edges
            .iter()
            .filter(|e| e.to == 0 && e.from != 0)
            .map(|e| e.bytes)
            .sum::<u64>();
        partial_bytes += stats.partial_bytes;
        shuffle_bytes += stats.shuffle_bytes;
        master_partials = stats.master_partials;
        let t0 = Instant::now();
        let root = tree.merge_subtrees(parts);
        tree.fold_partial(&root);
        tree_master_ns += t0.elapsed().as_nanos();
        std::hint::black_box(root.objects);
    }

    // Both lanes folded warmup + `rounds` copies of the same round, so the
    // cumulative maps must agree bit for bit.
    let identical = flat
        .tcm()
        .raw()
        .iter()
        .zip(tree.tcm().raw())
        .all(|(a, b)| a.to_bits() == b.to_bits());

    TreeCell {
        n,
        m,
        rounds,
        nodes,
        fanout,
        entries,
        flat_master_ns: flat_ingest_ns + flat_close_ns,
        tree_master_ns,
        oal_wire_bytes,
        ingress_bytes: ingress_bytes / rounds as u64,
        partial_bytes: partial_bytes / rounds as u64,
        shuffle_bytes: shuffle_bytes / rounds as u64,
        master_partials,
        identical,
    }
}

/// Accuracy of the count-min backend over the exact top-`k` pair weights, one
/// report per sketch width (depth fixed at the default 4). The exact cumulative
/// map and the sketches are fed the same per-round sparse maps, exactly as the
/// master daemon folds them.
fn measure_sketch(
    n: usize,
    m: usize,
    rounds: usize,
    k: usize,
    widths: &[usize],
) -> Vec<SketchCellReport> {
    let oals = synth_hotpairs(n, m);
    let mut exact = TcmBuilder::new(n);
    let mut sketches: Vec<SketchTcm> = widths.iter().map(|&w| SketchTcm::new(n, w, 4)).collect();
    for _ in 0..rounds {
        for o in &oals {
            exact.ingest(o);
        }
        let round = exact.close_round().tcm.to_sparse();
        for sk in &mut sketches {
            sk.fold_round(&round);
        }
    }

    let mut ranked: Vec<(u32, f64)> = exact
        .tcm()
        .raw()
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v > 0.0)
        .map(|(i, &v)| (i as u32, v))
        .collect();
    ranked.sort_unstable_by(|x, y| y.1.total_cmp(&x.1).then(x.0.cmp(&y.0)));
    ranked.truncate(k);

    sketches
        .iter()
        .map(|sk| {
            let (mut max_err, mut sum_err) = (0.0f64, 0.0f64);
            for &(idx, v) in &ranked {
                // Count-min never underestimates, so the error is one-sided.
                let err = (sk.estimate(idx) - v) / v;
                max_err = max_err.max(err);
                sum_err += err;
            }
            SketchCellReport {
                threads: n,
                objects: m,
                rounds,
                width: sk.width(),
                depth: sk.depth(),
                memory_bytes: sk.memory_bytes(),
                top_k: ranked.len(),
                max_rel_err: max_err,
                mean_rel_err: sum_err / ranked.len().max(1) as f64,
            }
        })
        .collect()
}

fn main() {
    let smoke = matches!(
        std::env::var("JESSY_SCALE").as_deref(),
        Ok("small") | Ok("SMALL")
    );
    println!("X3. TCM ROUND-CLOSE REDUCTION (bitset/triangular vs seed scalar)\n");

    // (n, m, timed rounds): fewer rounds at larger M keeps the full sweep tractable.
    let sweep: Vec<(usize, usize, usize)> = if smoke {
        vec![(16, 10_000, 2), (64, 10_000, 2)]
    } else {
        let mut s = Vec::new();
        for &n in &[16usize, 64, 256] {
            for &(m, r) in &[(10_000usize, 20usize), (100_000, 6), (1_000_000, 3)] {
                s.push((n, m, r));
            }
        }
        s
    };
    let shards = 4;

    let mut table = TextTable::new(&[
        "threads",
        "objects",
        "entries/round",
        "scalar close (ms)",
        "bitset close (ms)",
        "4-shard close (ms)",
        "close speedup",
        "bitset Mobj/s",
        "identical",
    ]);
    let mut cells = Vec::new();
    for (n, m, rounds) in sweep {
        let c = measure(n, m, rounds, shards);
        table.row(&[
            c.n.to_string(),
            c.m.to_string(),
            c.entries.to_string(),
            format!("{:.2}", c.scalar_close_ns as f64 / 1e6 / c.rounds as f64),
            format!("{:.2}", c.bitset_close_ns as f64 / 1e6 / c.rounds as f64),
            format!("{:.2}", c.sharded_close_ns as f64 / 1e6 / c.rounds as f64),
            format!("{:.2}x", c.close_speedup()),
            format!("{:.2}", c.close_mobj_s(c.bitset_close_ns)),
            c.identical.to_string(),
        ]);
        assert!(c.identical, "reduction must stay bit-identical to the scalar reference");
        cells.push(c);
    }
    println!("{}", table.render());
    println!("close speedup = scalar round-close time / bitset round-close time, steady");
    println!("state (warmup round excluded; ingest timed separately).");

    println!("\nX3b. PRODUCTION-SCALE TREE AGGREGATION (master-side round close)\n");
    // (n, m, rounds, nodes, fanout)
    let tree_sweep: Vec<(usize, usize, usize, usize, usize)> = if smoke {
        vec![(1024, 8_000, 1, 16, 4)]
    } else {
        vec![(1024, 200_000, 3, 32, 4), (4096, 600_000, 2, 64, 4)]
    };
    let mut ttable = TextTable::new(&[
        "threads",
        "nodes",
        "fanout",
        "objects",
        "entries/round",
        "flat master (ms)",
        "tree master (ms)",
        "speedup",
        "oal KB/round",
        "ingress KB/round",
        "fabric KB/round",
        "identical",
    ]);
    let mut tcells = Vec::new();
    for (n, m, rounds, nodes, fanout) in tree_sweep {
        let c = measure_tree(n, m, rounds, nodes, fanout);
        ttable.row(&[
            c.n.to_string(),
            c.nodes.to_string(),
            c.fanout.to_string(),
            c.m.to_string(),
            c.entries.to_string(),
            format!("{:.2}", c.flat_master_ns as f64 / 1e6 / c.rounds as f64),
            format!("{:.2}", c.tree_master_ns as f64 / 1e6 / c.rounds as f64),
            format!("{:.2}x", c.master_speedup()),
            format!("{}", c.oal_wire_bytes / 1024),
            format!("{}", c.ingress_bytes / 1024),
            format!("{}", (c.shuffle_bytes + c.partial_bytes) / 1024),
            c.identical.to_string(),
        ]);
        assert!(
            c.identical,
            "dense tree aggregation must stay bit-identical to the flat coordinator"
        );
        tcells.push(c);
    }
    println!("{}", ttable.render());
    println!("flat master = ingest of every per-thread OAL + round close at the coordinator;");
    println!("tree master = merge of <=fanout subtree partials + cumulative fold (leaf");
    println!("pre-reduction, owner shuffle and subtree merging run on worker nodes).");
    println!("oal KB = raw OAL batches converging on the flat master's link; ingress KB =");
    println!("everything converging on node 0 in tree mode (shuffle-in share + subtree-");
    println!("child + root-hop partials); fabric KB = all tree-mode hops, whole cluster.");

    println!("\nX3c. SKETCH BACKEND ACCURACY (top-k pair weights vs exact dense)\n");
    let (sk_n, sk_m, sk_rounds, sk_k) = if smoke {
        (256, 4_000, 2, 8)
    } else {
        (1024, 50_000, 3, 8)
    };
    let widths: &[usize] = if smoke {
        &[65536]
    } else {
        &[1024, 4096, 16384, 65536]
    };
    let sketch_cells = measure_sketch(sk_n, sk_m, sk_rounds, sk_k, widths);
    let mut stable = TextTable::new(&[
        "width",
        "depth",
        "memory (KB)",
        "top-k max rel err",
        "top-k mean rel err",
    ]);
    for c in &sketch_cells {
        stable.row(&[
            c.width.to_string(),
            c.depth.to_string(),
            (c.memory_bytes / 1024).to_string(),
            format!("{:.4}%", c.max_rel_err * 100.0),
            format!("{:.4}%", c.mean_rel_err * 100.0),
        ]);
    }
    println!("{}", stable.render());
    println!("error = (estimate - exact) / exact over the exact top-{sk_k} pairs of an");
    println!("N={sk_n} map (skewed head + uniform long tail); count-min never underestimates.");

    if smoke {
        // At a generous width no head cell collides in every row, so the min-row
        // estimate is the same f64 sum the dense map holds — bit-identical, and
        // deterministic for the fixed generator and fixed sketch seed.
        assert_eq!(
            sketch_cells[0].max_rel_err, 0.0,
            "sketch at generous width must match dense exactly on the head"
        );
        println!("\nsmoke mode: skipping BENCH_tcm_reduce.json (checked-in file is the full run)");
        return;
    }

    let target = cells
        .iter()
        .find(|c| c.n == 256 && c.m == 1_000_000)
        .expect("acceptance cell in sweep");
    let tree_target = tcells
        .iter()
        .find(|c| c.n == 4096)
        .expect("tree acceptance cell in sweep");
    let tree_acceptance = TreeAcceptance {
        threads: tree_target.n,
        objects: tree_target.m,
        nodes: tree_target.nodes,
        fanout: tree_target.fanout,
        required_master_speedup: 5.0,
        measured_master_speedup: tree_target.master_speedup(),
        pass: tree_target.master_speedup() >= 5.0,
    };
    let sketch_target = sketch_cells
        .iter()
        .find(|c| c.width == 65536)
        .expect("default-width cell in sweep");
    let sketch_acceptance = SketchAcceptance {
        width: sketch_target.width,
        depth: sketch_target.depth,
        top_k: sketch_target.top_k,
        required_max_rel_err: 0.01,
        measured_max_rel_err: sketch_target.max_rel_err,
        pass: sketch_target.max_rel_err <= 0.01,
    };
    let doc = Report {
        bench: "tcm_reduce",
        mode: "full",
        shards,
        results: cells
            .iter()
            .map(|c| CellReport {
                threads: c.n,
                objects: c.m,
                rounds: c.rounds,
                entries_per_round: c.entries,
                scalar_ingest_ns: c.scalar_ingest_ns as u64,
                scalar_close_ns: c.scalar_close_ns as u64,
                bitset_ingest_ns: c.bitset_ingest_ns as u64,
                bitset_close_ns: c.bitset_close_ns as u64,
                sharded_close_ns: c.sharded_close_ns as u64,
                close_speedup: c.close_speedup(),
                bitset_close_mobj_per_s: c.close_mobj_s(c.bitset_close_ns),
                scalar_close_mobj_per_s: c.close_mobj_s(c.scalar_close_ns),
                identical: c.identical,
            })
            .collect(),
        tree: tcells
            .iter()
            .map(|c| TreeCellReport {
                threads: c.n,
                objects: c.m,
                rounds: c.rounds,
                nodes: c.nodes,
                fanout: c.fanout,
                entries_per_round: c.entries,
                flat_master_ns: c.flat_master_ns as u64,
                tree_master_ns: c.tree_master_ns as u64,
                master_speedup: c.master_speedup(),
                oal_wire_bytes_per_round: c.oal_wire_bytes,
                master_ingress_bytes_per_round: c.ingress_bytes,
                partial_bytes_per_round: c.partial_bytes,
                shuffle_bytes_per_round: c.shuffle_bytes,
                master_partials: c.master_partials,
                identical: c.identical,
            })
            .collect(),
        sketch: sketch_cells,
        acceptance: Acceptance {
            threads: 256,
            objects: 1_000_000,
            required_close_speedup: 3.0,
            measured_close_speedup: target.close_speedup(),
            pass: target.close_speedup() >= 3.0,
        },
        tree_acceptance,
        sketch_acceptance,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tcm_reduce.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap() + "\n")
        .expect("write BENCH_tcm_reduce.json");
    println!("\nwrote {path}");
    assert!(
        target.close_speedup() >= 3.0,
        "acceptance: ≥3x round-close speedup at N=256/M=1e6 (measured {:.2}x)",
        target.close_speedup()
    );
    assert!(
        doc.tree_acceptance.pass,
        "acceptance: ≥5x master round-close speedup for the tree at N=4096 (measured {:.2}x)",
        doc.tree_acceptance.measured_master_speedup
    );
    assert!(
        doc.sketch_acceptance.pass,
        "acceptance: ≤1% top-k relative error at the default sketch width (measured {:.4}%)",
        doc.sketch_acceptance.measured_max_rel_err * 100.0
    );
}
