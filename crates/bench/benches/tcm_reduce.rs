//! X3 — TCM round-close reduction throughput (the coordinator hot loop).
//!
//! Sweeps thread count N × object population M and measures steady-state
//! round-close throughput of the seed's scalar builder (`tcm::reference`,
//! per-object `Vec<ThreadId>` + dense N×N maps rebuilt every round) against the
//! bitset/triangular pipeline (`TcmBuilder`: per-object thread bitsets, packed
//! upper-triangular accrual, sparse per-class maps, capacity retained across
//! rounds), plus the sharded reducer for context. Every variant must be
//! bit-identical to the scalar reference.
//!
//! Modes:
//! - default (`cargo bench --bench tcm_reduce`): full sweep N∈{16,64,256} ×
//!   M∈{10⁴,10⁵,10⁶}, writes `BENCH_tcm_reduce.json` at the repo root and
//!   asserts the ≥3× acceptance bar at N=256 / M=10⁶.
//! - `JESSY_SCALE=small`: smoke sweep (seconds, CI-friendly), prints the table
//!   and checks exactness, does not touch the checked-in JSON.

use std::time::Instant;

use jessy_bench::TextTable;
use serde::Serialize;
use jessy_core::distributed::ShardedTcmReducer;
use jessy_core::oal::{Oal, OalEntry};
use jessy_core::tcm::reference::ScalarTcmBuilder;
use jessy_core::TcmBuilder;
use jessy_gos::{ClassId, ObjectId};
use jessy_net::ThreadId;

/// Deterministic splitmix64 (no rand dependency in benches).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

const CLASSES: u64 = 4;

/// Synthesize one round's OAL stream: `m` objects over `n` threads, one OAL per
/// thread. Sharer degrees are mixed — most objects are shared by 2–12 threads,
/// ~6% are "hot" (32–47 sharers) — so the pair loop sees both short and long
/// bitset runs. `n` must be a power of two (odd strides enumerate distinct
/// threads mod n).
fn synth(n: usize, m: usize) -> Vec<Oal> {
    assert!(n.is_power_of_two(), "sweep uses power-of-two thread counts");
    let mut entries: Vec<Vec<OalEntry>> = vec![Vec::new(); n];
    for o in 0..m {
        let h = mix(o as u64);
        let deg = if h % 100 < 6 {
            32 + (h >> 8) as usize % 16
        } else {
            2 + (h >> 8) as usize % 11
        }
        .min(n);
        let start = (h >> 24) as usize % n;
        let stride = (((h >> 40) as usize % n) | 1) % n.max(1);
        let entry = OalEntry {
            obj: ObjectId(o as u32),
            class: ClassId((h % CLASSES) as u16),
            bytes: 64 + (h >> 16) % 4096,
        };
        for i in 0..deg {
            let t = (start + i * stride) % n;
            entries[t].push(entry);
        }
    }
    entries
        .into_iter()
        .enumerate()
        .map(|(t, es)| Oal {
            thread: ThreadId(t as u32),
            interval: 0,
            entries: es,
        })
        .collect()
}

/// The emitted `BENCH_tcm_reduce.json` document.
#[derive(Serialize)]
struct Report {
    bench: &'static str,
    mode: &'static str,
    shards: usize,
    results: Vec<CellReport>,
    acceptance: Acceptance,
}

#[derive(Serialize)]
struct CellReport {
    threads: usize,
    objects: usize,
    rounds: usize,
    entries_per_round: usize,
    scalar_ingest_ns: u64,
    scalar_close_ns: u64,
    bitset_ingest_ns: u64,
    bitset_close_ns: u64,
    sharded_close_ns: u64,
    close_speedup: f64,
    bitset_close_mobj_per_s: f64,
    scalar_close_mobj_per_s: f64,
    identical: bool,
}

#[derive(Serialize)]
struct Acceptance {
    threads: usize,
    objects: usize,
    required_close_speedup: f64,
    measured_close_speedup: f64,
    pass: bool,
}

/// Per-(N, M) measurement at steady state.
struct Cell {
    n: usize,
    m: usize,
    rounds: usize,
    entries: usize,
    scalar_ingest_ns: u128,
    scalar_close_ns: u128,
    bitset_ingest_ns: u128,
    bitset_close_ns: u128,
    sharded_close_ns: u128,
    identical: bool,
}

impl Cell {
    /// Round-close speedup over the seed scalar builder (the acceptance metric).
    fn close_speedup(&self) -> f64 {
        self.scalar_close_ns as f64 / self.bitset_close_ns.max(1) as f64
    }
    /// Objects retired per second of close time, in millions.
    fn close_mobj_s(&self, close_ns: u128) -> f64 {
        (self.m * self.rounds) as f64 / (close_ns.max(1) as f64 / 1e9) / 1e6
    }
}

/// Run `rounds` steady-state rounds (after one warmup round) through `ingest`
/// and `close`, timing each phase separately.
fn steady_state<B>(
    oals: &mut [Oal],
    rounds: usize,
    b: &mut B,
    ingest: impl Fn(&mut B, &Oal),
    close: impl Fn(&mut B),
) -> (u128, u128) {
    // Warmup: populates builder capacity so timed rounds see the steady state.
    for o in oals.iter() {
        ingest(b, o);
    }
    close(b);
    let (mut ingest_ns, mut close_ns) = (0u128, 0u128);
    for r in 1..=rounds {
        for o in oals.iter_mut() {
            o.interval = r as u64;
        }
        let t0 = Instant::now();
        for o in oals.iter() {
            ingest(b, o);
        }
        ingest_ns += t0.elapsed().as_nanos();
        let t1 = Instant::now();
        close(b);
        close_ns += t1.elapsed().as_nanos();
    }
    (ingest_ns, close_ns)
}

fn measure(n: usize, m: usize, rounds: usize, shards: usize) -> Cell {
    let mut oals = synth(n, m);
    let entries = oals.iter().map(|o| o.entries.len()).sum::<usize>();

    let mut scalar = ScalarTcmBuilder::new(n);
    let (scalar_ingest_ns, scalar_close_ns) = steady_state(
        &mut oals,
        rounds,
        &mut scalar,
        |b, o| b.ingest(o),
        |b| {
            std::hint::black_box(b.close_round());
        },
    );

    let mut bitset = TcmBuilder::new(n);
    let (bitset_ingest_ns, bitset_close_ns) = steady_state(
        &mut oals,
        rounds,
        &mut bitset,
        |b, o| b.ingest(o),
        |b| {
            std::hint::black_box(b.close_round());
        },
    );

    let mut sharded = ShardedTcmReducer::new(shards, n);
    let (_, sharded_close_ns) = steady_state(
        &mut oals,
        rounds,
        &mut sharded,
        |b, o| b.ingest(o),
        |b| {
            std::hint::black_box(b.close_round());
        },
    );

    // Bit-identity of the cumulative maps: scalar reference vs bitset vs sharded.
    let reduced = sharded.reduce();
    let mut identical = true;
    for i in 0..n as u32 {
        for j in 0..n as u32 {
            let (a, b) = (ThreadId(i), ThreadId(j));
            identical &= scalar.tcm().at(a, b).to_bits() == bitset.tcm().at(a, b).to_bits();
            identical &= bitset.tcm().at(a, b).to_bits() == reduced.at(a, b).to_bits();
        }
    }

    Cell {
        n,
        m,
        rounds,
        entries,
        scalar_ingest_ns,
        scalar_close_ns,
        bitset_ingest_ns,
        bitset_close_ns,
        sharded_close_ns,
        identical,
    }
}

fn main() {
    let smoke = matches!(
        std::env::var("JESSY_SCALE").as_deref(),
        Ok("small") | Ok("SMALL")
    );
    println!("X3. TCM ROUND-CLOSE REDUCTION (bitset/triangular vs seed scalar)\n");

    // (n, m, timed rounds): fewer rounds at larger M keeps the full sweep tractable.
    let sweep: Vec<(usize, usize, usize)> = if smoke {
        vec![(16, 10_000, 2), (64, 10_000, 2)]
    } else {
        let mut s = Vec::new();
        for &n in &[16usize, 64, 256] {
            for &(m, r) in &[(10_000usize, 20usize), (100_000, 6), (1_000_000, 3)] {
                s.push((n, m, r));
            }
        }
        s
    };
    let shards = 4;

    let mut table = TextTable::new(&[
        "threads",
        "objects",
        "entries/round",
        "scalar close (ms)",
        "bitset close (ms)",
        "4-shard close (ms)",
        "close speedup",
        "bitset Mobj/s",
        "identical",
    ]);
    let mut cells = Vec::new();
    for (n, m, rounds) in sweep {
        let c = measure(n, m, rounds, shards);
        table.row(&[
            c.n.to_string(),
            c.m.to_string(),
            c.entries.to_string(),
            format!("{:.2}", c.scalar_close_ns as f64 / 1e6 / c.rounds as f64),
            format!("{:.2}", c.bitset_close_ns as f64 / 1e6 / c.rounds as f64),
            format!("{:.2}", c.sharded_close_ns as f64 / 1e6 / c.rounds as f64),
            format!("{:.2}x", c.close_speedup()),
            format!("{:.2}", c.close_mobj_s(c.bitset_close_ns)),
            c.identical.to_string(),
        ]);
        assert!(c.identical, "reduction must stay bit-identical to the scalar reference");
        cells.push(c);
    }
    println!("{}", table.render());
    println!("close speedup = scalar round-close time / bitset round-close time, steady");
    println!("state (warmup round excluded; ingest timed separately).");

    if smoke {
        println!("\nsmoke mode: skipping BENCH_tcm_reduce.json (checked-in file is the full run)");
        return;
    }

    let target = cells
        .iter()
        .find(|c| c.n == 256 && c.m == 1_000_000)
        .expect("acceptance cell in sweep");
    let doc = Report {
        bench: "tcm_reduce",
        mode: "full",
        shards,
        results: cells
            .iter()
            .map(|c| CellReport {
                threads: c.n,
                objects: c.m,
                rounds: c.rounds,
                entries_per_round: c.entries,
                scalar_ingest_ns: c.scalar_ingest_ns as u64,
                scalar_close_ns: c.scalar_close_ns as u64,
                bitset_ingest_ns: c.bitset_ingest_ns as u64,
                bitset_close_ns: c.bitset_close_ns as u64,
                sharded_close_ns: c.sharded_close_ns as u64,
                close_speedup: c.close_speedup(),
                bitset_close_mobj_per_s: c.close_mobj_s(c.bitset_close_ns),
                scalar_close_mobj_per_s: c.close_mobj_s(c.scalar_close_ns),
                identical: c.identical,
            })
            .collect(),
        acceptance: Acceptance {
            threads: 256,
            objects: 1_000_000,
            required_close_speedup: 3.0,
            measured_close_speedup: target.close_speedup(),
            pass: target.close_speedup() >= 3.0,
        },
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_tcm_reduce.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap() + "\n")
        .expect("write BENCH_tcm_reduce.json");
    println!("\nwrote {path}");
    assert!(
        target.close_speedup() >= 3.0,
        "acceptance: ≥3x round-close speedup at N=256/M=1e6 (measured {:.2}x)",
        target.close_speedup()
    );
}
