//! FIG. 3 — sampling at different gaps (mechanism illustration).
//!
//! Regenerates the paper's Fig. 3 as text: (a) scalar objects carrying per-class
//! sequence numbers are sampled when their number is divisible by the (prime) gap;
//! (b) arrays draw consecutive per-element numbers from the class counter, are
//! sampled if *any* element's number is divisible, and log the amortized size
//! `sampled elements × element size`.

use jessy_bench::TextTable;
use jessy_core::sampling::{multiples_in, GapTable};
use jessy_core::SamplingRate;
use jessy_gos::prime::nearest_prime;
use jessy_gos::ClassId;

fn main() {
    println!("FIG. 3. SAMPLING AT DIFFERENT GAPS\n");

    println!("(a) object sampling — 12 consecutive instances, gaps 3 / 5 / 7:");
    for gap in [3u64, 5, 7] {
        print!("  gap={gap}: ");
        for seq in 0..12u64 {
            print!("{}", if seq % gap == 0 { "#" } else { "." });
        }
        println!("   (# = sampled)");
    }

    println!("\n(b) array sampling — arrays of len 4, 5, 3 drawing consecutive element");
    println!("    sequence numbers (0..4, 4..9, 9..12), amortized sizes at 4-byte elems:");
    let arrays = [(0u64, 4u64), (4, 5), (9, 3)];
    let mut t = TextTable::new(&[
        "gap",
        "array(seq 0..4)",
        "array(seq 4..9)",
        "array(seq 9..12)",
    ]);
    for gap in [3u64, 5, 7] {
        let mut cells = vec![gap.to_string()];
        for (seq0, len) in arrays {
            let k = multiples_in(seq0, len, gap);
            cells.push(if k > 0 {
                format!("sampled, {} elem = {} B", k, k * 4)
            } else {
                "unsampled".to_string()
            });
        }
        t.row(&cells);
    }
    println!("{}", t.render());

    println!("nominal -> real (prime) gaps, as in Section II.B.1:");
    for nominal in [8u64, 16, 32, 64, 128, 256, 512] {
        println!("  nominal {nominal:>4}  ->  real {}", nearest_prime(nominal));
    }

    println!("\nthe nX notation (gap = SP/(s*n), SP = 4 KB):");
    let mut t = TextTable::new(&["class", "unit bytes", "1X", "4X", "16X", "64X"]);
    for (name, unit) in [
        ("double[] elem", 8usize),
        ("Body", 64),
        ("Molecule", 512),
        ("SOR row (16 KB)", 16384),
    ] {
        let gaps = GapTable::new(4096);
        gaps.register_class(ClassId(0), unit, SamplingRate::NX(1));
        let mut cells = vec![name.to_string(), unit.to_string()];
        for n in [1u32, 4, 16, 64] {
            let st = gaps.set_rate(ClassId(0), SamplingRate::NX(n));
            cells.push(format!("{}", st.real_gap));
        }
        t.row(&cells);
    }
    println!("{}", t.render());
    println!("(gap 1 = full sampling: any object larger than a page is always sampled,");
    println!(" which is why SOR's rate columns are N/A in Tables II-III)");
}
