//! Ablations of the design choices DESIGN.md calls out.
//!
//! 1. **Prime vs power-of-two gaps** under cyclic allocation (Section II.B.1's reason
//!    for `nearest_prime`).
//! 2. **Array amortization vs whole-array logging** (Section II.B.3's bias argument).
//! 3. **Lazy vs immediate frame extraction** under temporary-frame churn
//!    (Section III.B.3).
//! 4. **Page-grain vs object-grain tracking cost** (the D-CVM comparison of
//!    Section V).

use jessy_bench::TextTable;
use jessy_core::oal::{Oal, OalEntry};
use jessy_core::sampling::multiples_in;
use jessy_core::stack_sampling::StackSampler;
use jessy_core::{StackSamplingConfig, TcmBuilder};
use jessy_gos::{ClassId, CostModel, ObjectId};
use jessy_net::{ClockBoard, ThreadId};
use jessy_pagedsm::PageFaultModel;
use jessy_stack::{JavaStack, MethodId, Slot};

/// Ablation 1: cyclic allocation of 32 allocation sites; a gap of 32 aliases with the
/// cycle (only one site ever sampled), the prime 31 covers all sites uniformly.
fn prime_gap_ablation() {
    println!("== ablation 1: prime vs power-of-two sampling gaps ==");
    println!("(32 allocation sites allocating round-robin; 32,000 objects)\n");
    let n_sites = 32u64;
    let n_objs = 32_000u64;
    let mut t = TextTable::new(&["gap", "sites covered", "min/site", "max/site", "uniform?"]);
    for gap in [32u64, 31] {
        let mut per_site = vec![0u64; n_sites as usize];
        for seq in 0..n_objs {
            if seq % gap == 0 {
                per_site[(seq % n_sites) as usize] += 1;
            }
        }
        let covered = per_site.iter().filter(|&&c| c > 0).count();
        let min = *per_site.iter().min().unwrap();
        let max = *per_site.iter().max().unwrap();
        t.row(&[
            gap.to_string(),
            format!("{covered}/32"),
            min.to_string(),
            max.to_string(),
            (min > 0 && max <= min + 1).to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// Ablation 2: two thread pairs — (T1,T2) share a small 16-element array, (T2,T3)
/// share a large 4096-element array but touch different halves. Whole-array logging
/// overestimates (T2,T3) by the array-size ratio; amortization with gap-scaling keeps
/// both pairs proportional to the data actually shared.
fn amortization_ablation() {
    println!("== ablation 2: array amortization vs whole-array logging ==\n");
    let gap = 509u64; // 1X for 8-byte elements
    let small = (0u64, 16u32); // seq0, len — placed to straddle a multiple
    let large = (509u64 * 3, 4096u32);

    let build = |small_bytes: u64, large_bytes: u64| -> (f64, f64) {
        let mut b = TcmBuilder::new(3);
        let entry = |obj: u32, bytes: u64| OalEntry {
            obj: ObjectId(obj),
            class: ClassId(0),
            bytes,
        };
        for (t, objs) in [(0u32, vec![0]), (1, vec![0, 1]), (2, vec![1])] {
            b.ingest(&Oal {
                thread: ThreadId(t),
                interval: 0,
                entries: objs
                    .into_iter()
                    .map(|o| entry(o, if o == 0 { small_bytes } else { large_bytes }))
                    .collect(),
            });
        }
        b.close_round();
        (
            b.tcm().at(ThreadId(0), ThreadId(1)),
            b.tcm().at(ThreadId(1), ThreadId(2)),
        )
    };

    // Whole-array logging: both arrays always sampled, full size logged.
    let (w_small, w_large) = build(16 * 8, 4096 * 8);
    // Amortized + gap-scaled logging.
    let amort = |seq0: u64, len: u32| multiples_in(seq0, len as u64, gap) * 8 * gap;
    let (a_small, a_large) = build(amort(small.0, small.1), amort(large.0, large.1));

    let mut t = TextTable::new(&["scheme", "corr(T1,T2) small", "corr(T2,T3) large", "ratio"]);
    t.row(&[
        "whole-array".into(),
        format!("{w_small:.0}"),
        format!("{w_large:.0}"),
        format!("{:.0}x", w_large / w_small),
    ]);
    t.row(&[
        "amortized+scaled".into(),
        format!("{a_small:.0}"),
        format!("{a_large:.0}"),
        format!("{:.0}x", a_large / a_small),
    ]);
    println!("{}", t.render());
    println!("true shared-data ratio is 256x (4096/16); both schemes reflect it, but");
    println!("whole-array logging charges the ratio to EVERY page-sized overlap — with");
    println!("partial sharing (different halves) amortization can discount it while");
    println!("whole-size logging cannot; and under false sharing the bias compounds.\n");
}

/// Ablation 3: lazy vs immediate extraction under temporary-frame churn.
fn lazy_extraction_ablation() {
    println!("== ablation 3: lazy vs immediate frame extraction ==");
    println!("(1 stable bottom frame + 2,000 temporary frames, sampled between pushes)\n");
    let costs = CostModel::pentium4_2ghz();
    let mut t = TextTable::new(&[
        "mode",
        "sim cost (us)",
        "extractions",
        "raw captures",
        "slots probed",
    ]);
    for lazy in [false, true] {
        let board = ClockBoard::new(1);
        let clock = board.handle(ThreadId(0));
        let mut stack = JavaStack::new();
        let mut sampler = StackSampler::new(StackSamplingConfig {
            gap_ns: 0,
            lazy_extraction: lazy,
        });
        stack.push_raw(MethodId(0), 8);
        stack.set_local(0, Slot::Ref(ObjectId(1)));
        sampler.sample(&mut stack, &clock, &costs);
        for i in 0..2_000u32 {
            stack.push_raw(MethodId(1), 12);
            stack.set_local(0, Slot::Ref(ObjectId(100 + i)));
            sampler.sample(&mut stack, &clock, &costs);
            stack.pop();
        }
        let stats = sampler.stats();
        t.row(&[
            if lazy { "lazy".into() } else { "immediate".to_string() },
            format!("{:.1}", clock.now() as f64 / 1e3),
            stats.extractions.to_string(),
            stats.raw_captures.to_string(),
            stats.slots_probed.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("lazy extraction never pays the per-slot extraction cost for frames that");
    println!("die before a second visit — the paper's Section III.B.3 optimization.\n");
}

/// Ablation 4: what porting page-grain active tracking to fine-grained sharing costs.
fn dcvm_cost_ablation() {
    println!("== ablation 4: page-grain (D-CVM) vs object-grain tracking cost ==\n");
    let model = PageFaultModel::pentium4_2ghz();
    let mut t = TextTable::new(&[
        "events/interval",
        "page-grain cost (ms)",
        "object-grain cost (ms)",
        "slowdown",
    ]);
    for events in [1_000u64, 10_000, 100_000] {
        let page_ms = model.tracking_ns(events) as f64 / 1e6;
        let obj_ms = (events * 400) as f64 / 1e6;
        t.row(&[
            events.to_string(),
            format!("{page_ms:.1}"),
            format!("{obj_ms:.1}"),
            format!("{:.0}x", model.slowdown_vs_object_grain(events, events, 400)),
        ]);
    }
    println!("{}", t.render());
    println!("a protection fault costs microseconds where the inlined check + user-level");
    println!("service routine costs hundreds of nanoseconds: the 20x gap is why the");
    println!("paper says page-based techniques 'soar to an intolerable level' on");
    println!("fine-grained object systems.");
}

/// Ablation 5: connectivity prefetching on fault replies (the "object prefetching"
/// optimization the paper's evaluation enables).
fn prefetch_ablation() {
    use jessy_core::ProfilerConfig;
    use jessy_runtime::Cluster;
    use jessy_workloads::barnes_hut::{self, BhConfig};
    use std::sync::Arc;

    println!("== ablation 5: connectivity prefetching on object faults ==");
    println!("(Barnes-Hut small; depth-k same-home neighbours ride on fault replies)\n");
    let mut t = TextTable::new(&[
        "prefetch depth",
        "object faults",
        "objects prefetched",
        "sim exec (ms)",
    ]);
    for depth in [0u32, 1, 2] {
        let mut cluster = Cluster::builder()
            .nodes(4)
            .threads(8)
            .prefetch_depth(depth)
            .profiler(ProfilerConfig::disabled())
            .build();
        let cfg = BhConfig::small();
        let handles = Arc::new(cluster.init(|ctx| barnes_hut::setup(ctx, &cfg, 8, 4)));
        cluster.run(move |jt| barnes_hut::thread_body(jt, &cfg, &handles));
        let report = cluster.report();
        t.row(&[
            depth.to_string(),
            report.proto.real_faults.to_string(),
            report.proto.objects_prefetched.to_string(),
            format!("{:.1}", report.sim_exec_ms()),
        ]);
    }
    println!("{}", t.render());
    println!("deeper prefetch trades per-fault round trips for bulk transfer; the win");
    println!("depends on how well the reference graph predicts the traversal (for the");
    println!("octree it predicts it exactly).\n");
}

/// Ablation 6: notice scoping — global HLRC history vs scope consistency on the
/// lock-heavy Water-Spatial rebind phase.
fn consistency_ablation() {
    use jessy_core::ProfilerConfig;
    use jessy_gos::protocol::ConsistencyModel;
    use jessy_runtime::Cluster;
    use jessy_workloads::water::{self, WaterConfig};
    use std::sync::Arc;

    println!("== ablation 6: global HLRC history vs scope consistency (ScC) ==");
    println!("(Water-Spatial small: per-box locks guard membership rebinding)\n");
    let mut t = TextTable::new(&[
        "model",
        "notices applied",
        "object faults",
        "sim exec (ms)",
    ]);
    for (label, model) in [
        ("global HLRC", ConsistencyModel::GlobalHlrc),
        ("scoped (ScC)", ConsistencyModel::Scoped),
    ] {
        let mut cluster = Cluster::builder()
            .nodes(4)
            .threads(4)
            .consistency(model)
            .profiler(ProfilerConfig::disabled())
            .build();
        let cfg = WaterConfig::small();
        let handles = Arc::new(cluster.init(|ctx| water::setup(ctx, &cfg, 4, 4)));
        cluster.run(move |jt| water::thread_body(jt, &cfg, &handles));
        let report = cluster.report();
        t.row(&[
            label.to_string(),
            report.proto.notices_applied.to_string(),
            report.proto.real_faults.to_string(),
            format!("{:.1}", report.sim_exec_ms()),
        ]);
    }
    println!("{}", t.render());
    println!("per-lock notice histories spare unrelated caches: fewer notices applied,");
    println!("fewer re-faults, at the cost of ScC's weaker cross-lock visibility");
    println!("(the paper names LRC and ScC as the interval-based models it targets).\n");
}

fn main() {
    println!("DESIGN-CHOICE ABLATIONS\n");
    prime_gap_ablation();
    amortization_ablation();
    lazy_extraction_ablation();
    dcvm_cost_ablation();
    prefetch_ablation();
    consistency_ablation();
}
