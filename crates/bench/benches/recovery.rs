//! Recovery sweep — checkpoint interval vs replay cost under a master crash.
//!
//! DESIGN.md §12: the master daemon snapshots a `ProfilerCheckpoint` every K
//! rounds; on a crash-restart it restores the latest snapshot and replays the
//! buffered post-checkpoint OAL stream under a bumped epoch. Checkpointing more
//! often buys a shorter replay at the price of more snapshot work. This bench
//! runs the identical crash on every checkpoint cadence (including "never") and
//! shows the trade: `replayed` shrinks as `ckpts` grows while the recovered TCM
//! stays **bit-identical** to the fault-free run in every row — recovery is an
//! identity transform on the accepted stream, not an approximation of it.
//!
//! `JESSY_SCALE=small` shortens the run for CI; the default matches the other
//! chaos-family sweeps.

use std::sync::Arc;

use jessy_bench::{scale, Scale, TextTable};
use jessy_core::{ProfilerConfig, SamplingRate};
use jessy_gos::{CostModel, ObjectId};
use jessy_net::{FaultPlan, LatencyModel, MasterCrashWindow, NodeId};
use jessy_runtime::{Cluster, MasterOutput};

const THREADS: usize = 8;
const NODES: usize = 4;

/// One full cluster run. `faults` carries the master crash window (or nothing for
/// the baseline); `checkpoint_every` is the snapshot cadence in rounds.
fn run(barriers: usize, faults: Option<FaultPlan>, checkpoint_every: Option<u64>) -> MasterOutput {
    let mut config = ProfilerConfig::tracking_at(SamplingRate::Full);
    config.intervals_per_round = 2;
    config.checkpoint_every_rounds = checkpoint_every;
    let mut builder = Cluster::builder()
        .nodes(NODES)
        .threads(THREADS)
        .latency(LatencyModel::free())
        .costs(CostModel::free())
        .profiler(config);
    if let Some(plan) = faults {
        builder = builder.faults(plan);
    }
    let mut cluster = builder.build();
    let objs = cluster.init(|ctx| {
        let class = ctx.register_scalar_class("S", 8);
        (0..THREADS)
            .map(|k| ctx.alloc_scalar_at(NodeId((k % NODES) as u16), class).id)
            .collect::<Vec<ObjectId>>()
    });
    let objs = Arc::new(objs);
    cluster.run(move |jt| {
        let t = jt.thread_id().index();
        for _ in 0..barriers {
            jt.read(objs[t], |_| {});
            jt.read(objs[(t + 1) % THREADS], |_| {});
            jt.barrier();
        }
    });
    cluster.master_output().expect("master ran").clone()
}

fn main() {
    let barriers = match scale() {
        Scale::Paper => 120,
        Scale::Small => 32,
    };
    // The crash lands a third of the way in and keeps the master down for four
    // intervals — identical in every row, so only the cadence varies.
    let from = (barriers / 3) as u64;
    let crash = FaultPlan {
        master_crashes: vec![MasterCrashWindow {
            from_interval: from,
            until_interval: from + 4,
        }],
        ..FaultPlan::default()
    };

    println!("X5. RECOVERY SWEEP (checkpoint cadence vs replay cost, one master crash)\n");
    let truth = run(barriers, None, None);
    let mut t = TextTable::new(&[
        "ckpt every",
        "ckpts",
        "restores",
        "replayed",
        "fenced",
        "epoch",
        "tcm identical",
        "build ms",
    ]);
    for &every in &[None, Some(1), Some(2), Some(4), Some(8)] {
        let m = run(barriers, Some(crash.clone()), every);
        t.row(&[
            every.map_or("never".into(), |k| format!("{k} rounds")),
            m.checkpoints_taken.to_string(),
            m.restores.to_string(),
            m.replayed_oals.to_string(),
            m.fenced_oals.to_string(),
            m.final_epoch.to_string(),
            (m.tcm == truth.tcm && m.rounds == truth.rounds).to_string(),
            format!("{:.2}", m.tcm_build_real_ns as f64 / 1e6),
        ]);
    }
    println!("{}", t.render());
    println!("the buffered transport defers in-flight OALs across the outage, so every");
    println!("cadence — even \"never\", which replays from round zero — recovers the");
    println!("exact fault-free map; frequent checkpoints only shorten the replay.");
}
