//! # jessy-pagedsm — the page-based DSM baseline
//!
//! The paper motivates fine-grained tracking with Fig. 1: page-based active
//! correlation tracking (D-CVM style) "can only reveal the *induced* sharing pattern
//! rather than the application's inherent pattern after the effect of false-sharing".
//! This crate reproduces that baseline over the same object population:
//!
//! * [`layout`] places objects in a flat virtual address space exactly as a bump
//!   allocator would (allocation order, headers included), mapping each object to the
//!   4 KB page range it spans;
//! * [`induced`] rebuilds the thread correlation map at *page* granularity from a
//!   recorded OAL stream: a page shared by two threads in an interval contributes a
//!   full page of "correlation", however little of it each thread actually touched —
//!   the false-sharing blur of Fig. 1(b);
//! * [`dcvm`] models the overhead side of the comparison: page-grain active tracking
//!   needs a memory-protection fault (microseconds) per page per interval, versus the
//!   inlined 2-bit check + service routine of the object-grain design.


#![warn(missing_docs)]
pub mod dcvm;
pub mod induced;
pub mod layout;

pub use dcvm::PageFaultModel;
pub use induced::InducedTcmBuilder;
pub use layout::{PageLayout, PAGE_SIZE};
