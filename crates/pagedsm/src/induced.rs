//! The induced (page-grain) correlation map of Fig. 1(b).
//!
//! Page-based active correlation tracking sees only "thread T touched page P in
//! interval k". When two threads touch the same page — even disjoint objects on it —
//! the tracker credits them a full page of sharing. Replayed over a recorded OAL
//! stream, this produces the induced map the paper contrasts with the inherent one.

use std::collections::HashMap;

use jessy_core::{Oal, Tcm};
use jessy_net::ThreadId;

use crate::layout::{PageLayout, PAGE_SIZE};

/// Builds the page-grain (induced) TCM from an OAL stream.
#[derive(Debug)]
pub struct InducedTcmBuilder {
    n_threads: usize,
    /// (interval, page) → threads that touched it.
    rounds: HashMap<u64, HashMap<u64, Vec<ThreadId>>>,
    /// Page-grain "touches" (first access per page per thread-interval) — the events
    /// a page-based tracker pays a protection fault for.
    page_touches: u64,
}

impl InducedTcmBuilder {
    /// Builder for `n_threads` threads.
    pub fn new(n_threads: usize) -> Self {
        InducedTcmBuilder {
            n_threads,
            rounds: HashMap::new(),
            page_touches: 0,
        }
    }

    /// Replay one OAL: project each accessed object onto its pages.
    pub fn ingest(&mut self, oal: &Oal, layout: &PageLayout) {
        let round = self.rounds.entry(oal.interval).or_default();
        for e in &oal.entries {
            for page in layout.pages_of(e.obj) {
                let threads = round.entry(page).or_default();
                if !threads.contains(&oal.thread) {
                    threads.push(oal.thread);
                    self.page_touches += 1;
                }
            }
        }
    }

    /// Page-grain fault events replayed so far (feeds the D-CVM overhead model).
    pub fn page_touches(&self) -> u64 {
        self.page_touches
    }

    /// Build the induced map: each page shared by a thread pair within an interval
    /// contributes a full page.
    pub fn build(&self) -> Tcm {
        let mut tcm = Tcm::new(self.n_threads);
        for round in self.rounds.values() {
            for threads in round.values() {
                for a in 0..threads.len() {
                    for b in (a + 1)..threads.len() {
                        tcm.add_pair(threads[a], threads[b], PAGE_SIZE as f64);
                    }
                }
            }
        }
        tcm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jessy_core::OalEntry;
    use jessy_gos::{ClassId, ObjectId};

    fn oal(thread: u32, interval: u64, objs: &[u32]) -> Oal {
        Oal {
            thread: ThreadId(thread),
            interval,
            entries: objs
                .iter()
                .map(|&o| OalEntry {
                    obj: ObjectId(o),
                    class: ClassId(0),
                    bytes: 64,
                })
                .collect(),
        }
    }

    #[test]
    fn false_sharing_correlates_disjoint_threads() {
        // Objects 0 and 1 are tiny and share page 0; threads touch DIFFERENT objects
        // yet the induced map correlates them — the Fig. 1(b) effect.
        let layout = PageLayout::from_sizes(&[64, 64]);
        let mut b = InducedTcmBuilder::new(2);
        b.ingest(&oal(0, 0, &[0]), &layout);
        b.ingest(&oal(1, 0, &[1]), &layout);
        let tcm = b.build();
        assert_eq!(tcm.at(ThreadId(0), ThreadId(1)), PAGE_SIZE as f64);
    }

    #[test]
    fn separate_pages_do_not_correlate() {
        let layout = PageLayout::from_sizes(&[4096, 4096]);
        let mut b = InducedTcmBuilder::new(2);
        b.ingest(&oal(0, 0, &[0]), &layout);
        b.ingest(&oal(1, 0, &[1]), &layout);
        assert_eq!(b.build().total(), 0.0);
    }

    #[test]
    fn intervals_accumulate() {
        let layout = PageLayout::from_sizes(&[64, 64]);
        let mut b = InducedTcmBuilder::new(2);
        for interval in 0..3 {
            b.ingest(&oal(0, interval, &[0]), &layout);
            b.ingest(&oal(1, interval, &[1]), &layout);
        }
        assert_eq!(
            b.build().at(ThreadId(0), ThreadId(1)),
            3.0 * PAGE_SIZE as f64
        );
    }

    #[test]
    fn page_touches_are_first_access_per_page_interval() {
        let layout = PageLayout::from_sizes(&[64, 64]);
        let mut b = InducedTcmBuilder::new(2);
        b.ingest(&oal(0, 0, &[0, 1]), &layout); // same page twice → 1 touch
        b.ingest(&oal(0, 1, &[0]), &layout); // new interval → new touch
        b.ingest(&oal(1, 1, &[0]), &layout); // other thread → new touch
        assert_eq!(b.page_touches(), 3);
    }

    #[test]
    fn large_array_bias_spreads_correlation() {
        // A 16 KB array spans 4+ pages: threads accessing different halves still get
        // correlated through every shared page it spans.
        let layout = PageLayout::from_sizes(&[16384]);
        let mut b = InducedTcmBuilder::new(3);
        b.ingest(&oal(0, 0, &[0]), &layout);
        b.ingest(&oal(1, 0, &[0]), &layout);
        b.ingest(&oal(2, 0, &[0]), &layout);
        let tcm = b.build();
        let pages = layout.pages_of(ObjectId(0)).count() as f64;
        assert_eq!(tcm.at(ThreadId(0), ThreadId(2)), pages * PAGE_SIZE as f64);
    }
}
