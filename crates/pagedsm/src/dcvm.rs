//! D-CVM-style overhead model.
//!
//! Active correlation tracking in page-based systems (Thitikamol & Keleher, ICDCS'99)
//! arms tracking by write-protecting pages: every first access per page per interval
//! takes a **memory-protection fault** — a kernel trap, signal delivery and `mprotect`
//! flip, microseconds on the paper's hardware — where the object-grain design pays an
//! inlined 2-bit check plus a user-level service routine (nanoseconds). The paper's
//! related-work section notes D-CVM additionally had to disable preemptive scheduling.
//!
//! This module quantifies that gap so the ablation bench can reproduce the paper's
//! claim that porting page-grain active tracking to fine-grained sharing "soars to an
//! intolerable level".

use serde::{Deserialize, Serialize};

/// Cost of one page-grain correlation fault.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageFaultModel {
    /// Nanoseconds per protection fault (trap + signal + mprotect + log).
    pub fault_ns: u64,
}

impl PageFaultModel {
    /// Era-appropriate default: ~8 µs per protection fault on a 2 GHz P4 Linux box.
    pub fn pentium4_2ghz() -> Self {
        PageFaultModel { fault_ns: 8_000 }
    }

    /// Total tracking cost for `page_touches` first-accesses.
    pub fn tracking_ns(&self, page_touches: u64) -> u64 {
        self.fault_ns * page_touches
    }

    /// How many times more expensive page-grain tracking is than object-grain
    /// tracking that served `object_faults` correlation faults at `object_fault_ns`
    /// each. Returns `f64::INFINITY` when the object side is free.
    pub fn slowdown_vs_object_grain(
        &self,
        page_touches: u64,
        object_faults: u64,
        object_fault_ns: u64,
    ) -> f64 {
        let obj = (object_faults * object_fault_ns) as f64;
        if obj == 0.0 {
            return f64::INFINITY;
        }
        self.tracking_ns(page_touches) as f64 / obj
    }
}

impl Default for PageFaultModel {
    fn default() -> Self {
        PageFaultModel::pentium4_2ghz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracking_cost_scales_with_touches() {
        let m = PageFaultModel { fault_ns: 1000 };
        assert_eq!(m.tracking_ns(0), 0);
        assert_eq!(m.tracking_ns(500), 500_000);
    }

    #[test]
    fn slowdown_ratio() {
        let m = PageFaultModel { fault_ns: 8_000 };
        // Same event count: the ratio is just fault_ns / service_ns.
        let s = m.slowdown_vs_object_grain(1000, 1000, 400);
        assert!((s - 20.0).abs() < 1e-9);
        assert!(m.slowdown_vs_object_grain(1, 0, 400).is_infinite());
    }

    #[test]
    fn era_default_is_microseconds() {
        assert!(PageFaultModel::default().fault_ns >= 1_000);
    }
}
