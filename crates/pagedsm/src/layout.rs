//! Virtual address layout of the object population.
//!
//! Page-based DSM systems track sharing at the granularity of the virtual-memory page
//! an object happens to land on. We reproduce a bump allocator: objects are laid out
//! in allocation order (= [`ObjectId`] order, since the GOS assigns dense ids), each
//! preceded by its header, 8-byte aligned. An object's *page span* is every 4 KB page
//! it overlaps.

use jessy_gos::object::OBJ_HEADER_BYTES;
use jessy_gos::{Gos, ObjectId};

/// The page size of the baseline (and of the paper's testbed).
pub const PAGE_SIZE: u64 = 4096;

/// Address spans of every object, in allocation order.
#[derive(Debug, Clone)]
pub struct PageLayout {
    /// `(start, end)` byte addresses per object (end exclusive, header included).
    spans: Vec<(u64, u64)>,
}

impl PageLayout {
    /// Lay out every object currently allocated in `gos`.
    pub fn from_gos(gos: &Gos) -> Self {
        let mut spans = Vec::with_capacity(gos.n_objects());
        let mut cursor = 0u64;
        gos.for_each_object(|core| {
            let size = (OBJ_HEADER_BYTES + core.payload_bytes()) as u64;
            let size = size.div_ceil(8) * 8; // 8-byte alignment
            spans.push((cursor, cursor + size));
            cursor += size;
        });
        PageLayout { spans }
    }

    /// Build from explicit sizes (tests).
    pub fn from_sizes(sizes: &[u64]) -> Self {
        let mut spans = Vec::with_capacity(sizes.len());
        let mut cursor = 0u64;
        for &s in sizes {
            let s = s.div_ceil(8) * 8;
            spans.push((cursor, cursor + s));
            cursor += s;
        }
        PageLayout { spans }
    }

    /// Number of laid-out objects.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if nothing was laid out.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The object's byte span.
    pub fn span(&self, obj: ObjectId) -> (u64, u64) {
        self.spans[obj.index()]
    }

    /// The pages the object overlaps (inclusive page ids).
    pub fn pages_of(&self, obj: ObjectId) -> std::ops::RangeInclusive<u64> {
        let (start, end) = self.span(obj);
        let last = if end > start { end - 1 } else { start };
        (start / PAGE_SIZE)..=(last / PAGE_SIZE)
    }

    /// Total pages spanned by the whole population.
    pub fn total_pages(&self) -> u64 {
        match self.spans.last() {
            Some(&(_, end)) if end > 0 => (end - 1) / PAGE_SIZE + 1,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_layout_is_contiguous_and_aligned() {
        let l = PageLayout::from_sizes(&[100, 20, 4096]);
        assert_eq!(l.span(ObjectId(0)), (0, 104), "100 → 104 aligned");
        assert_eq!(l.span(ObjectId(1)), (104, 128));
        assert_eq!(l.span(ObjectId(2)), (128, 128 + 4096));
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn small_objects_share_a_page() {
        let l = PageLayout::from_sizes(&[64, 64, 64]);
        assert_eq!(l.pages_of(ObjectId(0)), 0..=0);
        assert_eq!(l.pages_of(ObjectId(2)), 0..=0);
        assert_eq!(l.total_pages(), 1);
    }

    #[test]
    fn large_objects_span_pages() {
        let l = PageLayout::from_sizes(&[4000, 10000]);
        assert_eq!(l.pages_of(ObjectId(0)), 0..=0);
        // Object 1: bytes 4000..14000 → pages 0..=3.
        assert_eq!(l.pages_of(ObjectId(1)), 0..=3);
        assert_eq!(l.total_pages(), 4);
    }

    #[test]
    fn layout_matches_gos_population() {
        use jessy_gos::{CostModel, GosConfig};
        use jessy_net::{ClockBoard, LatencyModel, NodeId, ThreadId};
        let gos = Gos::new(GosConfig {
            n_nodes: 1,
            n_threads: 1,
            latency: LatencyModel::free(),
            costs: CostModel::free(),
            prefetch_depth: 0,
            consistency: jessy_gos::protocol::ConsistencyModel::GlobalHlrc,
            faults: None,
        });
        let clock = ClockBoard::new(1).handle(ThreadId(0));
        let c = gos.classes().register_scalar("X", 8); // 64 B payload + 16 header
        for _ in 0..3 {
            gos.alloc_scalar(NodeId(0), c, &clock, None);
        }
        let l = PageLayout::from_gos(&gos);
        assert_eq!(l.len(), 3);
        assert_eq!(l.span(ObjectId(0)), (0, 80));
        assert_eq!(l.span(ObjectId(1)), (80, 160));
    }
}
