//! Offline `serde_json` subset over the vendored `serde` [`Value`] tree.
//!
//! Supports `to_string`, `to_string_pretty` and `from_str` — the full surface this
//! workspace uses. Non-finite floats render as `null` (JSON has no NaN/Infinity).

use std::fmt;

use serde::{Deserialize, Serialize};

pub use serde::Value;

/// JSON serialization/parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep integral floats readable and round-trippable.
        out.push_str(&format!("{:.1}", f));
    } else {
        out.push_str(&format!("{f}"));
    }
}

fn write_value(v: &Value, indent: Option<usize>, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_number(*f, out),
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match indent {
                    Some(level) => {
                        out.push('\n');
                        out.push_str(&"  ".repeat(level + 1));
                        write_value(item, Some(level + 1), out);
                    }
                    None => write_value(item, None, out),
                }
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match indent {
                    Some(level) => {
                        out.push('\n');
                        out.push_str(&"  ".repeat(level + 1));
                        escape_into(k, out);
                        out.push_str(": ");
                        write_value(item, Some(level + 1), out);
                    }
                    None => {
                        escape_into(k, out);
                        out.push(':');
                        write_value(item, None, out);
                    }
                }
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Render `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), None, &mut out);
    Ok(out)
}

/// Render `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), Some(0), &mut out);
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|i| Value::Int(-i))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::new("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }
}

/// Parse JSON text into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new("trailing characters after JSON value"));
    }
    Ok(T::deserialize_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Object(vec![
            ("n".into(), Value::UInt(3)),
            (
                "data".into(),
                Value::Array(vec![Value::Float(0.5), Value::Float(16.0), Value::Int(-2)]),
            ),
            ("name".into(), Value::Str("a\"b\\c\n".into())),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        // Float(16.0) renders as 16.0 and reparses as Float; Int(-2) survives.
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn vec_of_f64_round_trip() {
        let data = vec![0.0f64, 1.5, 16.0, -3.25, 1e-9];
        let json = to_string(&data).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
