//! Offline `proptest` subset.
//!
//! Reimplements the slice of the proptest API this workspace's property tests use:
//! the `proptest!` macro with `#![proptest_config(...)]`, range strategies over
//! primitives, tuple strategies, `prop::collection::vec`, `prop::sample::select` and
//! the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Cases are generated from a deterministic per-test seed (derived from the test
//! name), so failures reproduce across runs. There is **no shrinking**: a failing
//! case reports its inputs via the assertion message instead.

use std::fmt::Debug;
use std::ops::Range;

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many generated cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic splitmix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator from a test name (stable across runs).
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for b in name.bytes() {
            state = state.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128 - self.start as u128) as u64;
                (self.start as u128 + rng.next_below(span) as u128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
    }
}

macro_rules! tuple_strategy {
    ($(($($t:ident . $idx:tt),+)),*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// Strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Size specification of [`vec`]: a fixed length or a half-open range.
        pub trait IntoSizeRange {
            /// Lower/upper (exclusive) bounds of the generated length.
            fn bounds(&self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(&self) -> (usize, usize) {
                (*self, *self + 1)
            }
        }

        impl IntoSizeRange for Range<usize> {
            fn bounds(&self) -> (usize, usize) {
                (self.start, self.end)
            }
        }

        /// Generates `Vec`s whose length is drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            min: usize,
            max_exclusive: usize,
        }

        /// A vector of values from `element`, sized by `size`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (min, max_exclusive) = size.bounds();
            assert!(min < max_exclusive, "empty vec size range");
            VecStrategy {
                element,
                min,
                max_exclusive,
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.max_exclusive - self.min) as u64;
                let len = self.min + rng.next_below(span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Uniformly picks one of a fixed set of values.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// Uniform choice among `options`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                let idx = rng.next_below(self.options.len() as u64) as usize;
                self.options[idx].clone()
            }
        }
    }
}

/// Format a generated case's inputs for failure messages.
pub fn format_case(parts: &[(&str, &dyn Debug)]) -> String {
    parts
        .iter()
        .map(|(name, value)| format!("{name} = {value:?}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Everything a property-test file imports.
pub mod prelude {
    pub use super::prop;
    pub use super::{ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Assert inside a `proptest!` body; failure aborts only the current case with
/// context instead of panicking bare.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            ));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
}

/// Define property tests. Supports the forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(0u8..4, 1..80)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                let inputs = $crate::format_case(&[$((stringify!($arg), &$arg as &dyn ::std::fmt::Debug)),+]);
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest case {case}/{total} failed: {msg}\n  inputs: {inputs}",
                        case = case,
                        total = config.cases,
                        msg = msg,
                        inputs = inputs,
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(0u8..4, 2..9), w in prop::collection::vec(0u32..5, 7)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert_eq!(w.len(), 7);
        }

        #[test]
        fn select_picks_members(u in prop::sample::select(vec![8usize, 64, 512])) {
            prop_assert!(u == 8 || u == 64 || u == 512);
        }

        #[test]
        fn tuples_compose(t in (0u32..6, 0u32..20, 1u64..1000)) {
            prop_assert!(t.0 < 6 && t.1 < 20 && (1..1000).contains(&t.2));
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
