//! Offline `serde` subset.
//!
//! Real `serde` cannot be vendored here (no network), and this workspace only needs
//! JSON reports: types serialize into a [`Value`] tree which `serde_json` renders and
//! parses. The public surface mirrors what the workspace uses — `Serialize`,
//! `Deserialize`, and the same-named derive macros.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree — the intermediate representation of this serde subset.
///
/// Objects keep insertion order (a `Vec` of pairs), so derived struct output is
/// deterministic and matches field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed (negative) integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Borrow the pairs if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Borrow the items if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow the string if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Numeric view as `u64` (floats accepted when integral).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Numeric view as `i64` (floats accepted when integral).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            Value::Float(f) if f.fract() == 0.0 && f.abs() <= i64::MAX as f64 => Some(*f as i64),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Field lookup in object pairs; missing fields read as `Null` (so `Option`
    /// fields deserialize to `None`).
    pub fn field<'a>(pairs: &'a [(String, Value)], name: &str) -> &'a Value {
        pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .unwrap_or(&NULL)
    }
}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Render `self` as a value tree.
    fn serialize_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild `Self` from a value tree.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: what was expected, where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// A type-mismatch error.
    pub fn expected(what: &str, context: &str) -> Self {
        DeError {
            message: format!("expected {what} for {context}"),
        }
    }

    /// A custom error message.
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// Wrap with field context.
    pub fn in_field(self, field: &str) -> Self {
        DeError {
            message: format!("{field}: {}", self.message),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

// ------------------------------------------------------------------ primitive impls

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::expected("unsigned integer", stringify!($t)))?;
                <$t>::try_from(u).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let i = *self as i64;
                if i >= 0 { Value::UInt(i as u64) } else { Value::Int(i) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::expected("integer", stringify!($t)))?;
                <$t>::try_from(i).map_err(|_| DeError::expected("in-range integer", stringify!($t)))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

macro_rules! ser_de_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| DeError::expected("number", stringify!($t)))
            }
        }
    )*};
}
ser_de_float!(f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::expected("bool", "bool"))
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_str().map(str::to_owned).ok_or_else(|| DeError::expected("string", "String"))
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::expected("array", "Vec"))?
            .iter()
            .map(T::deserialize_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::deserialize_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::expected("array of fixed length", "[T; N]"))
    }
}

macro_rules! ser_de_tuple {
    ($(($($idx:tt : $t:ident),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array().ok_or_else(|| DeError::expected("array", "tuple"))?;
                let mut it = arr.iter();
                Ok(($(
                    $t::deserialize_value(it.next().ok_or_else(|| DeError::expected("longer array", "tuple"))?)?,
                )+))
            }
        }
    )*};
}
ser_de_tuple!(
    (0: A),
    (0: A, 1: B),
    (0: A, 1: B, 2: C),
    (0: A, 1: B, 2: C, 3: D)
);

fn map_to_value<'a>(iter: impl Iterator<Item = (&'a (dyn ErasedSerialize + 'a), &'a (dyn ErasedSerialize + 'a))>) -> Value {
    let mut pairs: Vec<(Value, Value)> = iter
        .map(|(k, v)| (k.erased_serialize(), v.erased_serialize()))
        .collect();
    // Canonical order so HashMap serialization is deterministic.
    pairs.sort_by(|a, b| format!("{:?}", a.0).cmp(&format!("{:?}", b.0)));
    Value::Array(
        pairs
            .into_iter()
            .map(|(k, v)| Value::Array(vec![k, v]))
            .collect(),
    )
}

trait ErasedSerialize {
    fn erased_serialize(&self) -> Value;
}

impl<T: Serialize> ErasedSerialize for T {
    fn erased_serialize(&self) -> Value {
        self.serialize_value()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        map_to_value(
            self.iter()
                .map(|(k, v)| (k as &dyn ErasedSerialize, v as &dyn ErasedSerialize)),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<(K, V)> = Vec::deserialize_value(v)?;
        Ok(items.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        map_to_value(
            self.iter()
                .map(|(k, v)| (k as &dyn ErasedSerialize, v as &dyn ErasedSerialize)),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<(K, V)> = Vec::deserialize_value(v)?;
        Ok(items.into_iter().collect())
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        assert_eq!(Some(3u32).serialize_value(), Value::UInt(3));
        assert_eq!(Option::<u32>::deserialize_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::deserialize_value(&Value::UInt(9)).unwrap(), Some(9));
    }

    #[test]
    fn numbers_cross_convert() {
        assert_eq!(u64::deserialize_value(&Value::Float(16.0)).unwrap(), 16);
        assert_eq!(f64::deserialize_value(&Value::UInt(16)).unwrap(), 16.0);
        assert!(u32::deserialize_value(&Value::Float(0.5)).is_err());
    }

    #[test]
    fn missing_field_reads_null() {
        let pairs = vec![("a".to_string(), Value::UInt(1))];
        assert_eq!(Value::field(&pairs, "a"), &Value::UInt(1));
        assert_eq!(Value::field(&pairs, "b"), &Value::Null);
    }

    #[test]
    fn hashmap_serializes_deterministically() {
        let mut m = HashMap::new();
        m.insert(3u32, "c".to_string());
        m.insert(1u32, "a".to_string());
        m.insert(2u32, "b".to_string());
        let a = m.serialize_value();
        let b = m.clone().serialize_value();
        assert_eq!(a, b);
        let back: HashMap<u32, String> = Deserialize::deserialize_value(&a).unwrap();
        assert_eq!(back, m);
    }
}
