//! Offline drop-in subset of `rand`.
//!
//! Provides `SeedableRng::seed_from_u64`, `Rng::gen_range` over primitive ranges and
//! `rngs::{SmallRng, StdRng}` (both xoshiro256++ here). The generated sequence is
//! deterministic per seed — which is all the workloads in this workspace rely on —
//! but it is **not** the sequence upstream `rand` would produce.

use std::ops::Range;

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open primitive range.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Sample uniformly from the range using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniformly random `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by [`rngs::SmallRng`] and [`rngs::StdRng`].
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Xoshiro256 {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                // Rejection-free multiply-shift reduction; bias is < 2^-64 per draw,
                // irrelevant for workload initialisation.
                let r = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u128 + r as u128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Small fast generator (xoshiro256++ here).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::seed_from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// "Standard" generator (same core as [`SmallRng`] in this subset).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::seed_from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u32..20);
            assert!((10..20).contains(&x));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen_range(0u64..1 << 60) == b.gen_range(0u64..1 << 60)).count();
        assert!(same < 4);
    }
}
