//! Offline drop-in subset of `parking_lot` built on `std::sync`.
//!
//! Only the API surface this workspace uses is provided: `Mutex`, `RwLock` and
//! `Condvar` with guard-returning (non-`Result`) lock methods. Poisoned locks are
//! recovered transparently (`parking_lot` has no poisoning either).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync :: { self as ss };

/// A mutex whose `lock` returns the guard directly (no poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(ss::Mutex<T>);

/// RAII guard of [`Mutex::lock`]. `Condvar::wait` temporarily releases it.
pub struct MutexGuard<'a, T: ?Sized>(Option<ss::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Wrap `value` in a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(ss::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").finish()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(ss::RwLock<T>);

/// Shared-read guard of [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(ss::RwLockReadGuard<'a, T>);

/// Exclusive-write guard of [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(ss::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(ss::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").finish()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable working with [`MutexGuard`] (parking_lot-style `wait` takes
/// the guard by `&mut` and reacquires before returning).
#[derive(Default)]
pub struct Condvar(ss::Condvar);

impl Condvar {
    /// New condition variable.
    pub const fn new() -> Self {
        Condvar(ss::Condvar::new())
    }

    /// Atomically release the guard's mutex and wait; the guard is reacquired
    /// before returning (spurious wakeups possible, as usual).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Condvar").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_round_trip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            *ready = true;
            cv.notify_all();
            drop(ready);
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        drop(ready);
        h.join().unwrap();
        assert!(*pair.0.lock());
    }

    #[test]
    fn rwlock_readers_and_writers() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }
}
