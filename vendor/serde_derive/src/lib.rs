//! Derive macros for the offline `serde` subset.
//!
//! Hand-rolled token parsing (no `syn`/`quote`): supports non-generic structs
//! (named, tuple, unit) and enums (unit, tuple and struct variants, with optional
//! explicit discriminants). Field attributes are ignored; `#[serde(...)]` renaming
//! is not supported — none of this workspace uses it.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Skip attributes (`#[...]`, including expanded doc comments) at the cursor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, …) at the cursor.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Advance past one type (or discriminant expression) until a comma at angle-bracket
/// depth zero; returns the index of the comma (or `tokens.len()`).
fn skip_to_field_end(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    i
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        let Some(TokenTree::Ident(name)) = tokens.get(i) else { break };
        fields.push(name.to_string());
        i += 1; // field name
        i += 1; // ':'
        i = skip_to_field_end(&tokens, i);
        i += 1; // ','
    }
    fields
}

fn parse_tuple_fields(group: &proc_macro::Group) -> usize {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_vis(&tokens, skip_attrs(&tokens, i));
        if i >= tokens.len() {
            break;
        }
        count += 1;
        i = skip_to_field_end(&tokens, i);
        i += 1; // ','
    }
    count
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else { break };
        let name = name.to_string();
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(parse_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g))
            }
            _ => VariantFields::Unit,
        };
        // Optional discriminant (`= expr`) then the separating comma.
        i = skip_to_field_end(&tokens, i);
        i += 1;
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_vis(&tokens, skip_attrs(&tokens, 0));
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!("generic type `{name}` is not supported by the offline serde derive"));
        }
    }
    let shape = match kind.as_str() {
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g))
            }
            other => return Err(format!("expected enum body, got {other:?}")),
        },
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(parse_tuple_fields(g))
            }
            _ => Shape::UnitStruct,
        },
        other => return Err(format!("cannot derive for item kind `{other}`")),
    };
    Ok(Item { name, shape })
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut push = String::new();
            for f in fields {
                push.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{f}\"), \
                     ::serde::Serialize::serialize_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{push}::serde::Value::Object(__fields)"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::serialize_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::serialize_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__x{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize_value(__x0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![\
                             (::std::string::String::from(\"{vn}\"), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let binds = fields.join(", ");
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::serialize_value({f}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![\
                             (::std::string::String::from(\"{vn}\"), \
                             ::serde::Value::Object(vec![{}]))]),\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn serialize_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let mut sets = String::new();
            for f in fields {
                sets.push_str(&format!(
                    "{f}: ::serde::Deserialize::deserialize_value(::serde::Value::field(__obj, \"{f}\"))\
                     .map_err(|e| e.in_field(\"{name}.{f}\"))?,\n"
                ));
            }
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"object\", \"{name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{sets}}})"
            )
        }
        Shape::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize_value(__v)?))"
        ),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::deserialize_value(&__arr[{k}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| \
                 ::serde::DeError::expected(\"array\", \"{name}\"))?;\n\
                 if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"array of {n}\", \"{name}\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let build = if *n == 1 {
                            format!(
                                "return ::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::deserialize_value(__inner)?));"
                            )
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::Deserialize::deserialize_value(&__arr[{k}])?")
                                })
                                .collect();
                            format!(
                                "let __arr = __inner.as_array().ok_or_else(|| \
                                 ::serde::DeError::expected(\"array\", \"{name}::{vn}\"))?;\n\
                                 if __arr.len() != {n} {{ return ::std::result::Result::Err(\
                                 ::serde::DeError::expected(\"array of {n}\", \"{name}::{vn}\")); }}\n\
                                 return ::std::result::Result::Ok({name}::{vn}({}));",
                                items.join(", ")
                            )
                        };
                        keyed_arms.push_str(&format!("\"{vn}\" => {{ {build} }}\n"));
                    }
                    VariantFields::Named(fields) => {
                        let sets: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::deserialize_value(\
                                     ::serde::Value::field(__fields, \"{f}\"))?"
                                )
                            })
                            .collect();
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{\nlet __fields = __inner.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"object\", \"{name}::{vn}\"))?;\n\
                             return ::std::result::Result::Ok({name}::{vn} {{ {} }});\n}}\n",
                            sets.join(", ")
                        ));
                    }
                }
            }
            format!(
                "if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                 match __s {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
                 if let ::std::option::Option::Some(__obj) = __v.as_object() {{\n\
                 if __obj.len() == 1 {{\nlet (__key, __inner) = &__obj[0];\n\
                 match __key.as_str() {{\n{keyed_arms}_ => {{}}\n}}\n}}\n}}\n\
                 ::std::result::Result::Err(::serde::DeError::expected(\"variant of {name}\", \"{name}\"))"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn deserialize_value(__v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

fn expand(input: TokenStream, ser: bool) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            let err = format!("compile_error!({msg:?});");
            return err.parse().expect("compile_error tokens");
        }
    };
    let code = if ser { gen_serialize(&item) } else { gen_deserialize(&item) };
    code.parse().unwrap_or_else(|e| {
        let err = format!("compile_error!(\"offline serde derive generated invalid code: {e:?}\");");
        err.parse().expect("compile_error tokens")
    })
}

/// Derive `serde::Serialize` (offline subset).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derive `serde::Deserialize` (offline subset).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}
