//! Offline drop-in subset of `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with the few methods
//! this workspace uses (`send`, `try_recv`, `len`, `is_empty`), built on a mutexed
//! `VecDeque` — adequate for the low-rate OAL mailbox traffic it carries here — and
//! `crossbeam::thread::scope` scoped spawning with the upstream closure signature,
//! built on `std::thread::scope`.

/// Scoped threads with the `crossbeam` API shape (`scope` returns a `Result`, spawn
/// closures receive the scope for nested spawning).
pub mod thread {
    use std::thread as std_thread;

    /// Result of a scope or a joined scoped thread (`Err` carries a panic payload).
    pub type Result<T> = std_thread::Result<T>;

    /// A scope handle for spawning threads that may borrow from the caller's stack.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread inside the scope; the closure receives the scope so it can
        /// spawn siblings (crossbeam's signature, unlike `std`'s zero-arg closure).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread to finish; `Err` if it panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Run `f` with a scope; all threads spawned in it are joined before `scope`
    /// returns. Unlike upstream (which collects child panics into the `Err` arm),
    /// this subset requires callers to join every handle themselves — an unjoined
    /// panicked child aborts via `std::thread::scope`'s own propagation.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std_thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn scoped_threads_borrow_and_join_in_order() {
            let data = [1u64, 2, 3, 4];
            let sums = scope(|s| {
                let handles: Vec<_> = data
                    .chunks(2)
                    .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect::<Vec<_>>()
            })
            .unwrap();
            assert_eq!(sums, vec![3, 7]);
        }

        #[test]
        fn nested_spawn_through_the_scope_argument() {
            let n = scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 21).join().unwrap() * 2)
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(n, 42);
        }

        #[test]
        fn joined_panic_surfaces_as_err() {
            let r = scope(|s| s.spawn(|_| panic!("boom")).join());
            assert!(r.unwrap().is_err());
        }
    }
}

/// Multi-producer multi-consumer FIFO channels (unbounded only).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        rx_alive: AtomicBool,
    }

    /// Error of [`Sender::send`]: the receiving side was dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error of [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders may still exist).
        Empty,
        /// The channel is empty and every sender was dropped.
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            rx_alive: AtomicBool::new(true),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Number of queued messages, observed from the sending side (upstream
        /// crossbeam exposes this too; bounded-mailbox capacity checks need it).
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Enqueue a message; fails if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if !self.shared.rx_alive.load(Ordering::Acquire) {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            // Re-check under the lock so a racing receiver drop can't strand messages
            // that a later send claims were delivered.
            if !self.shared.rx_alive.load(Ordering::Acquire) {
                return Err(SendError(value));
            }
            q.push_back(value);
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("Sender").finish()
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the oldest message, if any.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if Arc::strong_count(&self.shared) == 1 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.rx_alive.store(false, Ordering::Release);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("Receiver").finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_and_len() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(7).is_err());
        }

        #[test]
        fn empty_vs_disconnected() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
