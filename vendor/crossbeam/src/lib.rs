//! Offline drop-in subset of `crossbeam`.
//!
//! Provides `crossbeam::channel::{unbounded, Sender, Receiver}` with the few methods
//! this workspace uses (`send`, `try_recv`, `len`, `is_empty`). Built on a mutexed
//! `VecDeque` — adequate for the low-rate OAL mailbox traffic it carries here.

/// Multi-producer multi-consumer FIFO channels (unbounded only).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::{Arc, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        rx_alive: AtomicBool,
    }

    /// Error of [`Sender::send`]: the receiving side was dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error of [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty (senders may still exist).
        Empty,
        /// The channel is empty and every sender was dropped.
        Disconnected,
    }

    /// Sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            rx_alive: AtomicBool::new(true),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if !self.shared.rx_alive.load(Ordering::Acquire) {
                return Err(SendError(value));
            }
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            // Re-check under the lock so a racing receiver drop can't strand messages
            // that a later send claims were delivered.
            if !self.shared.rx_alive.load(Ordering::Acquire) {
                return Err(SendError(value));
            }
            q.push_back(value);
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("Sender").finish()
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the oldest message, if any.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if Arc::strong_count(&self.shared) == 1 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
        }

        /// True if no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.rx_alive.store(false, Ordering::Release);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("Receiver").finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_and_len() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert!(tx.send(7).is_err());
        }

        #[test]
        fn empty_vs_disconnected() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }
    }
}
