#!/usr/bin/env bash
# Tier-1 verification: what CI runs and what every change must keep green.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> tcm_reduce smoke (exactness incl. N=1024 tree lane + sketch-at-dense identity)"
JESSY_SCALE=small cargo bench -p jessy-bench --bench tcm_reduce

echo "==> access_path smoke (arena vs seed layout, payload identity)"
JESSY_SCALE=small cargo bench -p jessy-bench --bench access_path

echo "==> recovery smoke (checkpoint/replay bit-identity under a master crash)"
JESSY_SCALE=small cargo bench -p jessy-bench --bench recovery

echo "==> overhead_frontier smoke (budget ladder, shed policies, slow-node demotion)"
JESSY_SCALE=small cargo bench -p jessy-bench --bench overhead_frontier

echo "==> placement smoke (mid-run migration recovers the scattered gap, headless N=1024 plan)"
JESSY_SCALE=small cargo bench -p jessy-bench --bench placement

echo "==> phase_adapt smoke (drift re-activation vs frozen baseline, no-flip identity)"
JESSY_SCALE=small cargo bench -p jessy-bench --bench phase_adapt

echo "==> sessions smoke (Zipf catalog run + journal waste mining via the CLI)"
SESS_DIR=$(mktemp -d)
./target/release/jessy-cli run -w sessions --scale small --nodes 4 --threads 8 --rate 1x \
  --adaptive 0.1 --drift-threshold 0.3 --journal "$SESS_DIR/sessions.jsonl" > /dev/null
test -s "$SESS_DIR/sessions.jsonl"
rm -rf "$SESS_DIR"

echo "==> observability smoke (multi-thread journal bit-identity + trace export)"
OBS_DIR=$(mktemp -d)
./target/release/jessy-cli run -w sor --scale small --nodes 2 --threads 4 --rate 4x \
  --journal "$OBS_DIR/a.jsonl" > /dev/null
./target/release/jessy-cli run -w sor --scale small --nodes 2 --threads 4 --rate 4x \
  --journal "$OBS_DIR/b.jsonl" > /dev/null
test -s "$OBS_DIR/a.jsonl"
cmp "$OBS_DIR/a.jsonl" "$OBS_DIR/b.jsonl"   # multi-thread journals must be bit-identical
./target/release/jessy-cli run -w sor --scale small --nodes 2 --threads 4 --rate 4x \
  --trace "$OBS_DIR/trace.json" > /dev/null
grep -q '"traceEvents"' "$OBS_DIR/trace.json"
rm -rf "$OBS_DIR"

echo "==> chaos seed matrix (fault determinism must not depend on one seed)"
# The suite includes the partition schedules (heal + permanent), the slow-node
# windows and the zero-plan invariant; every seed must satisfy every assertion.
for seed in 1 7 42 1337 31337 99999; do
  echo "--- JESSY_CHAOS_SEED=$seed"
  JESSY_CHAOS_SEED=$seed cargo test -p jessy-runtime --test chaos -q
  JESSY_CHAOS_SEED=$seed cargo test -p jessy --test drift -q phase_flip_inside
done

echo "==> scale soak smoke (10k cooperative threads, time-compressed)"
cargo test -p jessy-runtime --test soak -q -- --ignored

echo "OK"
