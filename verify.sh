#!/usr/bin/env bash
# Tier-1 verification: what CI runs and what every change must keep green.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> tcm_reduce smoke (exactness + throughput sanity)"
JESSY_SCALE=small cargo bench -p jessy-bench --bench tcm_reduce

echo "OK"
