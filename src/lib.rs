//! # jessy — adaptive sampling-based profiling for a distributed-JVM-style runtime
//!
//! A from-scratch Rust reproduction of *"Adaptive Sampling-Based Profiling Techniques
//! for Optimizing the Distributed JVM Runtime"* (Lam, Luo, Wang — IPDPS 2010), the
//! profiling subsystem of the JESSICA2 distributed JVM, together with every substrate
//! it needs:
//!
//! * [`net`] — simulated cluster interconnect (traffic accounting + latency model +
//!   per-thread simulated clocks);
//! * [`gos`] — the Global Object Space: home-based lazy release consistency over
//!   per-thread object caches, with the 2-bit access states (including *false
//!   invalid*), per-class sequence numbers and sampled tags the profiler drives;
//! * [`stack`] — simulated Java thread stacks (frames, slots, visited flags);
//! * [`core`] — **the paper's contribution**: adaptive object sampling, OAL/TCM
//!   correlation tracking with the `E_ABS`/`E_EUC` accuracy metrics, the adaptive
//!   rate controller, Fig. 8 stack sampling, and sticky-set footprinting/resolution;
//! * [`runtime`] — the DJVM: clusters, application threads, the master daemon,
//!   migration with sticky-set prefetch, the correlation-driven load balancer;
//! * [`pagedsm`] — the page-grain baseline (induced sharing patterns, D-CVM costs);
//! * [`workloads`] — SOR, Barnes-Hut and Water-Spatial ports (Table I);
//! * [`obs`] — the deterministic observability layer: a structured event journal
//!   keyed by simulated time, a unified metrics registry, and JSON-lines / Chrome
//!   `trace_event` exporters (zero-cost when no sink is attached).
//!
//! ## Quickstart
//!
//! ```
//! use jessy::prelude::*;
//!
//! // A 2-node cluster running 4 threads with correlation tracking at rate 1X.
//! let mut cluster = Cluster::builder()
//!     .nodes(2)
//!     .threads(4)
//!     .profiler(ProfilerConfig::tracking_at(SamplingRate::NX(1)))
//!     .build();
//! let report = jessy::workloads::sor::run_on(&mut cluster, jessy::workloads::sor::SorConfig::small());
//! let tcm = &report.master.as_ref().unwrap().tcm;
//! assert!(tcm.total() > 0.0, "the profiler recovered a sharing profile");
//! ```


#![warn(missing_docs)]
pub use jessy_core as core;
pub use jessy_gos as gos;
pub use jessy_net as net;
pub use jessy_obs as obs;
pub use jessy_pagedsm as pagedsm;
pub use jessy_runtime as runtime;
pub use jessy_stack as stack;
pub use jessy_workloads as workloads;

/// The most commonly used types in one import.
pub mod prelude {
    pub use jessy_core::{
        accuracy_abs, accuracy_euc, e_abs, e_euc, ConfigError, FootprintConfig, FootprintMode,
        Oal, ProfilerConfig, SamplingRate, ShedPolicy, SketchTcm, StackSamplingConfig, Tcm,
        TcmBackend, TopKPairs,
    };
    pub use jessy_gos::{AccessState, ClassId, CostModel, Gos, GosConfig, LockId, ObjectId};
    pub use jessy_net::{
        ClockBoard, FaultPlan, FaultStats, LatencyModel, MsgClass, NodeId, StallWindow, ThreadId,
    };
    pub use jessy_obs::{
        to_chrome_trace, to_json_lines, EventKind, JournalSink, MetricsSnapshot, TraceEvent,
        TraceSink,
    };
    pub use jessy_runtime::{
        Cluster, DeterministicReport, JThread, LoadBalancer, RunReport, RuntimeError,
    };
    pub use jessy_workloads::{WorkloadKind, WorkloadPreset};
}
