//! `jessy-cli` — run the simulated DJVM with the profiler from the command line.
//!
//! ```text
//! jessy-cli run --workload bh --nodes 8 --threads 16 --rate 4x
//! jessy-cli run --workload sor --scale small --rate full --json
//! jessy-cli run --workload water --adaptive 0.05 --rebalance 4
//! jessy-cli run --workload sor --adaptive 0.05 --overhead-budget 0.02
//! jessy-cli run --workload bh --mailbox-capacity 8 --shed-policy merge
//! jessy-cli run --workload sor --trace trace.json --journal run.jsonl
//! jessy-cli heatmap --workload bh --threads 16
//! jessy-cli info
//! ```
//!
//! `--trace FILE` writes the run's event journal in Chrome `trace_event` format
//! (load it at `chrome://tracing` or <https://ui.perfetto.dev>); `--journal FILE`
//! writes the raw journal as JSON lines, one event per line in the canonical
//! deterministic order.
//!
//! Argument parsing is deliberately dependency-free (the workspace's crate policy);
//! see `parse_args` below.

use std::process::ExitCode;

use jessy::prelude::*;

#[derive(Debug, Clone, PartialEq)]
struct Options {
    command: Command,
    workload: WorkloadKind,
    nodes: usize,
    threads: usize,
    rate: RateOpt,
    scale: WorkloadPreset,
    adaptive: Option<f64>,
    rebalance: Option<u64>,
    rebalance_every: Option<u64>,
    cooldown_rounds: Option<u64>,
    migration_budget_bytes: Option<u64>,
    overhead_budget: Option<f64>,
    mailbox_capacity: Option<usize>,
    shed_policy: Option<ShedPolicy>,
    tcm_fanout: usize,
    tcm_backend: TcmBackend,
    top_k: usize,
    prefetch_depth: u32,
    json: bool,
    trace: Option<String>,
    journal: Option<String>,
    exec_seed: u64,
    exec_jitter: u64,
    drift_threshold: Option<f64>,
    flip_round: Option<usize>,
    zipf_s: Option<f64>,
    session_len: Option<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Command {
    Run,
    Heatmap,
    Info,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum RateOpt {
    Off,
    Nx(u32),
    Full,
    Trace,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            command: Command::Run,
            workload: WorkloadKind::Sor,
            nodes: 8,
            threads: 8,
            rate: RateOpt::Nx(1),
            scale: WorkloadPreset::Small,
            adaptive: None,
            rebalance: None,
            rebalance_every: None,
            cooldown_rounds: None,
            migration_budget_bytes: None,
            overhead_budget: None,
            mailbox_capacity: None,
            shed_policy: None,
            tcm_fanout: 0,
            tcm_backend: TcmBackend::Dense,
            top_k: 0,
            prefetch_depth: 0,
            json: false,
            trace: None,
            journal: None,
            exec_seed: 0,
            exec_jitter: 0,
            drift_threshold: None,
            flip_round: None,
            zipf_s: None,
            session_len: None,
        }
    }
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter().peekable();
    let Some(cmd) = it.next() else {
        return Err("missing command (run | heatmap | info)".into());
    };
    opts.command = match cmd.as_str() {
        "run" => Command::Run,
        "heatmap" => Command::Heatmap,
        "info" => Command::Info,
        other => return Err(format!("unknown command {other:?} (run | heatmap | info)")),
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--workload" | "-w" => {
                opts.workload = match value(flag)?.to_lowercase().as_str() {
                    "sor" => WorkloadKind::Sor,
                    "bh" | "barnes-hut" | "barneshut" => WorkloadKind::BarnesHut,
                    "water" | "water-spatial" => WorkloadKind::WaterSpatial,
                    "lu" => WorkloadKind::Lu,
                    "phase_shift" | "phase-shift" | "phase" => WorkloadKind::PhaseShift,
                    "sessions" | "zipf" => WorkloadKind::Sessions,
                    other => return Err(format!("unknown workload {other:?}")),
                }
            }
            "--nodes" | "-n" => {
                opts.nodes = value(flag)?.parse().map_err(|e| format!("--nodes: {e}"))?
            }
            "--threads" | "-t" => {
                opts.threads = value(flag)?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--rate" | "-r" => {
                let v = value(flag)?.to_lowercase();
                opts.rate = match v.as_str() {
                    "off" | "none" => RateOpt::Off,
                    "full" => RateOpt::Full,
                    "trace" | "ground-truth" => RateOpt::Trace,
                    other => {
                        let n = other
                            .strip_suffix('x')
                            .and_then(|n| n.parse::<u32>().ok())
                            .ok_or_else(|| format!("bad rate {other:?} (e.g. 4x, full, off)"))?;
                        RateOpt::Nx(n)
                    }
                }
            }
            "--scale" | "-s" => {
                opts.scale = match value(flag)?.to_lowercase().as_str() {
                    "paper" => WorkloadPreset::Paper,
                    "small" => WorkloadPreset::Small,
                    other => return Err(format!("unknown scale {other:?} (paper | small)")),
                }
            }
            "--adaptive" => {
                opts.adaptive =
                    Some(value(flag)?.parse().map_err(|e| format!("--adaptive: {e}"))?)
            }
            "--rebalance" => {
                opts.rebalance =
                    Some(value(flag)?.parse().map_err(|e| format!("--rebalance: {e}"))?)
            }
            "--rebalance-every" => {
                opts.rebalance_every = Some(
                    value(flag)?
                        .parse()
                        .map_err(|e| format!("--rebalance-every: {e}"))?,
                )
            }
            "--cooldown-rounds" => {
                opts.cooldown_rounds = Some(
                    value(flag)?
                        .parse()
                        .map_err(|e| format!("--cooldown-rounds: {e}"))?,
                )
            }
            "--migration-budget-bytes" => {
                opts.migration_budget_bytes = Some(
                    value(flag)?
                        .parse()
                        .map_err(|e| format!("--migration-budget-bytes: {e}"))?,
                )
            }
            "--overhead-budget" => {
                opts.overhead_budget = Some(
                    value(flag)?
                        .parse()
                        .map_err(|e| format!("--overhead-budget: {e}"))?,
                )
            }
            "--mailbox-capacity" => {
                opts.mailbox_capacity = Some(
                    value(flag)?
                        .parse()
                        .map_err(|e| format!("--mailbox-capacity: {e}"))?,
                )
            }
            "--shed-policy" => {
                opts.shed_policy = Some(match value(flag)?.to_lowercase().as_str() {
                    "drop-oldest" | "drop" => ShedPolicy::DropOldestRound,
                    "merge" => ShedPolicy::MergeBatches,
                    "summary" => ShedPolicy::SummaryOnly,
                    other => {
                        return Err(format!(
                            "unknown shed policy {other:?} (drop-oldest | merge | summary)"
                        ))
                    }
                })
            }
            "--prefetch-depth" => {
                opts.prefetch_depth = value(flag)?
                    .parse()
                    .map_err(|e| format!("--prefetch-depth: {e}"))?
            }
            "--tcm-fanout" => {
                opts.tcm_fanout = value(flag)?
                    .parse()
                    .map_err(|e| format!("--tcm-fanout: {e}"))?
            }
            "--tcm-backend" => {
                let v = value(flag)?.to_lowercase();
                opts.tcm_backend = match v.as_str() {
                    "dense" => TcmBackend::Dense,
                    "sketch" => TcmBackend::default_sketch(),
                    other => match other.strip_prefix("sketch:") {
                        Some(dims) => {
                            let (w, d) = dims.split_once(',').ok_or_else(|| {
                                format!("bad backend {other:?} (dense | sketch | sketch:WIDTH,DEPTH)")
                            })?;
                            TcmBackend::Sketch {
                                width: w.trim().parse().map_err(|e| format!("sketch width: {e}"))?,
                                depth: d.trim().parse().map_err(|e| format!("sketch depth: {e}"))?,
                            }
                        }
                        None => {
                            return Err(format!(
                                "bad backend {other:?} (dense | sketch | sketch:WIDTH,DEPTH)"
                            ))
                        }
                    },
                }
            }
            "--top-k" => {
                opts.top_k = value(flag)?.parse().map_err(|e| format!("--top-k: {e}"))?
            }
            "--json" => opts.json = true,
            "--trace" => opts.trace = Some(value(flag)?),
            "--journal" => opts.journal = Some(value(flag)?),
            "--exec-seed" => {
                opts.exec_seed = value(flag)?
                    .parse()
                    .map_err(|e| format!("--exec-seed: {e}"))?
            }
            "--exec-jitter" => {
                opts.exec_jitter = value(flag)?
                    .parse()
                    .map_err(|e| format!("--exec-jitter: {e}"))?
            }
            "--drift-threshold" => {
                opts.drift_threshold = Some(
                    value(flag)?
                        .parse()
                        .map_err(|e| format!("--drift-threshold: {e}"))?,
                )
            }
            "--flip-round" => {
                opts.flip_round = Some(
                    value(flag)?
                        .parse()
                        .map_err(|e| format!("--flip-round: {e}"))?,
                )
            }
            "--zipf-s" => {
                opts.zipf_s = Some(value(flag)?.parse().map_err(|e| format!("--zipf-s: {e}"))?)
            }
            "--session-len" => {
                opts.session_len = Some(
                    value(flag)?
                        .parse()
                        .map_err(|e| format!("--session-len: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if opts.nodes == 0 || opts.threads == 0 {
        return Err("--nodes and --threads must be positive".into());
    }
    if opts.rebalance.is_some() && matches!(opts.rate, RateOpt::Off) {
        return Err("--rebalance needs correlation tracking (pick a --rate)".into());
    }
    if opts.rebalance.is_some() && opts.nodes < 2 {
        return Err("--rebalance on a single node has nowhere to move threads; use --nodes >= 2".into());
    }
    if opts.rebalance_every == Some(0) {
        return Err("--rebalance-every 0 would re-plan on no cadence; use >= 1".into());
    }
    if opts.rebalance.is_none()
        && (opts.rebalance_every.is_some()
            || opts.cooldown_rounds.is_some()
            || opts.migration_budget_bytes.is_some())
    {
        return Err(
            "--rebalance-every / --cooldown-rounds / --migration-budget-bytes tune the \
             placement engine; also pass --rebalance ROUNDS"
                .into(),
        );
    }
    if let Some(b) = opts.overhead_budget {
        if !b.is_finite() || b <= 0.0 || b > 1.0 {
            return Err(format!(
                "--overhead-budget {b} is not a fraction in (0, 1] (e.g. 0.02 for 2%)"
            ));
        }
        if opts.adaptive.is_none() {
            return Err(
                "--overhead-budget rides the adaptive controller; also pass --adaptive".into(),
            );
        }
    }
    if opts.mailbox_capacity == Some(0) {
        return Err("--mailbox-capacity 0 could never accept mail; omit it for unbounded".into());
    }
    if opts.shed_policy.is_some() && opts.mailbox_capacity.is_none() {
        return Err("--shed-policy only matters with a bounded mailbox (--mailbox-capacity)".into());
    }
    if opts.tcm_fanout == 1 {
        return Err("--tcm-fanout 1 reduces nothing; use 0 (flat) or >= 2".into());
    }
    if let Some(dt) = opts.drift_threshold {
        if !dt.is_finite() || dt <= 0.0 {
            return Err(format!("--drift-threshold {dt} is not a positive distance"));
        }
        if opts.adaptive.is_none() {
            return Err(
                "--drift-threshold rides the adaptive controller; also pass --adaptive".into(),
            );
        }
    }
    if opts.flip_round.is_some() && opts.workload != WorkloadKind::PhaseShift {
        return Err("--flip-round only applies to --workload phase_shift".into());
    }
    if (opts.zipf_s.is_some() || opts.session_len.is_some())
        && opts.workload != WorkloadKind::Sessions
    {
        return Err("--zipf-s / --session-len only apply to --workload sessions".into());
    }
    if let Some(s) = opts.zipf_s {
        if !s.is_finite() || s < 0.0 {
            return Err(format!("--zipf-s {s} is not a nonnegative exponent"));
        }
    }
    if opts.session_len == Some(0) {
        return Err("--session-len 0 would serve empty sessions; use >= 1".into());
    }
    if let TcmBackend::Sketch { width, depth } = opts.tcm_backend {
        if opts.tcm_fanout < 2 {
            return Err(
                "--tcm-backend sketch needs the aggregation tree (--tcm-fanout >= 2)".into(),
            );
        }
        if width == 0 || depth == 0 {
            return Err("--tcm-backend sketch dimensions must both be nonzero".into());
        }
    }
    Ok(opts)
}

fn profiler_config(opts: &Options) -> ProfilerConfig {
    let mut config = match opts.rate {
        RateOpt::Off => ProfilerConfig::disabled(),
        RateOpt::Nx(n) => ProfilerConfig::tracking_at(SamplingRate::NX(n)),
        RateOpt::Full => ProfilerConfig::tracking_at(SamplingRate::Full),
        RateOpt::Trace => ProfilerConfig::ground_truth(),
    };
    config.adaptive_threshold = opts.adaptive;
    config.drift_threshold = opts.drift_threshold;
    config.overhead_budget = opts.overhead_budget;
    config.oal_mailbox_capacity = opts.mailbox_capacity;
    if let Some(policy) = opts.shed_policy {
        config.shed_policy = policy;
    }
    config.tcm_tree_fanout = opts.tcm_fanout;
    config.tcm_backend = opts.tcm_backend;
    config.tcm_top_k = opts.top_k;
    config
}

fn build_cluster(opts: &Options) -> (Cluster, Option<std::sync::Arc<JournalSink>>) {
    let mut builder = Cluster::builder()
        .nodes(opts.nodes)
        .threads(opts.threads)
        .prefetch_depth(opts.prefetch_depth)
        .exec_seed(opts.exec_seed)
        .exec_jitter(opts.exec_jitter)
        .profiler(profiler_config(opts));
    if let Some(rounds) = opts.rebalance {
        let mut rb = jessy::runtime::RebalanceConfig {
            after_rounds: rounds,
            every_rounds: opts.rebalance_every,
            ..Default::default()
        };
        if let Some(c) = opts.cooldown_rounds {
            rb.cooldown_rounds = c;
        }
        if let Some(b) = opts.migration_budget_bytes {
            rb.migration_budget_bytes = Some(b as f64);
        }
        builder = builder.rebalance(rb);
    }
    let sink = if opts.trace.is_some() || opts.journal.is_some() {
        let sink = JournalSink::shared();
        builder = builder.trace(sink.clone());
        Some(sink)
    } else {
        None
    };
    (builder.build(), sink)
}

/// Write the journal exports requested on the command line.
fn export_journal(opts: &Options, sink: &JournalSink) {
    let events = sink.sorted_events();
    if let Some(path) = &opts.trace {
        match std::fs::write(path, to_chrome_trace(&events)) {
            Ok(()) => eprintln!("wrote Chrome trace ({} events) to {path}", events.len()),
            Err(e) => eprintln!("error: cannot write {path}: {e}"),
        }
    }
    if let Some(path) = &opts.journal {
        match std::fs::write(path, to_json_lines(&events)) {
            Ok(()) => eprintln!("wrote journal ({} events) to {path}", events.len()),
            Err(e) => eprintln!("error: cannot write {path}: {e}"),
        }
    }
}

fn cmd_info() {
    println!("workload presets (Table I):");
    for kind in WorkloadKind::ALL {
        for preset in [WorkloadPreset::Paper, WorkloadPreset::Small] {
            println!(
                "  {:<13} {:<6} {:>14}  rounds {:>2}  {:<7}  {}",
                kind.name(),
                format!("{preset:?}").to_lowercase(),
                kind.data_set(preset),
                kind.rounds(preset),
                kind.granularity(),
                kind.object_size()
            );
        }
    }
    println!("\nsuite extensions:");
    for kind in [WorkloadKind::Lu, WorkloadKind::PhaseShift, WorkloadKind::Sessions] {
        for preset in [WorkloadPreset::Paper, WorkloadPreset::Small] {
            println!(
                "  {:<13} {:<6} {:>14}  rounds {:>2}  {:<16}  {}",
                kind.name(),
                format!("{preset:?}").to_lowercase(),
                kind.data_set(preset),
                kind.rounds(preset),
                kind.granularity(),
                kind.object_size()
            );
        }
    }
}

/// The effective phase-shift config: preset at `--scale`, `--flip-round` override.
fn phase_cfg(opts: &Options) -> jessy::workloads::phase_shift::PhaseShiftConfig {
    use jessy::workloads::phase_shift::PhaseShiftConfig;
    let mut cfg = match opts.scale {
        WorkloadPreset::Paper => PhaseShiftConfig::paper(),
        WorkloadPreset::Small => PhaseShiftConfig::small(),
    };
    if let Some(f) = opts.flip_round {
        cfg.flip_round = f;
    }
    cfg
}

/// The effective sessions config: preset at `--scale`, skew/length overrides.
fn sessions_cfg(opts: &Options) -> jessy::workloads::sessions::SessionsConfig {
    use jessy::workloads::sessions::SessionsConfig;
    let mut cfg = match opts.scale {
        WorkloadPreset::Paper => SessionsConfig::paper(),
        WorkloadPreset::Small => SessionsConfig::small(),
    };
    if let Some(s) = opts.zipf_s {
        cfg.zipf_s = s;
    }
    if let Some(l) = opts.session_len {
        cfg.ops_per_session = l;
    }
    cfg
}

/// Run the selected workload, honoring the drift-era per-workload overrides.
fn run_workload(cluster: &mut Cluster, opts: &Options) -> RunReport {
    match opts.workload {
        WorkloadKind::PhaseShift => {
            jessy::workloads::phase_shift::run_on(cluster, phase_cfg(opts))
        }
        WorkloadKind::Sessions => jessy::workloads::sessions::run_on(cluster, sessions_cfg(opts)),
        _ => opts.workload.run_on(cluster, opts.scale),
    }
}

fn cmd_run(opts: &Options) {
    let (mut cluster, sink) = build_cluster(opts);
    eprintln!(
        "running {} ({:?}) on {} nodes / {} threads, rate {:?}…",
        opts.workload.name(),
        opts.scale,
        opts.nodes,
        opts.threads,
        opts.rate
    );
    let report = run_workload(&mut cluster, opts);
    if let Some(sink) = &sink {
        export_journal(opts, sink);
    }
    if opts.json {
        println!("{}", serde_json::to_string_pretty(&report).expect("report serializes"));
        return;
    }
    println!("simulated execution : {:>12.2} ms", report.sim_exec_ms());
    println!("wall clock          : {:>12.2} ms", report.wall_ns as f64 / 1e6);
    println!("accesses            : {:>12}", report.proto.accesses);
    println!("object faults       : {:>12}", report.proto.real_faults);
    println!("correlation faults  : {:>12}", report.proto.false_invalid_faults);
    println!("objects prefetched  : {:>12}", report.proto.objects_prefetched);
    println!("GOS volume          : {:>12.1} KB", report.gos_kb());
    println!("OAL volume          : {:>12.1} KB ({:.2}% of GOS)", report.oal_kb(), report.net.oal_over_gos() * 100.0);
    let sheds = report.sheds_dropped + report.sheds_merged + report.sheds_summarized;
    if sheds > 0 {
        println!(
            "OALs shed           : {:>12} (dropped {}, merged {}, summarized {})",
            sheds, report.sheds_dropped, report.sheds_merged, report.sheds_summarized
        );
    }
    if report.oal_post_failures > 0 {
        println!("OALs lost at post   : {:>12}", report.oal_post_failures);
    }
    if let Some(master) = &report.master {
        println!("TCM rounds          : {:>12}", master.rounds);
        println!("TCM build (real)    : {:>12.2} ms", master.tcm_build_real_ns as f64 / 1e6);
        if master.stragglers > 0 {
            println!("stragglers demoted  : {:>12}", master.stragglers);
        }
        if master.budget_over_rounds > 0 {
            println!(
                "budget ladder       : {:>12} rungs ({} rounds over budget)",
                master.budget_degrades, master.budget_over_rounds
            );
        }
        if master.drift_reactivations > 0 {
            println!("drift reactivations : {:>12}", master.drift_reactivations);
        }
        if opts.workload == WorkloadKind::PhaseShift {
            let cfg = phase_cfg(opts);
            println!(
                "re-convergence lag  : {:>12} rounds after the flip (round {})",
                jessy::workloads::phase_shift::reconvergence_lag(&report, cfg.flip_round),
                cfg.flip_round
            );
        }
        for ch in &master.rate_changes {
            println!(
                "  rate change: {} -> {} (round {}, distance {:.3}{})",
                ch.class_name,
                ch.new_rate,
                ch.round,
                ch.relative_distance,
                if ch.drift { ", drift" } else { "" }
            );
        }
        for m in &master.planned_migrations {
            println!(
                "  planned migration: {} {} -> {} (gain {:.0} B)",
                m.thread, m.from, m.to, m.gain_bytes
            );
        }
        let p = &master.placement;
        if p.plans > 0 {
            println!(
                "placement engine    : {:>12} plans, {} directives, {} applied ({:.1} KB moved)",
                p.plans,
                p.directives,
                p.applied_migrations,
                p.migrated_bytes as f64 / 1024.0
            );
            if p.homes_migrated + p.homes_repaired > 0 {
                println!(
                    "  homes: {} migrated with their threads, {} repaired by the master ({:.1} KB)",
                    p.homes_migrated,
                    p.homes_repaired,
                    p.repaired_bytes as f64 / 1024.0
                );
            }
            let vetoes = p.vetoed_gain + p.vetoed_cooldown + p.vetoed_cost + p.vetoed_budget;
            if vetoes > 0 {
                println!(
                    "  vetoes: {} gain, {} cooldown, {} cost, {} budget",
                    p.vetoed_gain, p.vetoed_cooldown, p.vetoed_cost, p.vetoed_budget
                );
            }
            if p.fenced_directives > 0 {
                println!("  stale directives fenced: {}", p.fenced_directives);
            }
        }
        if master.reduce.tree_rounds > 0 {
            println!(
                "tree reduction      : {:>12} partials into master ({:.1} KB partial-TCM, {:.1} KB shuffle)",
                master.reduce.master_partials,
                master.reduce.partial_bytes as f64 / 1024.0,
                master.reduce.shuffle_bytes as f64 / 1024.0
            );
        }
        if !master.top_pairs.is_empty() {
            println!("\nhottest correlated pairs:");
            for (i, j, w) in &master.top_pairs {
                println!("  ({i:>4}, {j:>4})  {w:>14.0}");
            }
        }
        println!("\nthread correlation map:");
        print!("{}", master.tcm.ascii_heatmap());
    }
    if let Some(sink) = &sink {
        let events = sink.sorted_events();
        let spans = jessy::obs::drift_spans(&events);
        if !spans.is_empty() {
            println!("\ndrift spans (journal):");
            for s in &spans {
                match s.lag() {
                    Some(lag) => println!(
                        "  {} drifted at round {} (distance {:.3}), re-converged after {} rounds",
                        s.class, s.drift_round, s.relative_distance, lag
                    ),
                    None => println!(
                        "  {} drifted at round {} (distance {:.3}), never re-converged",
                        s.class, s.drift_round, s.relative_distance
                    ),
                }
            }
        }
        let waste = jessy::obs::analyze_waste(&events);
        if !waste.classes.is_empty() {
            println!("\nper-class waste (journal):");
            println!("  class     faults     fault KB   replicas  dup fetch     dup KB  false-inv");
            for c in &waste.classes {
                println!(
                    "  {:>5} {:>10} {:>12.1} {:>10} {:>10} {:>10.1} {:>10}",
                    c.class,
                    c.faults,
                    c.fault_bytes as f64 / 1024.0,
                    c.replica_objects,
                    c.duplicate_fetches,
                    c.duplicate_bytes as f64 / 1024.0,
                    c.false_invalid_traps
                );
            }
            println!(
                "  totals: {:.1} KB faulted, {:.1} KB duplicate refetches, {} false-invalid traps",
                waste.total_fault_bytes as f64 / 1024.0,
                waste.total_duplicate_bytes as f64 / 1024.0,
                waste.total_false_invalid_traps
            );
        }
    }
}

fn cmd_heatmap(opts: &Options) {
    let mut config = ProfilerConfig::ground_truth();
    config.record_oals = true;
    let mut cluster = Cluster::builder()
        .nodes(opts.nodes)
        .threads(opts.threads)
        .profiler(config)
        .build();
    let report = opts.workload.run_on(&mut cluster, opts.scale);
    let master = report.master.as_ref().expect("tracking on");
    println!("inherent (object-grain) correlation map:");
    print!("{}", master.tcm.ascii_heatmap());
    let layout = jessy::pagedsm::PageLayout::from_gos(&cluster.shared().gos);
    let mut induced = jessy::pagedsm::InducedTcmBuilder::new(opts.threads);
    for oal in &master.oal_log {
        induced.ingest(oal, &layout);
    }
    println!("\ninduced (page-grain) correlation map:");
    print!("{}", induced.build().ascii_heatmap());
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(opts) => {
            match opts.command {
                Command::Info => cmd_info(),
                Command::Run => cmd_run(&opts),
                Command::Heatmap => cmd_heatmap(&opts),
            }
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("usage: jessy-cli <run|heatmap|info> [--workload sor|bh|water|lu|phase_shift|sessions]");
            eprintln!("       [--nodes N] [--threads T] [--rate off|1x|4x|full|trace]");
            eprintln!("       [--scale paper|small] [--adaptive THRESHOLD]");
            eprintln!("       [--drift-threshold D (un-freeze converged classes on drift; needs --adaptive)]");
            eprintln!("       [--flip-round R (phase_shift: when the sharing graph flips)]");
            eprintln!("       [--zipf-s S] [--session-len OPS (sessions: skew and session length)]");
            eprintln!("       [--rebalance ROUNDS (plan placement after this many TCM rounds; needs >= 2 nodes)]");
            eprintln!("       [--rebalance-every K (keep re-planning every K rounds)]");
            eprintln!("       [--cooldown-rounds C] [--migration-budget-bytes B (per-epoch cap)]");
            eprintln!("       [--prefetch-depth D] [--json]");
            eprintln!("       [--overhead-budget FRACTION (SLO cost ceiling; needs --adaptive)]");
            eprintln!("       [--mailbox-capacity N] [--shed-policy drop-oldest|merge|summary]");
            eprintln!("       [--tcm-fanout K (>=2: fabric-tree TCM aggregation)]");
            eprintln!("       [--tcm-backend dense|sketch|sketch:WIDTH,DEPTH] [--top-k K]");
            eprintln!("       [--trace FILE (Chrome trace_event)] [--journal FILE (JSON lines)]");
            eprintln!("       [--exec-seed N] [--exec-jitter NS (deterministic schedule jitter)]");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_a_full_command_line() {
        let o = parse_args(&args(
            "run -w bh -n 4 -t 16 -r 4x --scale paper --adaptive 0.05 --rebalance 3 --prefetch-depth 2 --json",
        ))
        .unwrap();
        assert_eq!(o.command, Command::Run);
        assert_eq!(o.workload, WorkloadKind::BarnesHut);
        assert_eq!(o.nodes, 4);
        assert_eq!(o.threads, 16);
        assert_eq!(o.rate, RateOpt::Nx(4));
        assert_eq!(o.scale, WorkloadPreset::Paper);
        assert_eq!(o.adaptive, Some(0.05));
        assert_eq!(o.rebalance, Some(3));
        assert_eq!(o.prefetch_depth, 2);
        assert!(o.json);
    }

    #[test]
    fn defaults_are_sensible() {
        let o = parse_args(&args("run")).unwrap();
        assert_eq!(o, Options::default());
    }

    #[test]
    fn rate_spellings() {
        assert_eq!(parse_args(&args("run -r off")).unwrap().rate, RateOpt::Off);
        assert_eq!(parse_args(&args("run -r full")).unwrap().rate, RateOpt::Full);
        assert_eq!(parse_args(&args("run -r trace")).unwrap().rate, RateOpt::Trace);
        assert_eq!(parse_args(&args("run -r 512x")).unwrap().rate, RateOpt::Nx(512));
        assert!(parse_args(&args("run -r banana")).is_err());
    }

    #[test]
    fn parses_tree_reduction_flags() {
        let o = parse_args(&args(
            "run --tcm-fanout 4 --tcm-backend sketch:8192,3 --top-k 16",
        ))
        .unwrap();
        assert_eq!(o.tcm_fanout, 4);
        assert_eq!(o.tcm_backend, TcmBackend::Sketch { width: 8192, depth: 3 });
        assert_eq!(o.top_k, 16);
        let o = parse_args(&args("run --tcm-fanout 2 --tcm-backend sketch")).unwrap();
        assert_eq!(o.tcm_backend, TcmBackend::default_sketch());
        let o = parse_args(&args("run --tcm-backend dense")).unwrap();
        assert_eq!(o.tcm_backend, TcmBackend::Dense);
    }

    #[test]
    fn parses_overload_protection_flags() {
        let o = parse_args(&args(
            "run --adaptive 0.05 --overhead-budget 0.02 --mailbox-capacity 8 --shed-policy summary",
        ))
        .unwrap();
        assert_eq!(o.overhead_budget, Some(0.02));
        assert_eq!(o.mailbox_capacity, Some(8));
        assert_eq!(o.shed_policy, Some(ShedPolicy::SummaryOnly));
        let o = parse_args(&args("run --mailbox-capacity 4 --shed-policy drop-oldest")).unwrap();
        assert_eq!(o.shed_policy, Some(ShedPolicy::DropOldestRound));
        let o = parse_args(&args("run --mailbox-capacity 4 --shed-policy merge")).unwrap();
        assert_eq!(o.shed_policy, Some(ShedPolicy::MergeBatches));
        // No policy flag: the config default applies, capacity alone is enough.
        let o = parse_args(&args("run --mailbox-capacity 4")).unwrap();
        assert_eq!(o.shed_policy, None);
    }

    #[test]
    fn rejects_bad_overload_input() {
        assert!(
            parse_args(&args("run --adaptive 0.05 --overhead-budget 1.5")).is_err(),
            "budget above 1"
        );
        assert!(
            parse_args(&args("run --adaptive 0.05 --overhead-budget 0")).is_err(),
            "zero budget"
        );
        assert!(
            parse_args(&args("run --overhead-budget 0.02")).is_err(),
            "budget without the adaptive controller"
        );
        assert!(parse_args(&args("run --mailbox-capacity 0")).is_err(), "zero mailbox");
        assert!(
            parse_args(&args("run --shed-policy merge")).is_err(),
            "policy without a bounded mailbox"
        );
        assert!(
            parse_args(&args("run --mailbox-capacity 4 --shed-policy banana")).is_err(),
            "unknown policy"
        );
    }

    #[test]
    fn parses_placement_engine_flags() {
        let o = parse_args(&args(
            "run --rebalance 2 --rebalance-every 4 --cooldown-rounds 16 --migration-budget-bytes 65536",
        ))
        .unwrap();
        assert_eq!(o.rebalance, Some(2));
        assert_eq!(o.rebalance_every, Some(4));
        assert_eq!(o.cooldown_rounds, Some(16));
        assert_eq!(o.migration_budget_bytes, Some(65536));
        // One-shot mode: the tuners stay unset.
        let o = parse_args(&args("run --rebalance 2")).unwrap();
        assert_eq!(o.rebalance_every, None);
        assert_eq!(o.cooldown_rounds, None);
        assert_eq!(o.migration_budget_bytes, None);
    }

    #[test]
    fn rejects_bad_placement_engine_input() {
        assert!(
            parse_args(&args("run --rebalance 2 --nodes 1")).is_err(),
            "one node has no migration destination"
        );
        assert!(
            parse_args(&args("run --rebalance-every 4")).is_err(),
            "cadence without --rebalance"
        );
        assert!(
            parse_args(&args("run --cooldown-rounds 8")).is_err(),
            "cooldown without --rebalance"
        );
        assert!(
            parse_args(&args("run --migration-budget-bytes 1024")).is_err(),
            "budget without --rebalance"
        );
        assert!(
            parse_args(&args("run --rebalance 2 --rebalance-every 0")).is_err(),
            "zero cadence"
        );
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&[]).is_err());
        assert!(parse_args(&args("fly")).is_err());
        assert!(parse_args(&args("run --nodes 0")).is_err());
        assert!(parse_args(&args("run --workload")).is_err(), "missing value");
        assert!(parse_args(&args("run --rebalance 2 --rate off")).is_err());
        assert!(parse_args(&args("run --trace")).is_err(), "missing value");
        assert!(parse_args(&args("run --journal")).is_err(), "missing value");
        assert!(parse_args(&args("run --tcm-fanout 1")).is_err(), "unary chain");
        assert!(
            parse_args(&args("run --tcm-backend sketch")).is_err(),
            "sketch needs the tree"
        );
        assert!(parse_args(&args("run --tcm-backend sketch:0,4 --tcm-fanout 2")).is_err());
    }

    #[test]
    fn parses_drift_era_workload_flags() {
        let o = parse_args(&args(
            "run -w phase_shift --adaptive 0.1 --drift-threshold 0.3 --flip-round 6",
        ))
        .unwrap();
        assert_eq!(o.workload, WorkloadKind::PhaseShift);
        assert_eq!(o.drift_threshold, Some(0.3));
        assert_eq!(o.flip_round, Some(6));
        let o = parse_args(&args("run -w sessions --zipf-s 1.2 --session-len 32")).unwrap();
        assert_eq!(o.workload, WorkloadKind::Sessions);
        assert_eq!(o.zipf_s, Some(1.2));
        assert_eq!(o.session_len, Some(32));
        // Spellings.
        assert_eq!(
            parse_args(&args("run -w phase-shift")).unwrap().workload,
            WorkloadKind::PhaseShift
        );
        assert_eq!(
            parse_args(&args("run -w zipf")).unwrap().workload,
            WorkloadKind::Sessions
        );
    }

    #[test]
    fn rejects_bad_drift_era_input() {
        assert!(
            parse_args(&args("run -w phase_shift --drift-threshold 0.3")).is_err(),
            "drift watching without the adaptive controller"
        );
        assert!(
            parse_args(&args("run -w phase_shift --adaptive 0.1 --drift-threshold 0")).is_err(),
            "zero drift threshold"
        );
        assert!(
            parse_args(&args("run -w sor --flip-round 6")).is_err(),
            "flip round on a non-flipping workload"
        );
        assert!(
            parse_args(&args("run -w sor --zipf-s 1.1")).is_err(),
            "zipf skew outside sessions"
        );
        assert!(
            parse_args(&args("run -w sessions --zipf-s -1")).is_err(),
            "negative skew"
        );
        assert!(
            parse_args(&args("run -w sessions --session-len 0")).is_err(),
            "empty sessions"
        );
    }

    #[test]
    fn parses_trace_and_journal_outputs() {
        let o = parse_args(&args("run --trace t.json --journal j.jsonl")).unwrap();
        assert_eq!(o.trace.as_deref(), Some("t.json"));
        assert_eq!(o.journal.as_deref(), Some("j.jsonl"));
        let o = parse_args(&args("run")).unwrap();
        assert_eq!(o.trace, None);
        assert_eq!(o.journal, None);
    }
}
